"""Scenario: the resource-competitive duel (Eve vs. the committee).

The crash algorithm's defining property (Theorem 1.2) is that its cost
scales with the failures that *actually happen*: every time Eve wipes
out the whole committee, survivors double their re-election
probability, so stalling the protocol gets geometrically more
expensive for her.

This example sweeps Eve's crash budget and prints, for each escalation
level, what she paid (crashes) against what she achieved (re-election
escalations p, extra elected nodes, protocol messages) -- the measured
form of Lemmas 2.4-2.7.

Run:  python examples/adversary_duel.py
"""

from random import Random

from repro import CrashRenamingConfig, run_crash_renaming
from repro.adversary.crash import CommitteeHunter

N = 128


def duel(budget: int) -> dict:
    result = run_crash_renaming(
        range(1, N + 1),
        adversary=CommitteeHunter(budget, Random(40 + budget)) if budget else None,
        config=CrashRenamingConfig(election_constant=4),
        seed=17,
    )
    survivors = [
        p for i, p in enumerate(result.processes) if i not in result.crashed
    ]
    names = {p.interval.lo for p in survivors}
    assert len(names) == len(survivors), "uniqueness broken!"
    return {
        "eve_budget": budget,
        "eve_spent": len(result.crashed),
        "max_p": max(p.final_p for p in survivors),
        "ever_elected": sum(p.ever_elected for p in result.processes),
        "messages": result.metrics.correct_messages,
    }


def main() -> None:
    print(f"n = {N}; Eve hunts committee members with increasing budgets\n")
    header = ("budget", "crashes", "escalations p", "nodes ever elected",
              "protocol messages")
    print(" | ".join(f"{h:>18}" for h in header))
    for budget in (0, 8, 24, 56, 96, 124):
        row = duel(budget)
        print(" | ".join(f"{row[k]:>18}" for k in
                         ("eve_budget", "eve_spent", "max_p",
                          "ever_elected", "messages")))

    print(
        "\nreading the table: each +1 in p means Eve killed an entire\n"
        "committee generation; the elected-node count roughly doubles\n"
        "per escalation (Lemma 2.6), so each further stall costs Eve\n"
        "about twice as many crashes (Lemma 2.7) -- she runs out of\n"
        "budget long before the 3*ceil(log n) phases run out."
    )


if __name__ == "__main__":
    main()
