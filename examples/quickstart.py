"""Quickstart: strong renaming in five lines.

Eight nodes hold sparse identities from a namespace of 10,000; after
the crash-resilient protocol each holds a unique name in [1, 8].

Run:  python examples/quickstart.py
"""

from repro import run_crash_renaming

ORIGINAL_IDS = [9403, 17, 5280, 771, 2024, 6001, 42, 8888]


def main() -> None:
    result = run_crash_renaming(ORIGINAL_IDS, namespace=10_000, seed=7)

    print("original identity -> new identity")
    for uid, new_id in sorted(result.outputs_by_uid().items()):
        print(f"  {uid:>6} -> {new_id}")

    print(f"\nrounds: {result.rounds}")
    print(f"messages sent: {result.metrics.correct_messages}")
    print(f"bits sent: {result.metrics.correct_bits}")
    print(f"largest message: {result.metrics.max_message_bits} bits")


if __name__ == "__main__":
    main()
