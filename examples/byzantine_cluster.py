"""Scenario: priority-preserving renaming in a Byzantine cluster.

A 16-node coordination cluster assigns compact slot numbers to its
members.  Original identities encode seniority (lower = older), and
slot assignments must preserve that order -- exactly the
order-preserving strong renaming of Theorem 1.3.

Three of the nodes are controlled by an adversary and mount the
nastiest attacks the model allows: withholding their identity from
half the committee (forcing the fingerprint divide-and-conquer to
drill down), equivocating in every committee vote, and simulating a
crash.  The correct nodes still obtain distinct, order-preserving
slots.

Run:  python examples/byzantine_cluster.py
"""

from repro import ByzantineRenamingConfig, run_byzantine_renaming
from repro.adversary import byzantine as byz

SENIORITY_IDS = [11, 23, 48, 97, 150, 201, 333, 404, 512, 600,
                 777, 810, 905, 1001, 1203, 1500]
NAMESPACE = 2048

CORRUPTED = {
    150: byz.make_withholder(0.5),    # splits the committee's views
    512: byz.make_equivocator(),      # lies differently to every member
    905: byz.crash_simulator,         # joins, then plays dead
}


def main() -> None:
    config = ByzantineRenamingConfig(max_byzantine=5)
    result = run_byzantine_renaming(
        SENIORITY_IDS,
        namespace=NAMESPACE,
        byzantine=CORRUPTED,
        config=config,
        shared_seed=31,
        seed=32,
    )

    outputs = result.outputs_by_uid()
    print(f"cluster: {len(SENIORITY_IDS)} nodes, {len(CORRUPTED)} Byzantine")
    print("\nseniority id -> slot   (corrupted nodes get no guarantee)")
    for uid in sorted(SENIORITY_IDS):
        if uid in CORRUPTED:
            print(f"  {uid:>5} -> (byzantine: {CORRUPTED[uid].__name__ if hasattr(CORRUPTED[uid], '__name__') else 'corrupted'})")
        else:
            print(f"  {uid:>5} -> {outputs[uid]:>2}")

    slots = [outputs[uid] for uid in sorted(outputs)]
    assert slots == sorted(slots), "order preservation violated!"
    assert len(set(slots)) == len(slots), "duplicate slots!"
    print("\norder preserved: seniors keep lower slots  [ok]")

    committee = [p for p in result.processes
                 if getattr(p, "was_committee", False) and not p.byzantine]
    splits = max(p.segments_split for p in committee)
    dirty = max(len(p.dirty_intervals) for p in committee)
    print(f"\nwhat the attack cost: {result.rounds} rounds, "
          f"{result.metrics.correct_messages} protocol messages")
    print(f"fingerprint recursion: {splits} segment splits, "
          f"up to {dirty} dirty intervals per member")
    print(f"adversary spam (not charged to the protocol): "
          f"{result.metrics.byzantine_messages} messages")


if __name__ == "__main__":
    main()
