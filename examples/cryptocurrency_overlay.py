"""Scenario: compacting identities in a cryptocurrency overlay.

The paper's introduction motivates renaming with cryptocurrency
networks: nodes arrive with identities from an enormous namespace
(think 160-bit address hashes truncated here to a 2^28 namespace), and
using those identities for routing is costly.  The overlay also churns:
machines drop out mid-gossip, at the worst possible moments.

This example runs the crash-resilient algorithm for a 96-node overlay
under an *adaptive* crash adversary that specifically assassinates
committee members (the protocol's critical infrastructure), then shows
that the surviving nodes still end up with compact, collision-free
names -- and what the attack cost the adversary versus the protocol.

Run:  python examples/cryptocurrency_overlay.py
"""

from random import Random

from repro import CrashRenamingConfig, run_crash_renaming
from repro.adversary.crash import CommitteeHunter

N_NODES = 96
NAMESPACE = 1 << 28          # "address" space, vastly larger than n
CHURN_BUDGET = 30            # machines the adversary may take down


def main() -> None:
    rng = Random(2025)
    wallet_ids = sorted(rng.sample(range(1, NAMESPACE + 1), N_NODES))

    config = CrashRenamingConfig(election_constant=4)
    result = run_crash_renaming(
        wallet_ids,
        namespace=NAMESPACE,
        adversary=CommitteeHunter(CHURN_BUDGET, Random(99)),
        config=config,
        seed=11,
    )

    outputs = result.outputs_by_uid()
    survivors = len(outputs)
    print(f"overlay size: {N_NODES} nodes, namespace 2^28")
    print(f"adversary assassinated {len(result.crashed)} committee members")
    print(f"survivors renamed: {survivors}")

    values = sorted(outputs.values())
    assert len(set(values)) == survivors, "collision! (should be impossible)"
    assert all(1 <= v <= N_NODES for v in values)
    print(f"name range used: [{values[0]}, {values[-1]}] of [1, {N_NODES}]")

    sample = sorted(outputs)[:5]
    print("\nsample address -> compact id")
    for uid in sample:
        print(f"  {uid:>10} -> {outputs[uid]:>3}")

    bits_before = 28  # per identity reference, original namespace
    bits_after = max(1, (N_NODES - 1).bit_length())
    print(f"\nper-reference identity size: {bits_before} bits -> {bits_after} bits")
    print(f"protocol cost: {result.rounds} rounds, "
          f"{result.metrics.correct_messages} messages, "
          f"{result.metrics.correct_bits} bits")

    escalations = max(
        p.final_p for i, p in enumerate(result.processes)
        if i not in result.crashed
    )
    print(f"committee re-election escalations (p): {escalations} "
          f"-- the adversary paid {len(result.crashed)} crashes to force them")


if __name__ == "__main__":
    main()
