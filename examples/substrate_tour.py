"""Scenario: a tour of the substrates underneath the renaming stack.

The paper's algorithms stand on classical primitives that this library
implements as reusable components. This example exercises three of
them directly:

1. **Approximate agreement** (under Okun's [32] renaming family) —
   crash-tolerant convergence of sensor readings;
2. **Binary consensus + weak validator** (Lemmas 3.3/3.4) — the
   committee's decision core, run standalone;
3. **The commit-reveal randomness beacon** (the Section 3.2 extension)
   — generating shared randomness instead of assuming it.

Run:  python examples/substrate_tour.py
"""

from random import Random

from repro.adversary.crash import MidSendPartitioner
from repro.consensus.approx_agreement import run_approximate_agreement
from repro.consensus.binary import binary_consensus
from repro.consensus.validator import validator
from repro.crypto.beacon import weak_common_coin
from repro.sim.messages import CostModel
from repro.sim.node import Process
from repro.sim.runner import run_network
from repro.crypto.shared_randomness import SharedRandomness


def tour_approximate_agreement() -> None:
    print("1) approximate agreement: 12 sensors, readings 0..110,")
    print("   2 crash mid-broadcast, target spread 0.5")
    inputs = [(i + 1, float(i * 10)) for i in range(12)]
    result = run_approximate_agreement(
        inputs, epsilon=0.5,
        adversary=MidSendPartitioner(2, Random(1), per_round=1),
        seed=2,
    )
    values = sorted(result.outputs_by_uid().values())
    print(f"   rounds: {result.rounds}, survivors: {len(values)}, "
          f"spread: {values[-1] - values[0]:.3f}")
    print(f"   converged near: {sum(values) / len(values):.2f}\n")


class CommitteeMember(Process):
    """Runs validator -> consensus -> beacon, back to back."""

    def __init__(self, uid, proposal):
        super().__init__(uid)
        self.proposal = proposal

    def program(self, ctx):
        from repro.consensus.comm import CommitteeComm

        comm = CommitteeComm(range(ctx.n), b_max=(ctx.n - 1) // 3)
        same, out = yield from validator(comm, self.proposal, width=16)
        bit = yield from binary_consensus(
            comm, int(same), ctx.shared, "tour", iterations=8
        )
        ok, coin = yield from weak_common_coin(comm, ctx.rng, "tour-coin")
        return {"validated": out, "all_same": bit, "coin_ok": ok, "coin": coin}


def tour_committee_core() -> None:
    print("2) validator + consensus + beacon among a 7-member committee")
    proposals = [("cfg-a", 3)] * 5 + [("cfg-b", 9)] * 2  # honest disagreement
    processes = [
        CommitteeMember(uid=i + 1, proposal=p) for i, p in enumerate(proposals)
    ]
    result = run_network(
        processes, CostModel(n=7, namespace=100),
        shared=SharedRandomness(5), seed=6,
    )
    outputs = list(result.results.values())
    validated = {str(o["validated"]) for o in outputs}
    coins = {o["coin"] for o in outputs}
    print(f"   rounds: {result.rounds}")
    print(f"   validated outputs agree: {len(validated) == 1} "
          f"(value: {validated.pop()})")
    print(f"   consensus on sameness bit: "
          f"{ {o['all_same'] for o in outputs} }")
    print(f"   beacon succeeded everywhere: "
          f"{all(o['coin_ok'] for o in outputs)}, "
          f"one common coin: {len(coins) == 1}\n")


def main() -> None:
    tour_approximate_agreement()
    tour_committee_core()
    print("these are the same components the renaming algorithms compose;")
    print("see repro.core for how they fit together.")


if __name__ == "__main__":
    main()
