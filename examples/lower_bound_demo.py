"""Scenario: why Omega(n) messages are unavoidable (Theorem 1.4).

The paper's lower bound says any strong renaming algorithm succeeding
with probability >= 3/4 must send Omega(n) messages in expectation --
even with shared randomness, authenticated channels, and zero
failures.  The mechanism: with too few messages, some nodes decide
*silently*, and silent anonymous nodes collide with constant
probability.

This demo plays the most message-frugal strategy possible -- a
coordinator hands out reserved names to k nodes (one message each),
everyone else picks silently -- and sweeps k, showing measured success
against the closed form, and where the 3/4 threshold actually sits.

Run:  python examples/lower_bound_demo.py
"""

from random import Random

from repro.lowerbound.anonymous import (
    SilentRenamingExperiment,
    exact_success_probability,
    minimum_messages_for_success,
)

N = 48
TRIALS = 5000


def bar(p: float, width: int = 32) -> str:
    filled = round(p * width)
    return "#" * filled + "." * (width - filled)


def main() -> None:
    experiment = SilentRenamingExperiment(n=N, rng=Random(3))
    print(f"n = {N} anonymous nodes; k nodes coordinate (1 message each),")
    print(f"the other n-k choose names silently.  {TRIALS} trials per k.\n")
    print(f"{'messages k':>10} | {'silent':>6} | {'measured':>8} | "
          f"{'exact':>8} | success")
    for k in (0, 12, 24, 36, 42, 44, 45, 46, 47, 48):
        measured = experiment.run(k, TRIALS)
        exact = exact_success_probability(N, k)
        print(f"{k:>10} | {N - k:>6} | {measured:>8.3f} | {exact:>8.3f} | "
              f"{bar(measured)}")

    floor = minimum_messages_for_success(N, 0.75)
    print(f"\nmessages needed for success >= 3/4: {floor}  (= n - 1 = {N - 1})")
    print("-> even two silent nodes fail half the time; a success")
    print("   probability of 3/4 forces essentially every node to speak,")
    print("   i.e. Omega(n) messages -- matching Theorem 1.4.")


if __name__ == "__main__":
    main()
