"""The interval-halving binary tree over ``[1, n]`` (Section 2).

Imagine a binary tree whose root is labelled ``[1, n]``; a vertex
labelled ``I = [l, r]`` with more than one integer has a left child
``bot(I) = [l, floor((l+r)/2)]`` and a right child
``top(I) = [floor((l+r)/2)+1, r]``.  A node's current interval is always
a vertex of this tree, and its bookkeeping value ``d`` is the vertex's
depth.  Both the paper's crash-resilient algorithm and the
Okun-Barak-Gafni baseline walk this tree from the root to a leaf.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` with ``lo <= hi``.

    Ordering is lexicographic on ``(lo, hi)``, which matches the
    "sort by min(I) increasing" rule of the node action in Figure 3.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def size(self) -> int:
        return self.hi - self.lo + 1

    @property
    def is_singleton(self) -> bool:
        return self.lo == self.hi

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` is a sub-interval of ``self``."""
        return self.lo <= other.lo and other.hi <= self.hi

    def bot(self) -> "Interval":
        """The left child ``[l, floor((l+r)/2)]`` of a non-leaf vertex."""
        if self.is_singleton:
            raise ValueError(f"singleton {self} has no children")
        return Interval(self.lo, (self.lo + self.hi) // 2)

    def top(self) -> "Interval":
        """The right child ``[floor((l+r)/2)+1, r]`` of a non-leaf vertex."""
        if self.is_singleton:
            raise ValueError(f"singleton {self} has no children")
        return Interval((self.lo + self.hi) // 2 + 1, self.hi)

    def halves(self) -> tuple["Interval", "Interval"]:
        return self.bot(), self.top()

    def __repr__(self) -> str:
        return f"[{self.lo},{self.hi}]"


def root_interval(n: int) -> Interval:
    """The tree root ``[1, n]``."""
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    return Interval(1, n)


def tree_depth_of(interval: Interval, n: int) -> int:
    """Depth of ``interval`` in the halving tree rooted at ``[1, n]``.

    Raises :class:`ValueError` if ``interval`` is not a vertex of the
    tree -- useful as a consistency oracle in tests.
    """
    current = root_interval(n)
    depth = 0
    while current != interval:
        if current.is_singleton or not current.contains_interval(interval):
            raise ValueError(f"{interval} is not a vertex of the [1,{n}] tree")
        current = current.bot() if interval.hi <= current.bot().hi else current.top()
        depth += 1
    return depth
