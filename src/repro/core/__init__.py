"""The paper's primary contribution: two strong renaming algorithms.

* :mod:`repro.core.intervals` -- the interval-halving tree over
  ``[1, n]`` shared by Section 2 and the OBG baseline.
* :mod:`repro.core.crash_renaming` -- the crash-resilient strong
  renaming algorithm (Theorem 1.2, Figures 1-3).
* :mod:`repro.core.identity_list` -- the length-``N`` identity bit
  vector with segment stack used by Section 3.
* :mod:`repro.core.byzantine_renaming` -- the Byzantine-resilient,
  order-preserving strong renaming algorithm (Theorem 1.3).
"""

from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    ByzantineRenamingNode,
    run_byzantine_renaming,
)
from repro.core.crash_renaming import (
    CrashRenamingConfig,
    CrashRenamingNode,
    RenamingFailure,
    run_crash_renaming,
)
from repro.core.identity_list import IdentityList
from repro.core.intervals import Interval, root_interval

__all__ = [
    "ByzantineRenamingConfig",
    "ByzantineRenamingNode",
    "CrashRenamingConfig",
    "CrashRenamingNode",
    "IdentityList",
    "Interval",
    "RenamingFailure",
    "root_interval",
    "run_byzantine_renaming",
    "run_crash_renaming",
]
