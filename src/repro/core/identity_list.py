"""The length-``N`` identity bit vector of Section 3.

Every committee member ``v`` keeps an *identity list* ``L_v``: a bit
vector with ``L_v[i] = 1`` iff identity ``i`` announced itself to ``v``.
New identities are ranks in this vector, which is what makes the
Byzantine algorithm order-preserving.

The vector is stored sparsely (a sorted list of one-positions), because
``N`` may be enormous while at most ``n`` bits are ever set; all
operations the protocol needs -- segment counts, segment fingerprints,
rank queries, and the "replace segment with an arbitrary string of
exactly ``cnt`` ones" repair of dirty intervals -- cost
``O(log n + ones_in_segment)``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

from repro.crypto.hashing import Fingerprinter


class IdentityList:
    """A sparse ``{0,1}^N`` vector addressed by positions in ``[1, N]``."""

    def __init__(self, namespace: int):
        if namespace < 1:
            raise ValueError(f"namespace must be positive, got {namespace}")
        self.namespace = namespace
        self._ones: list[int] = []

    # -- bit access -------------------------------------------------------

    def _check(self, position: int) -> None:
        if not 1 <= position <= self.namespace:
            raise IndexError(
                f"position {position} outside [1, {self.namespace}]"
            )

    def __getitem__(self, position: int) -> int:
        self._check(position)
        i = bisect_left(self._ones, position)
        return int(i < len(self._ones) and self._ones[i] == position)

    def set_bit(self, position: int) -> None:
        self._check(position)
        if not self[position]:
            insort(self._ones, position)

    def clear_bit(self, position: int) -> None:
        self._check(position)
        i = bisect_left(self._ones, position)
        if i < len(self._ones) and self._ones[i] == position:
            del self._ones[i]

    # -- segment queries ---------------------------------------------------

    def ones_in(self, lo: int, hi: int) -> list[int]:
        """Positions of one-bits inside ``[lo, hi]``, ascending."""
        self._check(lo)
        self._check(hi)
        if lo > hi:
            raise ValueError(f"empty segment [{lo}, {hi}]")
        return self._ones[bisect_left(self._ones, lo):bisect_right(self._ones, hi)]

    def count_ones_in(self, lo: int, hi: int) -> int:
        self._check(lo)
        self._check(hi)
        return bisect_right(self._ones, hi) - bisect_left(self._ones, lo)

    def fingerprint(self, hasher: Fingerprinter, lo: int, hi: int) -> int:
        """The ``O(log N)``-bit digest of segment ``L[lo..hi]``."""
        return hasher.digest_segment(self.ones_in(lo, hi), lo, hi)

    # -- ranks (new identities) ----------------------------------------------

    def rank_of(self, position: int) -> int:
        """1-based rank of a set position among all one-bits.

        This is the node's new identity: the number of ones at positions
        ``<= position``.  Requires ``L[position] == 1``.
        """
        if not self[position]:
            raise ValueError(f"position {position} is not set")
        return bisect_right(self._ones, position)

    # -- dirty-interval repair -------------------------------------------------

    def replace_segment(self, lo: int, hi: int, ones_count: int) -> None:
        """Overwrite ``L[lo..hi]`` with a canonical string of ``ones_count``
        ones (packed at the segment's left edge).

        Used when a committee member's segment hash lost the vote: the
        *number* of ones is what downstream rank arithmetic needs; the
        positions inside the (dirty) segment are deliberately arbitrary.
        """
        self._check(lo)
        self._check(hi)
        if lo > hi:
            raise ValueError(f"empty segment [{lo}, {hi}]")
        if not 0 <= ones_count <= hi - lo + 1:
            raise ValueError(
                f"cannot fit {ones_count} ones into segment [{lo}, {hi}]"
            )
        left = bisect_left(self._ones, lo)
        right = bisect_right(self._ones, hi)
        self._ones[left:right] = list(range(lo, lo + ones_count))

    # -- misc --------------------------------------------------------------------

    @property
    def total_ones(self) -> int:
        return len(self._ones)

    def ones(self) -> list[int]:
        return list(self._ones)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IdentityList):
            return NotImplemented
        return self.namespace == other.namespace and self._ones == other._ones

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdentityList(N={self.namespace}, ones={self._ones!r})"
