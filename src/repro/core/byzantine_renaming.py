"""Byzantine-resilient, order-preserving strong renaming (Theorem 1.3).

Structure (Section 3.1):

1. **Committee election** -- a lottery over the whole original
   namespace ``[N]``, drawn from shared randomness, elects *candidate*
   identities; a node owning a candidate identity announces itself and
   becomes a committee member.  Authentication stops non-candidates
   from impersonating candidates, but a Byzantine candidate may
   announce to only part of the network, so correct nodes hold
   *views* ``C_v`` with ``G \\subseteq C_v`` (Lemma 3.5).
2. **Identity aggregation** -- every node sends its (authenticated)
   original identity to the committee members in its view; member ``v``
   obtains the identity list ``L_v``.
3. **Fingerprinted divide-and-conquer consensus** -- the committee
   agrees on ``L`` segment by segment: hash + count through
   ``Validator``; ``Consensus`` on the validator's ``same`` flag; a
   ``diff`` poll deciding whether enough members hold the agreed
   segment verbatim; on failure the segment splits in half and both
   halves are pushed (singletons fall back to plain bit consensus).
   Members whose accepted segment does not match the agreed hash mark
   it *dirty* and repair their local count so global ranks stay right.
4. **Distribution** -- each member sends every registered node the rank
   of its identity in ``L`` (or ``null`` inside dirty segments); a node
   adopts the first value reported by more than ``b_max`` committee
   members, which only correct members can achieve.

Rounds scale with the *actual* number of Byzantine nodes: with no
discrepancies the very first segment (the whole of ``[1, N]``)
validates, so the loop runs once; each withheld/forged identity can
force at most ``O(log N)`` extra splits (Lemma 3.10).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.consensus.binary import DEFAULT_ITERATIONS, binary_consensus
from repro.consensus.comm import CommitteeComm, exchange
from repro.consensus.validator import validator
from repro.core.identity_list import IdentityList
from repro.faults.base import FaultModel
from repro.crypto.hashing import FingerprintFamily
from repro.crypto.shared_randomness import SharedRandomness
from repro.sim.messages import CostModel, Message, Send, broadcast
from repro.sim.node import Context, Process, Program
from repro.sim.runner import ExecutionResult, run_network


class ByzantineRenamingError(RuntimeError):
    """The execution left the protocol's with-high-probability envelope
    (e.g. the committee lottery elected no correct member)."""


# ---------------------------------------------------------------------------
# Messages


@dataclass(frozen=True)
class Elect(Message):
    """Committee announcement ``<ELECT, ID(v)>``."""

    uid: int

    def payload_bits(self, cost: CostModel) -> int:
        return cost.id_bits


@dataclass(frozen=True)
class IdAnnounce(Message):
    """Identity aggregation ``<ID, ID(v)>``."""

    uid: int

    def payload_bits(self, cost: CostModel) -> int:
        return cost.id_bits


@dataclass(frozen=True)
class NewId(Message):
    """Distribution ``<NEW, NewID(u)>`` (``None`` encodes ``null``)."""

    value: Optional[int]

    def payload_bits(self, cost: CostModel) -> int:
        return cost.index_bits + 1


# ---------------------------------------------------------------------------
# Configuration


@dataclass(frozen=True)
class CommitteeParameters:
    """Derived, common-knowledge parameters of one execution."""

    candidate_probability: float
    max_byzantine: int
    b_max: int
    cg_lower: int
    diff_threshold: int
    consensus_iterations: int
    full_committee: bool

    def validate(self) -> None:
        if 2 * self.b_max >= self.cg_lower:
            raise ByzantineRenamingError(
                f"infeasible committee bounds: b_max={self.b_max} must be "
                f"< cg/2={self.cg_lower / 2}"
            )


@dataclass(frozen=True)
class ByzantineRenamingConfig:
    """Tunables of the Byzantine-resilient algorithm.

    ``epsilon0`` is the paper's resilience margin
    (``f < (1/3 - epsilon0) * n``).  ``max_byzantine`` is the corruption
    bound the thresholds are provisioned for; it defaults to the paper's
    worst case.  ``candidate_probability`` overrides the paper's
    ``p0 = 8 log n / ((1 - 3 eps) eps^2 n)``; at practical ``n`` that
    formula exceeds 1, i.e. the paper's constants put *every* node on
    the committee, so benchmarks pass a smaller probability together
    with a smaller ``max_byzantine`` (documented in EXPERIMENTS.md).
    When the concentration slack cannot separate ``b_max`` from
    ``cg / 2``, the configuration falls back to the always-sound full
    committee (``p0 = 1``).
    """

    epsilon0: float = 0.05
    max_byzantine: Optional[int] = None
    candidate_probability: Optional[float] = None
    pool_constant: float = 8.0
    slack_sigmas: float = 2.5
    consensus_iterations: int = DEFAULT_ITERATIONS
    #: Ablation switch: with ``False`` the committee exchanges raw
    #: segment contents (the one-positions) instead of O(log N)-bit
    #: fingerprints.  Control flow is identical; each validator vote
    #: then costs up to ``n log N`` bits -- the cost the paper's
    #: fingerprinting trick removes (measured in F10).
    use_fingerprints: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon0 < 1.0 / 3.0:
            raise ValueError(
                f"epsilon0 must lie in (0, 1/3), got {self.epsilon0}"
            )

    def default_max_byzantine(self, n: int) -> int:
        return max(0, math.floor((1.0 / 3.0 - self.epsilon0) * n) )

    def parameters(self, n: int) -> CommitteeParameters:
        f_max = (
            self.max_byzantine
            if self.max_byzantine is not None
            else self.default_max_byzantine(n)
        )
        if not 0 <= f_max < max(1, math.ceil(n / 3.0)):
            raise ValueError(
                f"max_byzantine={f_max} violates f < n/3 for n={n}"
            )
        log_n = math.log2(n) if n > 1 else 1.0
        if self.candidate_probability is not None:
            p0 = self.candidate_probability
            if not 0.0 < p0 <= 1.0:
                raise ValueError(f"candidate probability {p0} not in (0, 1]")
        else:
            p0 = min(
                1.0,
                self.pool_constant * log_n
                / ((1.0 - 3.0 * self.epsilon0) * self.epsilon0 ** 2 * n),
            )

        params = self._concentration_bounds(n, f_max, p0, log_n)
        if 2 * params.b_max >= params.cg_lower:
            # Sampled committee too small to separate the Byzantine bound
            # from half the correct quorum: fall back to the full
            # committee, where the bounds are exact and f < n/3 suffices.
            params = self._concentration_bounds(n, f_max, 1.0, log_n)
        params.validate()
        return params

    def _concentration_bounds(
        self, n: int, f_max: int, p0: float, log_n: float
    ) -> CommitteeParameters:
        if p0 >= 1.0:
            b_max = f_max
            cg = n - f_max
            full = True
        else:
            # Poisson-style deviation bounds: the committee memberships
            # are independent Bernoullis, so ``slack_sigmas`` standard
            # deviations around the means bound |B| from above and |G|
            # from below, with per-run error exp(-slack^2/2)-ish.  The
            # paper uses log-factor slack for with-high-probability-in-n
            # guarantees; the sigma form keeps committees measurable at
            # benchmark scales (EXPERIMENTS.md discusses the trade).
            mu_byz = f_max * p0
            mu_good = (n - f_max) * p0
            slack = self.slack_sigmas
            b_max = math.floor(mu_byz + slack * math.sqrt(max(mu_byz, 1.0))) + 1
            cg = max(1, math.floor(
                mu_good - slack * math.sqrt(max(mu_good, 1.0))
            ))
            full = False
        return CommitteeParameters(
            candidate_probability=min(p0, 1.0),
            max_byzantine=f_max,
            b_max=b_max,
            cg_lower=cg,
            diff_threshold=max(b_max + 1, math.ceil(cg / 2)),
            consensus_iterations=self.consensus_iterations,
            full_committee=full,
        )


# ---------------------------------------------------------------------------
# The protocol


class ByzantineRenamingNode(Process):
    """One correct participant of the Byzantine-resilient algorithm."""

    def __init__(self, uid: int, config: Optional[ByzantineRenamingConfig] = None):
        super().__init__(uid)
        self.config = config or ByzantineRenamingConfig()
        # Introspection for tests and the F9 ablation.
        self.was_committee = False
        self.segments_processed = 0
        self.segments_split = 0
        self.dirty_intervals: list[tuple[int, int]] = []
        #: Every interval popped from the segment stack, in order --
        #: Lemma 3.8 says this log is identical at all correct members.
        self.segment_log: list[tuple[int, int]] = []

    # -- hooks (overridden by Byzantine strategy subclasses) -----------------

    def _make_comm(self, view_links: Sequence[int], params: CommitteeParameters
                   ) -> CommitteeComm:
        return CommitteeComm(view_links, params.b_max)

    def _announce_targets(self, view: Mapping[int, int], ctx: Context) -> list[int]:
        """Links this node announces its identity to (all of its view)."""
        return sorted(view)

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _shared(ctx: Context) -> SharedRandomness:
        if ctx.shared is None:
            raise ByzantineRenamingError(
                "Byzantine renaming requires shared randomness; pass "
                "shared=SharedRandomness(seed) when running the network"
            )
        return ctx.shared

    def _collect_view(self, inbox, candidates: set[int]) -> dict[int, int]:
        """``link -> uid`` for authentic candidate announcements."""
        view: dict[int, int] = {}
        for envelope in inbox:
            message = envelope.message
            if (
                isinstance(message, Elect)
                and envelope.sender_uid in candidates
                and message.uid == envelope.sender_uid
                and envelope.sender not in view
            ):
                view[envelope.sender] = envelope.sender_uid
        return view

    # -- the synchronous program ----------------------------------------------

    def program(self, ctx: Context) -> Program:
        shared = self._shared(ctx)
        params = self.config.parameters(ctx.n)
        candidates = shared.bernoulli_subset(
            "committee-lottery", ctx.namespace, params.candidate_probability
        )
        elected = self.uid in candidates

        # Round 1: committee election and announcement.
        inbox = yield (broadcast(ctx.n, Elect(self.uid)) if elected else [])
        view = self._collect_view(inbox, candidates)
        if not view:
            raise ByzantineRenamingError(
                f"node {self.uid}: committee lottery produced an empty view "
                f"(p0={params.candidate_probability}); re-run with another "
                f"shared seed or a larger candidate probability"
            )

        # Round 2: original identity aggregation.
        announce = IdAnnounce(self.uid)
        inbox = yield [Send(link, announce) for link in self._announce_targets(view, ctx)]

        if not elected:
            result = yield from self._await_new_id(params, view, first_inbox=None)
            return result

        self.was_committee = True
        identity_list = IdentityList(ctx.namespace)
        registry: dict[int, int] = {}
        for envelope in inbox:
            if isinstance(envelope.message, IdAnnounce) and envelope.sender_uid:
                identity_list.set_bit(envelope.sender_uid)
                registry.setdefault(envelope.sender_uid, envelope.sender)

        result = yield from self._committee_program(
            ctx, params, view, identity_list, registry, shared
        )
        return result

    # -- committee side ---------------------------------------------------------

    def _committee_program(
        self,
        ctx: Context,
        params: CommitteeParameters,
        view: Mapping[int, int],
        identity_list: IdentityList,
        registry: Mapping[int, int],
        shared: SharedRandomness,
    ):
        comm = self._make_comm(sorted(view), params)
        family = FingerprintFamily(shared)
        iterations = params.consensus_iterations
        tuple_width = ctx.cost.digest_bits + ctx.cost.counter_bits

        stack: list[tuple[int, int]] = [(1, ctx.namespace)]
        dirty: list[tuple[int, int]] = []
        step = 0
        while stack:
            lo, hi = stack.pop()
            step += 1
            self.segments_processed += 1
            self.segment_log.append((lo, hi))

            if lo == hi:
                # Base case: classical consensus on the single bit.
                bit = identity_list[lo]
                agreed_bit = yield from binary_consensus(
                    comm, bit, shared, f"bit:{step}", iterations
                )
                if agreed_bit and not identity_list[lo]:
                    identity_list.set_bit(lo)
                elif not agreed_bit and identity_list[lo]:
                    identity_list.clear_bit(lo)
                continue

            count = identity_list.count_ones_in(lo, hi)
            if self.config.use_fingerprints:
                hasher = family.draw(f"segment:{step}")
                digest: object = identity_list.fingerprint(hasher, lo, hi)
                width = tuple_width
            else:
                # Ablation: ship the segment itself.  Equality of these
                # tuples is exactly segment equality, so the recursion
                # behaves identically -- only the bit cost changes.
                digest = tuple(identity_list.ones_in(lo, hi))
                width = max(1, count) * ctx.cost.id_bits + ctx.cost.counter_bits
            same, agreed = yield from validator(
                comm, (digest, count), width
            )
            same_agreed = yield from binary_consensus(
                comm, same, shared, f"same:{step}", iterations
            )
            if not same_agreed:
                mid = (lo + hi) // 2
                stack.append((mid + 1, hi))
                stack.append((lo, mid))
                self.segments_split += 1
                continue

            # Weak agreement: every correct member now holds the same
            # ``agreed`` tuple, which is some correct member's input.
            diff = 0 if agreed == (digest, count) else 1
            reports = yield from exchange(comm, f"diff:{step}", diff, width=1)
            loud = sum(1 for value in reports.values() if value == 1)
            diff_merged = 1 if loud >= params.diff_threshold else diff
            diff_agreed = yield from binary_consensus(
                comm, diff_merged, shared, f"diff:{step}", iterations
            )
            if diff_agreed:
                mid = (lo + hi) // 2
                stack.append((mid + 1, hi))
                stack.append((lo, mid))
                self.segments_split += 1
                continue

            if diff:
                # Accepted segment, but mine is not the agreed one: mark
                # dirty and repair the count so global ranks stay right.
                agreed_count = (
                    agreed[1]
                    if isinstance(agreed, tuple) and len(agreed) == 2
                    and isinstance(agreed[1], int)
                    else count
                )
                identity_list.replace_segment(
                    lo, hi, max(0, min(agreed_count, hi - lo + 1))
                )
                dirty.append((lo, hi))

        self.dirty_intervals = list(dirty)

        # Distribution: answer every registered node.
        sends: list[Send] = []
        for uid, link in sorted(registry.items()):
            in_dirty = any(d_lo <= uid <= d_hi for d_lo, d_hi in dirty)
            if in_dirty or not identity_list[uid]:
                sends.append(Send(link, NewId(None)))
            else:
                sends.append(Send(link, NewId(identity_list.rank_of(uid))))
        inbox = yield sends
        result = yield from self._await_new_id(params, view, first_inbox=inbox)
        return result

    # -- node side ----------------------------------------------------------------

    def _await_new_id(self, params: CommitteeParameters,
                      view: Mapping[int, int], first_inbox):
        """Wait until more than ``b_max`` view members report one value."""
        counts: Counter = Counter()
        answered: set[int] = set()
        inbox = first_inbox
        while True:
            for envelope in inbox or ():
                message = envelope.message
                if (
                    isinstance(message, NewId)
                    and envelope.sender in view
                    and envelope.sender not in answered
                ):
                    answered.add(envelope.sender)
                    if message.value is not None:
                        counts[message.value] += 1
            for value, count in counts.items():
                if count >= params.b_max + 1:
                    return value
            inbox = yield []


# ---------------------------------------------------------------------------
# Runner

#: A factory turning ``(uid, config)`` into a Byzantine process.
ByzantineFactory = Callable[[int, ByzantineRenamingConfig], Process]


def run_byzantine_renaming(
    uids: Sequence[int],
    *,
    namespace: Optional[int] = None,
    byzantine: Optional[Mapping[int, ByzantineFactory]] = None,
    config: Optional[ByzantineRenamingConfig] = None,
    shared_seed: int = 0,
    seed: int = 0,
    trace: bool = False,
    max_rounds: int = 200_000,
    monitors: Sequence[object] = (),
    observer: Optional[object] = None,
    fault_model: Optional[FaultModel] = None,
    columnar: Optional[bool] = None,
) -> ExecutionResult:
    """Run the Byzantine-resilient algorithm.

    ``byzantine`` maps corrupted original identities to strategy
    factories (see :mod:`repro.adversary.byzantine`).  Per the static
    adversary model, the corrupt set must be chosen independently of
    ``shared_seed``.
    """
    uids = list(uids)
    if len(set(uids)) != len(uids):
        raise ValueError("original identities must be distinct")
    if namespace is None:
        namespace = max(max(uids), len(uids))
    if any(not 1 <= uid <= namespace for uid in uids):
        raise ValueError(f"identities must lie in [1, {namespace}]")
    config = config or ByzantineRenamingConfig()
    byzantine = dict(byzantine or {})
    unknown = set(byzantine) - set(uids)
    if unknown:
        raise ValueError(f"byzantine identities not in the system: {unknown}")
    f_bound = config.parameters(len(uids)).max_byzantine
    if len(byzantine) > f_bound:
        raise ValueError(
            f"{len(byzantine)} Byzantine nodes exceed the configured bound "
            f"{f_bound}; raise max_byzantine or corrupt fewer nodes"
        )

    processes: list[Process] = []
    for uid in uids:
        if uid in byzantine:
            processes.append(byzantine[uid](uid, config))
        else:
            processes.append(ByzantineRenamingNode(uid, config))
    cost = CostModel(n=len(uids), namespace=namespace)
    return run_network(
        processes,
        cost,
        shared=SharedRandomness(shared_seed),
        seed=seed,
        trace=trace,
        max_rounds=max_rounds,
        monitors=monitors,
        observer=observer, fault_model=fault_model, columnar=columnar,
    )
