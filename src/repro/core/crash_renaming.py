"""Crash-resilient strong renaming (Theorem 1.2, Figures 1-3).

The algorithm runs ``3 * ceil(log2 n)`` phases of three rounds each:

1. **Committee announcement** -- every current committee member
   broadcasts a notification over all ``n`` links.
2. **Status report** -- every node sends
   ``<ID(v), I_v, d_v, p_v>`` to every link it heard an announcement
   from; committee members absorb the maximum ``p`` they received.
3. **Halving / re-election** -- each committee member halves exactly
   the intervals at the *minimum* reported depth and answers every
   reporter; a node that hears no response assumes the whole committee
   crashed, increments ``p_v`` and self-elects with probability
   ``min(1, c * 2^{p_v} * log2(n) / n)``.

Correctness (uniqueness of the resulting names) is deterministic;
message complexity is ``O((f + log n) * n log n)`` w.h.p., where ``f``
is the *actual* number of crashes -- the committee re-election schedule
is what makes the cost scale with ``f`` (Lemmas 2.4-2.7).

The implementation transliterates the pseudocode; the only knob is the
election constant (paper: 256), exposed because the paper's
proof-friendly constant makes every node a committee member for any
practical ``n`` (``256 log n >= n`` until ``n ~ 2^11``), hiding the
very scaling the theorems describe.  Benchmarks use a smaller constant
and record that choice in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.adversary.base import CrashAdversary
from repro.faults.base import FaultModel
from repro.core.intervals import Interval, root_interval
from repro.sim.messages import CostModel, Envelope, Message, Send, broadcast
from repro.sim.node import Context, Process, Program
from repro.sim.runner import ExecutionResult, run_network


class RenamingFailure(RuntimeError):
    """A node finished all phases without reducing its interval to size 1."""


@dataclass(frozen=True)
class CommitteeNotice(Message):
    """Round-1 announcement: "I am a committee member"."""

    def payload_bits(self, cost: CostModel) -> int:
        return 0


@dataclass(frozen=True)
class Status(Message):
    """Round-2 report ``<ID(v), I_v, d_v, p_v>``."""

    uid: int
    interval: Interval
    depth: int
    p: int

    def payload_bits(self, cost: CostModel) -> int:
        return (cost.id_bits + 2 * cost.index_bits
                + cost.depth_bits + cost.counter_bits)


@dataclass(frozen=True)
class Done(Message):
    """Early-stopping broadcast: every reporter holds a singleton."""

    def payload_bits(self, cost: CostModel) -> int:
        return 0


@dataclass(frozen=True)
class Response(Message):
    """Round-3 committee answer ``<ID(w), I, d, p_u>``."""

    uid: int
    interval: Interval
    depth: int
    p: int

    def payload_bits(self, cost: CostModel) -> int:
        return (cost.id_bits + 2 * cost.index_bits
                + cost.depth_bits + cost.counter_bits)


@dataclass(frozen=True)
class CrashRenamingConfig:
    """Tunable constants of the crash-resilient algorithm.

    ``election_constant`` is the ``256`` of the paper's probability
    ``(256 * 2^p * log n) / n``; ``phase_multiplier`` is the ``3`` of
    ``3 * ceil(log n)`` phases.  ``early_stopping`` enables an optional
    extension beyond the paper: once a committee member observes that
    *every* reporter owns a singleton interval, it broadcasts DONE and
    nodes terminate immediately instead of idling through the remaining
    phases.  Safe because names never change once intervals are
    singletons, and a node that misses the DONE (mid-send crash) simply
    keeps running the unmodified protocol.
    """

    election_constant: float = 256.0
    phase_multiplier: int = 3
    early_stopping: bool = False

    def election_probability(self, p: int, n: int) -> float:
        if n <= 1:
            return 0.0
        raw = self.election_constant * (2 ** p) * math.log2(n) / n
        return min(1.0, raw)

    def phase_count(self, n: int) -> int:
        return self.phase_multiplier * math.ceil(math.log2(n)) if n > 1 else 0


class CrashRenamingNode(Process):
    """One participant of the crash-resilient renaming algorithm."""

    def __init__(self, uid: int, config: Optional[CrashRenamingConfig] = None):
        super().__init__(uid)
        self.config = config or CrashRenamingConfig()
        # Protocol state; exposed for tests / the committee ablation (F8).
        self.p = 0
        self.elected = False
        self.final_p = 0
        self.ever_elected = False
        self.interval: Optional[Interval] = None
        self.depth = 0
        #: One (interval, depth, p, elected) snapshot per completed
        #: phase -- the observable the per-phase lemma tests (2.3, 2.5)
        #: quantify over.
        self.phase_log: list[tuple[Interval, int, int, bool]] = []

    # -- committee-side logic -------------------------------------------

    def _committee_action(self, statuses: list[tuple[int, Status]],
                          p_self: int) -> list[Send]:
        """Figure 2: halve minimum-depth intervals, answer every reporter."""
        if not statuses:
            return []
        min_depth = min(status.depth for _, status in statuses)
        out: list[Send] = []
        for link, status in statuses:
            if status.depth != min_depth:
                reply = Response(status.uid, status.interval, status.depth, p_self)
                out.append(Send(link, reply))
                continue
            if status.interval.is_singleton:
                # The reporter already owns a name.  Uneven halving puts
                # singletons at shallow depths (e.g. [3,3] at depth 1 for
                # n = 3), so a singleton can sit at the minimum reported
                # depth; advancing its depth counter (interval unchanged)
                # keeps the minimum-depth pointer moving, which is what
                # the progress argument of Lemma 2.2 needs.
                reply = Response(status.uid, status.interval,
                                 status.depth + 1, p_self)
                out.append(Send(link, reply))
                continue
            same_interval_ids = sorted(
                other.uid for _, other in statuses
                if other.interval == status.interval
            )
            bot = status.interval.bot()
            below_bot = [
                other.uid for _, other in statuses
                if bot.contains_interval(other.interval)
            ]
            rank = same_interval_ids.index(status.uid) + 1
            if len(below_bot) + rank <= bot.size:
                child = bot
            else:
                child = status.interval.top()
            reply = Response(status.uid, child, status.depth + 1, p_self)
            out.append(Send(link, reply))
        return out

    # -- node-side logic -------------------------------------------------

    def _node_action(self, responses: list[Response], ctx: Context) -> None:
        """Figure 3: adopt the committee's decision or re-elect."""
        if not responses:
            self.p += 1
            self._maybe_self_elect(ctx)
            return
        responses = sorted(
            responses, key=lambda r: (-r.depth, r.interval.lo, r.interval.hi)
        )
        first = responses[0]
        self.depth = first.depth
        if not self.interval.is_singleton:
            self.interval = first.interval
        p_hat = max(response.p for response in responses)
        if p_hat > self.p:
            self.p = p_hat
            if not self.elected:
                self._maybe_self_elect(ctx)

    def _maybe_self_elect(self, ctx: Context) -> None:
        probability = self.config.election_probability(self.p, ctx.n)
        if not self.elected and ctx.rng.random() < probability:
            self.elected = True
            self.ever_elected = True

    # -- the synchronous program -----------------------------------------

    def program(self, ctx: Context) -> Program:
        n = ctx.n
        self.interval = root_interval(n)
        self.p = 0
        self.depth = 0
        self.elected = False
        if n > 1 and ctx.rng.random() < self.config.election_probability(0, n):
            self.elected = True
            self.ever_elected = True

        for _phase in range(self.config.phase_count(n)):
            # Round 1: committee announcement.
            announcements = broadcast(n, CommitteeNotice()) if self.elected else []
            inbox = yield announcements
            committee_links = sorted({
                envelope.sender for envelope in inbox
                if isinstance(envelope.message, CommitteeNotice)
            })

            # Round 2: status reports to every announced committee member.
            my_status = Status(self.uid, self.interval, self.depth, self.p)
            inbox = yield [Send(link, my_status) for link in committee_links]
            statuses = [
                (envelope.sender, envelope.message) for envelope in inbox
                if isinstance(envelope.message, Status)
            ]
            if self.elected and statuses:
                self.p = max(self.p, max(s.p for _, s in statuses))

            # Round 3: halving decisions out, node action on what came back.
            if self.elected:
                if (
                    self.config.early_stopping
                    and statuses
                    and all(s.interval.is_singleton for _, s in statuses)
                ):
                    # Every alive node reported a singleton: the renaming
                    # is complete, tell everyone to stop idling.
                    decisions = broadcast(n, Done())
                else:
                    decisions = self._committee_action(statuses, self.p)
            else:
                decisions = []
            inbox = yield decisions
            if self.interval.is_singleton and any(
                isinstance(envelope.message, Done) for envelope in inbox
            ):
                break
            responses = [
                envelope.message for envelope in inbox
                if isinstance(envelope.message, Response)
            ]
            self._node_action(responses, ctx)
            self.phase_log.append(
                (self.interval, self.depth, self.p, self.elected)
            )

        self.final_p = self.p
        if not self.interval.is_singleton:
            raise RenamingFailure(
                f"node {self.uid} finished with interval {self.interval}"
            )
        return self.interval.lo


def run_crash_renaming(
    uids: Sequence[int],
    *,
    namespace: Optional[int] = None,
    adversary: Optional[CrashAdversary] = None,
    config: Optional[CrashRenamingConfig] = None,
    seed: int = 0,
    trace: bool = False,
    monitors: Sequence[object] = (),
    observer: Optional[object] = None,
    fault_model: Optional[FaultModel] = None,
    columnar: Optional[bool] = None,
) -> ExecutionResult:
    """Run the crash-resilient algorithm for nodes with identities ``uids``.

    ``uids`` must be distinct values in ``[1, namespace]``; the result's
    ``outputs_by_uid()`` maps each surviving node's original identity to
    its new identity in ``[1, n]``.
    """
    uids = list(uids)
    if len(set(uids)) != len(uids):
        raise ValueError("original identities must be distinct")
    if namespace is None:
        namespace = max(max(uids), len(uids))
    if any(not 1 <= uid <= namespace for uid in uids):
        raise ValueError(f"identities must lie in [1, {namespace}]")
    cost = CostModel(n=len(uids), namespace=namespace)
    processes = [CrashRenamingNode(uid, config) for uid in uids]
    return run_network(
        processes,
        cost,
        crash_adversary=adversary,
        seed=seed,
        trace=trace,
        monitors=monitors,
        observer=observer, fault_model=fault_model, columnar=columnar,
    )
