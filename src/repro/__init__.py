"""repro: a reproduction of "Robust and Scalable Renaming with
Subquadratic Bits" (Bai, Fu, Wang, Wang, Zheng; PODC 2025).

Quick start::

    from repro import run_crash_renaming

    result = run_crash_renaming([1017, 4, 902, 311], namespace=2048)
    print(result.outputs_by_uid())   # {4: 1, 311: 2, 902: 3, 1017: 4}

Public surface:

* :func:`run_crash_renaming` / :class:`CrashRenamingConfig` -- the
  crash-resilient strong renaming algorithm (Theorem 1.2).
* :func:`run_byzantine_renaming` / :class:`ByzantineRenamingConfig` --
  the Byzantine-resilient, order-preserving algorithm (Theorem 1.3).
* :mod:`repro.baselines` -- the all-to-all algorithms of Table 1.
* :mod:`repro.adversary` -- crash ("Eve") and Byzantine ("Carlo")
  failure strategies.
* :mod:`repro.lowerbound` -- the Omega(n) message lower bound
  experiment (Theorem 1.4).
* :mod:`repro.sim` -- the synchronous message-passing substrate.
"""

from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    ByzantineRenamingError,
    ByzantineRenamingNode,
    run_byzantine_renaming,
)
from repro.core.crash_renaming import (
    CrashRenamingConfig,
    CrashRenamingNode,
    RenamingFailure,
    run_crash_renaming,
)
from repro.core.identity_list import IdentityList
from repro.core.intervals import Interval, root_interval
from repro.crypto.shared_randomness import SharedRandomness
from repro.sim.messages import CostModel
from repro.sim.runner import ExecutionResult

__version__ = "1.0.0"

__all__ = [
    "ByzantineRenamingConfig",
    "ByzantineRenamingError",
    "ByzantineRenamingNode",
    "CostModel",
    "CrashRenamingConfig",
    "CrashRenamingNode",
    "ExecutionResult",
    "IdentityList",
    "Interval",
    "RenamingFailure",
    "SharedRandomness",
    "root_interval",
    "run_byzantine_renaming",
    "run_crash_renaming",
]
