"""Process abstraction: a synchronous protocol as a generator coroutine.

A :class:`Process` models one node of the distributed system.  Its
:meth:`Process.program` method is a generator that *yields* the node's
outgoing messages for the current round and *receives* the round's inbox
(the envelopes delivered to it at the end of the round)::

    def program(self, ctx):
        inbox = yield broadcast(ctx.n, Hello(self.uid))   # round 1
        inbox = yield []                                   # round 2: listen
        return my_result

Returning from the generator terminates the node with that value as its
protocol output.  This style keeps the round structure of the paper's
pseudocode visible in the implementation instead of burying it in an
explicit state machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Generator, Optional, Sequence

from repro.crypto.shared_randomness import SharedRandomness
from repro.sim.messages import CostModel, Envelope, Send

#: Type of the coroutine driven by the network.
Program = Generator[Sequence[Send], Sequence[Envelope], object]


@dataclass(slots=True)
class Context:
    """Everything a node is allowed to know about its environment.

    Per the paper's model, a node knows ``n``, the size ``N`` of the
    original namespace, its own link index, and (in the Byzantine
    setting) has access to shared randomness.  ``rng`` is the node's
    private coin source, seeded by the runner so executions replay.
    """

    n: int
    namespace: int
    index: int
    rng: Random
    cost: CostModel
    shared: Optional[SharedRandomness] = None
    current_round: int = 0


class Process:
    """Base class for protocol participants.

    Parameters
    ----------
    uid:
        The node's original identity, a value in ``[1, N]``.
    """

    #: Processes flagged Byzantine are excluded from termination checks
    #: and their sends are charged to the adversary's ledger.
    byzantine = False

    def __init__(self, uid: int):
        if uid < 1:
            raise ValueError(f"original identity must be >= 1, got {uid}")
        self.uid = uid
        self.result: object = None

    def program(self, ctx: Context) -> Program:
        """The node's synchronous program; see module docstring."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator if subclassed lazily

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(uid={self.uid})"


class IdleProcess(Process):
    """A node that sends nothing and never terminates on its own.

    Useful as a stand-in for nodes whose behaviour is irrelevant to a
    unit test, and as the base for silent Byzantine strategies.
    """

    def program(self, ctx: Context) -> Program:
        while True:
            yield []
