"""Structured execution traces.

Traces serve two purposes: they make failure-injection tests assert on
*what actually happened* (who crashed when, which messages a committee
member sent), and they are the observation channel for adaptive
adversaries, which per the paper may use "execution history up to any
specific time point".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    round_no: int
    kind: str
    node: Optional[int] = None
    data: object = None


class Trace:
    """An append-only event log with small query helpers."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(self, round_no: int, kind: str, node: Optional[int] = None,
               data: object = None) -> None:
        if self.enabled:
            self.events.append(TraceEvent(round_no, kind, node, data))

    def of_kind(self, kind: str) -> Iterator[TraceEvent]:
        return (event for event in self.events if event.kind == kind)

    def in_round(self, round_no: int) -> Iterator[TraceEvent]:
        return (event for event in self.events if event.round_no == round_no)

    def crashes(self) -> list[TraceEvent]:
        return list(self.of_kind("crash"))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)
