"""The synchronous round-based network engine.

Model (Section 1 of the paper): a fully connected network of ``n``
nodes.  All nodes are activated simultaneously and exchange messages in
synchronous rounds; each node owns ``n`` links, one to every node
(including itself).  Messages sent in round ``r`` are delivered at the
end of round ``r``.

The engine drives each :class:`~repro.sim.node.Process` as a generator:
it collects the sends every alive process yielded, lets the crash
adversary pick victims and decide which of their in-flight messages are
still delivered (the mid-send crash), stamps envelopes with the true
sender (authentication), charges the metrics ledgers, and feeds every
surviving process its inbox.
"""

from __future__ import annotations

from random import Random
from time import perf_counter
from typing import Optional, Sequence

from repro.adversary.base import (
    CrashAdversary,
    CrashPlanError,
    NoCrashes,
    kept_send_indices,
)
from repro.crypto.auth import Authenticator
from repro.faults.base import (
    CORRUPT,
    DROP,
    HOLD,
    FaultModel,
    FaultStats,
    corrupt_message,
    validate_plan,
)
from repro.crypto.shared_randomness import SharedRandomness
from repro.sim.columnar import ColumnarRound, columnar_default
from repro.sim.messages import Broadcast, CostModel, Envelope, Send
from repro.sim.metrics import Metrics
from repro.sim.node import Context, Process, Program
from repro.sim.trace import Trace

#: Hard cap on rounds; hitting it means a protocol failed to terminate.
DEFAULT_MAX_ROUNDS = 1_000_000


class NonTerminationError(RuntimeError):
    """A protocol exceeded the round cap without all correct nodes done.

    Carries the partial execution state so callers (and the
    :mod:`repro.falsify` harness) can capture a replayable artifact from
    a hang instead of a bare message:

    ``round_no``
        The round at which the cap was hit.
    ``pending``
        Indices of the correct, alive nodes that had not terminated.
    ``trace``
        The execution's :class:`~repro.sim.trace.Trace` (empty unless
        tracing was enabled).
    ``metrics``
        The live :class:`~repro.sim.metrics.Metrics` at abort time.
    """

    def __init__(
        self,
        message: str,
        *,
        round_no: int = 0,
        pending: Sequence[int] = (),
        trace: Optional[Trace] = None,
        metrics: Optional[Metrics] = None,
    ):
        super().__init__(message)
        self.round_no = round_no
        self.pending = tuple(pending)
        self.trace = trace
        self.metrics = metrics


class SyncNetwork:
    """One execution of a protocol over a synchronous complete network.

    Parameters
    ----------
    processes:
        One :class:`Process` per link index; position ``i`` owns link
        ``i``.  Processes whose ``byzantine`` flag is set are charged to
        the adversary ledger and excluded from termination checks.
    cost:
        The :class:`CostModel` used for bit accounting.
    crash_adversary:
        The crash adversary consulted every round (default: none).
    shared:
        Optional shared-randomness handle made available to every node.
    seed:
        Seeds the per-node private RNG streams.
    monitors:
        Per-round invariant monitors (see :mod:`repro.falsify.monitors`).
        Each object is called as ``monitor.on_start(network)`` once,
        ``monitor.on_round(network)`` after every completed round, and
        ``monitor.on_finish(network)`` after termination; a monitor
        signals a falsified invariant by raising.  The default ``()``
        costs nothing.
    observer:
        Optional :class:`repro.obs.events.Observer`.  When enabled (or
        when it carries a :class:`~repro.obs.profile.PhaseProfiler`),
        rounds execute through an instrumented step that emits
        structured events (round begin/end, crash-plan application,
        delivery fan-out, monitor fire) and charges wall time to the
        four step phases.  The default ``None`` keeps the
        uninstrumented fast path: every counted quantity is identical
        either way (see ``tests/test_obs_ab.py``).
    fault_model:
        Optional :class:`repro.faults.base.FaultModel` consulted every
        round *after* the crash plan is applied: it sees each sender's
        resolved sends and may drop, duplicate, corrupt, or hold
        (partition) individual envelopes.  Every resolved send is still
        charged to the ledgers exactly once, so faults change delivery
        only, never counted quantities.  The default ``None`` keeps the
        fault-free step bodies byte-for-byte untouched.
    columnar:
        Selects the columnar deliver core (:mod:`repro.sim.columnar`)
        for rounds that need no per-envelope hooks — i.e. whenever
        neither an enabled observer nor a fault model is attached.
        ``None`` (the default) resolves via
        :func:`~repro.sim.columnar.columnar_default` (on unless
        ``REPRO_COLUMNAR=0``); ``False`` forces the per-``Envelope``
        object path (``_step_fast``), kept for A/B oracles and
        bisection.  Every counted quantity, ledger, and output is
        byte-identical either way (``tests/test_fastpath_ab.py``,
        ``tests/test_columnar_property.py``).
    """

    def __init__(
        self,
        processes: Sequence[Process],
        cost: CostModel,
        *,
        crash_adversary: Optional[CrashAdversary] = None,
        authenticator: Optional[Authenticator] = None,
        shared: Optional[SharedRandomness] = None,
        seed: int = 0,
        trace: bool = False,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        monitors: Sequence[object] = (),
        observer: Optional[object] = None,
        fault_model: Optional[FaultModel] = None,
        columnar: Optional[bool] = None,
    ):
        if not processes:
            raise ValueError("need at least one process")
        self.processes = list(processes)
        self.n = len(self.processes)
        self.cost = cost
        self.adversary = crash_adversary or NoCrashes()
        self.authenticator = authenticator or Authenticator()
        self.shared = shared
        self.max_rounds = max_rounds
        self.monitors = tuple(monitors)
        self.observer = observer
        self.profiler = (getattr(observer, "profiler", None)
                         if observer is not None else None)
        # One boolean decides per round which step body runs; the
        # uninstrumented body is the exact pre-observability code.
        self._instrumented = bool(
            self.profiler is not None
            or (observer is not None and getattr(observer, "enabled", False))
        )
        self._columnar = (columnar_default() if columnar is None
                          else bool(columnar))
        self.fault_model = fault_model
        self.fault_stats = FaultStats() if fault_model is not None else None
        # Envelopes a `hold` verdict deferred, keyed by release round.
        self._held: dict[int, list[Envelope]] = {}
        self.metrics = Metrics(cost=cost)
        self.trace = Trace(enabled=trace)
        self.round_no = 0
        self.crashed: set[int] = set()
        self.finished: dict[int, object] = {}
        self._seed_root = Random(seed)
        self.contexts = [
            Context(
                n=self.n,
                namespace=cost.namespace,
                index=index,
                rng=Random(self._seed_root.getrandbits(64)),
                cost=cost,
                shared=shared,
            )
            for index in range(self.n)
        ]
        self._programs: dict[int, Program] = {}
        self._pending: dict[int, list[Send]] = {}
        # Alive-set bookkeeping, maintained incrementally: `_finish` and
        # `_apply_crash_plan` retire indices as nodes terminate or crash,
        # so `step`/`run` never rescan all n nodes.  The lists stay in
        # ascending index order (retirement only removes elements), which
        # preserves the deterministic iteration order of the original
        # per-round list comprehensions.
        self._alive_order: list[int] = list(range(self.n))
        self._alive_set: set[int] = set(self._alive_order)
        self._correct_order: list[int] = [
            index for index in self._alive_order
            if not self.processes[index].byzantine
        ]

    # ------------------------------------------------------------------
    # Lifecycle

    def _start(self) -> None:
        for index, process in enumerate(self.processes):
            program = process.program(self.contexts[index])
            try:
                first_sends = next(program)
            except StopIteration as stop:
                self._finish(index, stop.value)
                continue
            self._programs[index] = program
            self._pending[index] = self._validated(index, first_sends)

    def _finish(self, index: int, value: object) -> None:
        self.finished[index] = value
        self.processes[index].result = value
        self._retire(index)
        self.trace.record(self.round_no, "terminate", index, value)

    def _retire(self, index: int) -> None:
        """Drop a crashed or terminated node from the alive bookkeeping."""
        if index in self._alive_set:
            self._alive_set.discard(index)
            self._alive_order.remove(index)
            if not self.processes[index].byzantine:
                self._correct_order.remove(index)

    def _validated(self, index: int, sends):
        if type(sends) is Broadcast:
            # Targets are range(sends.n) by construction; one bound
            # check replaces n per-send checks.
            if sends.n > self.n:
                raise ValueError(
                    f"node {index} broadcast to {sends.n} links, network "
                    f"has {self.n}"
                )
            return sends
        out = list(sends)
        n = self.n
        for send in out:
            if not 0 <= send.to < n:
                raise ValueError(
                    f"node {index} addressed link {send.to} outside [0, {n})"
                )
        return out

    # ------------------------------------------------------------------
    # Round execution

    def _alive_unfinished(self) -> list[int]:
        """Alive, unfinished node indices in ascending order (a copy)."""
        return list(self._alive_order)

    def _correct_pending(self) -> list[int]:
        """Correct (non-Byzantine) alive, unfinished indices (a copy)."""
        return list(self._correct_order)

    def _apply_crash_plan(self, proposed: dict[int, list[Send]]) -> dict[int, list[Send]]:
        """Validate the adversary's plan and return the delivered sends.

        The whole plan is validated before any state changes, so a
        rejected plan (:class:`CrashPlanError`) leaves ``self.crashed``
        and ``adversary.crashed`` untouched — no half-applied crashes.

        Kept sends are resolved against the victim's proposed list by
        *send index* (:func:`~repro.adversary.base.kept_send_indices`,
        identity first, equality fallback) — the same rule the
        falsification recorder uses — so the instance delivered is
        always the proposed instance the recorded index names, even
        when a victim proposed duplicate identical sends.
        """
        alive = frozenset(self._alive_set)
        plan = self.adversary.plan_round(self.round_no, proposed, alive, self.trace)
        victims = set(plan)
        if not victims:
            return proposed
        if not victims <= alive:
            raise CrashPlanError(f"plan names non-alive victims: {victims - alive}")
        already = victims & self.crashed
        if already:
            raise CrashPlanError(f"victims already crashed: {already}")
        if len(self.adversary.crashed) + len(victims) > self.adversary.budget:
            raise CrashPlanError(
                f"budget {self.adversary.budget} exceeded by crashing {victims}"
            )
        kept_by_victim: dict[int, list[Send]] = {}
        for victim, kept in plan.items():
            sends = proposed.get(victim, [])
            try:
                indices = kept_send_indices(kept, sends)
            except CrashPlanError as error:
                raise CrashPlanError(f"victim {victim}: {error}") from None
            kept_by_victim[victim] = [sends[i] for i in indices]
        delivered = dict(proposed)
        obs = self.observer
        emit = obs is not None and getattr(obs, "enabled", False)
        for victim, kept in kept_by_victim.items():
            delivered[victim] = kept
            self.crashed.add(victim)
            self._retire(victim)
            self.trace.record(self.round_no, "crash", victim,
                              {"delivered": len(kept),
                               "proposed": len(proposed.get(victim, []))})
            if emit:
                obs.emit(
                    "crash.apply", round_no=self.round_no, node=victim,
                    delivered=len(kept),
                    proposed=len(proposed.get(victim, [])),
                    budget_left=self.adversary.budget
                    - len(self.adversary.crashed) - len(victims),
                )
        self.adversary.note_crashes(victims)
        return delivered

    def step(self) -> None:
        """Execute one synchronous round.

        Dispatch mirrors the hook requirements, cheapest body last: a
        fault model needs per-envelope verdicts (``_step_faulted``), an
        enabled observer needs per-phase timers and events
        (``_step_observed``), and everything else takes the columnar
        deliver core (``_step_columnar``) — or the per-``Envelope``
        object path when columnar is disabled.
        """
        if self.fault_model is not None:
            self._step_faulted()
        elif self._instrumented:
            self._step_observed()
        elif self._columnar:
            self._step_columnar()
        else:
            self._step_fast()

    def _step_columnar(self) -> None:
        """The columnar hot path: delivery as parallel-array appends.

        Charging is identical to :meth:`_step_fast` — same sender
        order, same constant-``(message, claim)`` run batching through
        ``Metrics.record_sends`` (whose identity-keyed bit cache is
        thereby reused across the whole batch) — but instead of
        constructing one :class:`Envelope` per delivered message, each
        whole-network broadcast becomes one column row and each
        targeted run a row plus per-envelope recipient ids.  Inboxes
        are :class:`~repro.sim.columnar.LazyInbox` views materialized
        only when a program reads them at the ``program.send()``
        boundary, so listen-free rounds cost O(senders), not
        O(messages).
        """
        self.round_no += 1
        round_no = self.round_no
        metrics = self.metrics
        contexts = self.contexts
        processes = self.processes
        metrics.begin_round()
        for index in self._alive_order:
            contexts[index].current_round = round_no

        pending = self._pending
        proposed = {index: pending.get(index, []) for index in self._alive_order}
        delivered = self._apply_crash_plan(proposed)

        column = ColumnarRound(round_no)
        add_broadcast = column.add_broadcast
        add_run = column.add_run
        resolve = self.authenticator.resolve
        n = self.n
        for sender, sends in delivered.items():
            if not sends:
                continue
            process = processes[sender]
            byz = process.byzantine
            sender_true_uid = process.uid
            if type(sends) is Broadcast and sends.n == n:
                # Whole-network fan-out: one charge, one column row —
                # no per-link Send objects, no per-recipient envelopes.
                message = sends.message
                metrics.record_sends(sender, message, sends.n, byzantine=byz)
                perceived_uid, recorded_claim = resolve(
                    sender_true_uid, sends.claim
                )
                add_broadcast(sender, message, perceived_uid, recorded_claim)
                continue
            total = len(sends)
            i = 0
            while i < total:
                send = sends[i]
                message = send.message
                claim = send.claim
                j = i + 1
                while j < total:
                    nxt = sends[j]
                    if nxt.message is not message or nxt.claim != claim:
                        break
                    j += 1
                metrics.record_sends(sender, message, j - i, byzantine=byz)
                perceived_uid, recorded_claim = resolve(sender_true_uid, claim)
                add_run(sender, message, perceived_uid, recorded_claim,
                        sends, i, j)
                i = j

        # Messages addressed to crashed or terminated links vanish (they
        # were still charged): attach() freezes the alive set exactly
        # like the object path's inbox dict.
        inboxes = column.attach(self._alive_order)

        for index in tuple(self._alive_order):
            program = self._programs.get(index)
            if program is None:
                continue
            try:
                next_sends = program.send(inboxes[index])
                self._pending[index] = self._validated(index, next_sends)
            except StopIteration as stop:
                self._finish(index, stop.value)
                self._pending.pop(index, None)
            except Exception:
                if not self.processes[index].byzantine:
                    raise
                self.trace.record(self.round_no, "byzantine-fault", index)
                self._finish(index, None)
                self._pending.pop(index, None)

        for monitor in self.monitors:
            monitor.on_round(self)

    def _step_fast(self) -> None:
        """The uninstrumented hot path — byte-identical accounting to
        :meth:`_step_observed`, with zero observability overhead."""
        self.round_no += 1
        round_no = self.round_no
        metrics = self.metrics
        contexts = self.contexts
        processes = self.processes
        metrics.begin_round()
        for index in self._alive_order:
            contexts[index].current_round = round_no

        pending = self._pending
        proposed = {index: pending.get(index, []) for index in self._alive_order}
        delivered = self._apply_crash_plan(proposed)

        # Inboxes exist only for alive recipients; messages addressed to
        # crashed or terminated links vanish (they were still charged).
        inboxes: dict[int, list[Envelope]] = {
            index: [] for index in self._alive_order
        }
        alive_inboxes = list(inboxes.items())
        inbox_of = inboxes.get
        resolve = self.authenticator.resolve
        for sender, sends in delivered.items():
            if not sends:
                continue
            process = processes[sender]
            byz = process.byzantine
            sender_true_uid = process.uid
            if type(sends) is Broadcast and sends.n == self.n:
                # Whole-network fan-out of one message: charge it in a
                # single step and wrap it once per alive recipient,
                # without materializing any per-link Send objects.
                message = sends.message
                metrics.record_sends(sender, message, sends.n, byzantine=byz)
                perceived_uid, recorded_claim = resolve(
                    sender_true_uid, sends.claim
                )
                for to, inbox in alive_inboxes:
                    inbox.append(Envelope(
                        sender, to, round_no, message,
                        perceived_uid, recorded_claim,
                    ))
                continue
            total = len(sends)
            i = 0
            # Charge and wrap sends in runs sharing one message object
            # (a broadcast is one such run): one bit-size computation
            # and one ledger update per run instead of per send.
            while i < total:
                send = sends[i]
                message = send.message
                claim = send.claim
                j = i + 1
                while j < total:
                    nxt = sends[j]
                    if nxt.message is not message or nxt.claim != claim:
                        break
                    j += 1
                metrics.record_sends(sender, message, j - i, byzantine=byz)
                perceived_uid, recorded_claim = resolve(sender_true_uid, claim)
                while i < j:
                    inbox = inbox_of(sends[i].to)
                    if inbox is not None:
                        inbox.append(Envelope(
                            sender, sends[i].to, round_no, message,
                            perceived_uid, recorded_claim,
                        ))
                    i += 1

        for index in tuple(self._alive_order):
            program = self._programs.get(index)
            if program is None:
                continue
            try:
                next_sends = program.send(inboxes[index])
                self._pending[index] = self._validated(index, next_sends)
            except StopIteration as stop:
                self._finish(index, stop.value)
                self._pending.pop(index, None)
            except Exception:
                if not self.processes[index].byzantine:
                    raise
                # A Byzantine strategy crashed its own program (e.g. its
                # desynchronised view made honest-code reuse blow up).
                # That is the adversary's problem, not the network's:
                # the node simply falls silent.
                self.trace.record(self.round_no, "byzantine-fault", index)
                self._finish(index, None)
                self._pending.pop(index, None)

        for monitor in self.monitors:
            monitor.on_round(self)

    def _step_observed(self) -> None:
        """One round with events and phase timers attached.

        Mirrors :meth:`_step_fast` exactly — same charging order, same
        envelope construction, same program driving — but separates the
        work into the four profiled phases (``plan``, ``charge``,
        ``deliver``, ``advance``).  Charging and delivery interleave on
        the fast path; here charging runs first and records each
        constant-``(message, claim)`` run, and delivery replays the
        recorded runs.  ``Authenticator.resolve`` is pure, so the split
        changes no observable result; the A/B suite holds both bodies
        to identical summaries, ledgers, and outputs.
        """
        obs = self.observer
        emit = obs is not None and getattr(obs, "enabled", False)
        prof = self.profiler
        self.round_no += 1
        round_no = self.round_no
        metrics = self.metrics
        contexts = self.contexts
        processes = self.processes
        if emit:
            obs.emit("round.begin", round_no=round_no,
                     alive=len(self._alive_order))

        t0 = perf_counter()
        metrics.begin_round()
        for index in self._alive_order:
            contexts[index].current_round = round_no
        pending = self._pending
        proposed = {index: pending.get(index, []) for index in self._alive_order}
        delivered = self._apply_crash_plan(proposed)
        t1 = perf_counter()

        # Charge phase: bit accounting only.  Each entry of `runs` is
        # one maximal constant-(message, claim) run of a sender's list;
        # `targets is None` marks the whole-network broadcast fast path.
        runs: list[tuple] = []
        for sender, sends in delivered.items():
            if not sends:
                continue
            process = processes[sender]
            byz = process.byzantine
            if type(sends) is Broadcast and sends.n == self.n:
                metrics.record_sends(sender, sends.message, sends.n,
                                     byzantine=byz)
                runs.append((sender, process.uid, sends.message,
                             sends.claim, None))
                continue
            total = len(sends)
            i = 0
            while i < total:
                send = sends[i]
                message = send.message
                claim = send.claim
                j = i + 1
                while j < total:
                    nxt = sends[j]
                    if nxt.message is not message or nxt.claim != claim:
                        break
                    j += 1
                metrics.record_sends(sender, message, j - i, byzantine=byz)
                runs.append((sender, process.uid, message, claim,
                             [sends[k].to for k in range(i, j)]))
                i = j
        t2 = perf_counter()

        # Deliver phase: wrap the recorded runs into envelopes.
        inboxes: dict[int, list[Envelope]] = {
            index: [] for index in self._alive_order
        }
        alive_inboxes = list(inboxes.items())
        inbox_of = inboxes.get
        resolve = self.authenticator.resolve
        envelopes = 0
        for sender, sender_true_uid, message, claim, targets in runs:
            perceived_uid, recorded_claim = resolve(sender_true_uid, claim)
            if targets is None:
                for to, inbox in alive_inboxes:
                    inbox.append(Envelope(
                        sender, to, round_no, message,
                        perceived_uid, recorded_claim,
                    ))
                envelopes += len(alive_inboxes)
                continue
            for to in targets:
                inbox = inbox_of(to)
                if inbox is not None:
                    inbox.append(Envelope(
                        sender, to, round_no, message,
                        perceived_uid, recorded_claim,
                    ))
                    envelopes += 1
        if emit:
            obs.emit("deliver.fanout", round_no=round_no,
                     senders=len(runs), envelopes=envelopes)
        t3 = perf_counter()

        # Advance phase: drive the programs, then the monitors.
        for index in tuple(self._alive_order):
            program = self._programs.get(index)
            if program is None:
                continue
            try:
                next_sends = program.send(inboxes[index])
                self._pending[index] = self._validated(index, next_sends)
            except StopIteration as stop:
                self._finish(index, stop.value)
                self._pending.pop(index, None)
            except Exception:
                if not self.processes[index].byzantine:
                    raise
                self.trace.record(self.round_no, "byzantine-fault", index)
                self._finish(index, None)
                self._pending.pop(index, None)
        for monitor in self.monitors:
            try:
                monitor.on_round(self)
            except Exception as error:
                if emit:
                    obs.emit("monitor.fire", round_no=round_no,
                             monitor=type(monitor).__name__,
                             error=type(error).__name__)
                raise
        t4 = perf_counter()

        if prof is not None:
            prof.add("plan", t1 - t0)
            prof.add("charge", t2 - t1)
            prof.add("deliver", t3 - t2)
            prof.add("advance", t4 - t3)
        if emit:
            obs.emit("round.end", round_no=round_no,
                     messages=metrics.messages_per_round[-1],
                     bits=metrics.bits_per_round[-1],
                     alive=len(self._alive_order))

    def _step_faulted(self) -> None:
        """One round with a link-level fault model between the crash
        plan and delivery.

        Charging mirrors :meth:`_step_fast` exactly: *every* resolved
        send is charged once whatever its verdict — a dropped message
        was transmitted and lost, a duplicate was transmitted once, a
        corrupted message charges its original, a held message is
        charged at transmission time — so the per-round ledgers are
        identical to the fault-free execution of the same sends
        (``Metrics.record_sends`` batching is ledger-identical to
        per-send charging, see ``tests/test_metrics_ledgers.py``).
        Only delivery changes.  Observer events ``fault.drop``,
        ``fault.dup``, ``fault.corrupt``, ``fault.hold`` and
        ``fault.release`` are emitted when an enabled observer is
        attached; without one the verdicts are applied silently.
        """
        obs = self.observer
        emit = obs is not None and getattr(obs, "enabled", False)
        prof = self.profiler
        self.round_no += 1
        round_no = self.round_no
        metrics = self.metrics
        contexts = self.contexts
        processes = self.processes
        if emit:
            obs.emit("round.begin", round_no=round_no,
                     alive=len(self._alive_order))

        t0 = perf_counter()
        metrics.begin_round()
        for index in self._alive_order:
            contexts[index].current_round = round_no
        pending = self._pending
        proposed = {index: pending.get(index, []) for index in self._alive_order}
        delivered = self._apply_crash_plan(proposed)

        # The fault model plans against the post-crash resolved sends,
        # addressed by (sender, send index) — the kept_send_indices
        # convention.  The whole plan is validated before any delivery
        # state changes (atomic rejection, like the crash plan).
        plan = self.fault_model.plan_round(
            round_no, delivered, frozenset(self._alive_set))
        if plan:
            validate_plan(plan, round_no, delivered)
        t1 = perf_counter()

        stats = self.fault_stats
        inboxes: dict[int, list[Envelope]] = {
            index: [] for index in self._alive_order
        }
        alive_inboxes = list(inboxes.items())
        inbox_of = inboxes.get
        resolve = self.authenticator.resolve

        # Partition traffic healing this round re-enters inboxes ahead
        # of the round's own sends (it has been in flight the longest).
        for envelope in self._held.pop(round_no, ()):
            inbox = inbox_of(envelope.to)
            if inbox is None:
                # Receiver crashed or terminated while the mail was in
                # flight: the envelope vanishes, but the books must not
                # — ``held == released + released_to_dead + in_flight()``
                # holds at every instant.
                stats.released_to_dead += 1
                if emit:
                    obs.emit("fault.release", round_no=round_no,
                             node=envelope.sender, to=envelope.to,
                             dead=True)
                continue
            inbox.append(envelope)
            stats.released += 1
            if emit:
                obs.emit("fault.release", round_no=round_no,
                         node=envelope.sender, to=envelope.to)

        for sender, sends in delivered.items():
            if not sends:
                continue
            process = processes[sender]
            byz = process.byzantine
            sender_true_uid = process.uid
            verdicts = plan.get(sender)
            if (verdicts is None and type(sends) is Broadcast
                    and sends.n == self.n):
                # Untouched whole-network fan-out: same fast path as
                # _step_fast, no per-link Send materialization.
                message = sends.message
                metrics.record_sends(sender, message, sends.n, byzantine=byz)
                perceived_uid, recorded_claim = resolve(
                    sender_true_uid, sends.claim
                )
                for to, inbox in alive_inboxes:
                    inbox.append(Envelope(
                        sender, to, round_no, message,
                        perceived_uid, recorded_claim,
                    ))
                continue
            get_verdict = None if verdicts is None else verdicts.get
            for index in range(len(sends)):
                send = sends[index]
                message = send.message
                metrics.record_sends(sender, message, 1, byzantine=byz)
                verdict = None if get_verdict is None else get_verdict(index)
                if verdict is None:
                    inbox = inbox_of(send.to)
                    if inbox is not None:
                        perceived_uid, recorded_claim = resolve(
                            sender_true_uid, send.claim)
                        inbox.append(Envelope(
                            sender, send.to, round_no, message,
                            perceived_uid, recorded_claim,
                        ))
                    continue
                kind = verdict.kind
                if kind == DROP:
                    stats.dropped += 1
                    if emit:
                        obs.emit("fault.drop", round_no=round_no,
                                 node=sender, to=send.to)
                    continue
                if kind == HOLD:
                    stats.held += 1
                    release = verdict.release_round
                    perceived_uid, recorded_claim = resolve(
                        sender_true_uid, send.claim)
                    self._held.setdefault(release, []).append(Envelope(
                        sender, send.to, release, message,
                        perceived_uid, recorded_claim,
                    ))
                    if emit:
                        obs.emit("fault.hold", round_no=round_no,
                                 node=sender, to=send.to, release=release)
                    continue
                if kind == CORRUPT:
                    stats.corrupted += 1
                    if emit:
                        obs.emit("fault.corrupt", round_no=round_no,
                                 node=sender, to=send.to, salt=verdict.salt)
                    inbox = inbox_of(send.to)
                    if inbox is not None:
                        perceived_uid, recorded_claim = resolve(
                            sender_true_uid, send.claim)
                        inbox.append(Envelope(
                            sender, send.to, round_no,
                            corrupt_message(message, verdict.salt),
                            perceived_uid, recorded_claim,
                        ))
                    continue
                # DUPLICATE: 1 + copies envelopes, each a fresh instance
                # (the engine never hands one Envelope to a node twice).
                stats.duplicated += verdict.copies
                if emit:
                    obs.emit("fault.dup", round_no=round_no,
                             node=sender, to=send.to, copies=verdict.copies)
                inbox = inbox_of(send.to)
                if inbox is not None:
                    perceived_uid, recorded_claim = resolve(
                        sender_true_uid, send.claim)
                    for _ in range(1 + verdict.copies):
                        inbox.append(Envelope(
                            sender, send.to, round_no, message,
                            perceived_uid, recorded_claim,
                        ))
        t2 = perf_counter()

        for index in tuple(self._alive_order):
            program = self._programs.get(index)
            if program is None:
                continue
            try:
                next_sends = program.send(inboxes[index])
                self._pending[index] = self._validated(index, next_sends)
            except StopIteration as stop:
                self._finish(index, stop.value)
                self._pending.pop(index, None)
            except Exception:
                if not self.processes[index].byzantine:
                    raise
                self.trace.record(self.round_no, "byzantine-fault", index)
                self._finish(index, None)
                self._pending.pop(index, None)
        for monitor in self.monitors:
            try:
                monitor.on_round(self)
            except Exception as error:
                if emit:
                    obs.emit("monitor.fire", round_no=round_no,
                             monitor=type(monitor).__name__,
                             error=type(error).__name__)
                raise
        t3 = perf_counter()

        if prof is not None:
            prof.add("plan", t1 - t0)
            prof.add("deliver", t2 - t1)
            prof.add("advance", t3 - t2)
        if emit:
            obs.emit("round.end", round_no=round_no,
                     messages=metrics.messages_per_round[-1],
                     bits=metrics.bits_per_round[-1],
                     alive=len(self._alive_order))

    def _expire_held(self, emit: bool, obs: object) -> None:
        """Terminal accounting for mail still held when the run ends.

        An envelope whose release round lies beyond the last executed
        round would otherwise vanish from :class:`FaultStats` — booked
        as ``held`` forever with no terminal disposition.  Each one is
        counted in ``expired`` and announced with a ``fault.expire``
        event, so ``in_flight()`` equals ``expired`` after a completed
        run and the ledger identity ``held == released +
        released_to_dead + in_flight()`` is auditable end to end.
        """
        if not self._held:
            return
        stats = self.fault_stats
        for release_round in sorted(self._held):
            for envelope in self._held[release_round]:
                stats.expired += 1
                if emit:
                    obs.emit("fault.expire", round_no=self.round_no,
                             node=envelope.sender, to=envelope.to,
                             release=release_round)
        self._held.clear()

    def run(self) -> None:
        """Run rounds until every correct, non-crashed node terminates."""
        obs = self.observer
        emit = obs is not None and getattr(obs, "enabled", False)
        if emit:
            obs.emit("run.begin", n=self.n,
                     namespace=self.cost.namespace,
                     adversary=type(self.adversary).__name__)
        self._start()
        for monitor in self.monitors:
            monitor.on_start(self)
        while self._correct_order:
            if self.round_no >= self.max_rounds:
                # One snapshot serves both the error message and the
                # structured payload — no redundant recomputation.
                pending = list(self._correct_order)
                raise NonTerminationError(
                    f"protocol still running after {self.max_rounds} rounds; "
                    f"pending correct nodes: {pending[:10]}",
                    round_no=self.round_no,
                    pending=pending,
                    trace=self.trace,
                    metrics=self.metrics,
                )
            self.step()
        for index in sorted(set(self._programs) - set(self.finished)):
            self._programs[index].close()
        self._expire_held(emit, obs)
        for monitor in self.monitors:
            monitor.on_finish(self)
        if emit:
            obs.emit("run.end", round_no=self.round_no,
                     rounds=self.round_no,
                     messages=self.metrics.total_messages,
                     bits=self.metrics.total_bits,
                     crashed=len(self.crashed))
