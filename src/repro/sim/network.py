"""The synchronous round-based network engine.

Model (Section 1 of the paper): a fully connected network of ``n``
nodes.  All nodes are activated simultaneously and exchange messages in
synchronous rounds; each node owns ``n`` links, one to every node
(including itself).  Messages sent in round ``r`` are delivered at the
end of round ``r``.

The engine drives each :class:`~repro.sim.node.Process` as a generator:
it collects the sends every alive process yielded, lets the crash
adversary pick victims and decide which of their in-flight messages are
still delivered (the mid-send crash), stamps envelopes with the true
sender (authentication), charges the metrics ledgers, and feeds every
surviving process its inbox.
"""

from __future__ import annotations

from random import Random
from typing import Optional, Sequence

from repro.adversary.base import CrashAdversary, CrashPlanError, NoCrashes
from repro.crypto.auth import Authenticator
from repro.crypto.shared_randomness import SharedRandomness
from repro.sim.messages import CostModel, Envelope, Send
from repro.sim.metrics import Metrics
from repro.sim.node import Context, Process, Program
from repro.sim.trace import Trace

#: Hard cap on rounds; hitting it means a protocol failed to terminate.
DEFAULT_MAX_ROUNDS = 1_000_000


class NonTerminationError(RuntimeError):
    """A protocol exceeded the round cap without all correct nodes done.

    Carries the partial execution state so callers (and the
    :mod:`repro.falsify` harness) can capture a replayable artifact from
    a hang instead of a bare message:

    ``round_no``
        The round at which the cap was hit.
    ``pending``
        Indices of the correct, alive nodes that had not terminated.
    ``trace``
        The execution's :class:`~repro.sim.trace.Trace` (empty unless
        tracing was enabled).
    ``metrics``
        The live :class:`~repro.sim.metrics.Metrics` at abort time.
    """

    def __init__(
        self,
        message: str,
        *,
        round_no: int = 0,
        pending: Sequence[int] = (),
        trace: Optional[Trace] = None,
        metrics: Optional[Metrics] = None,
    ):
        super().__init__(message)
        self.round_no = round_no
        self.pending = tuple(pending)
        self.trace = trace
        self.metrics = metrics


class SyncNetwork:
    """One execution of a protocol over a synchronous complete network.

    Parameters
    ----------
    processes:
        One :class:`Process` per link index; position ``i`` owns link
        ``i``.  Processes whose ``byzantine`` flag is set are charged to
        the adversary ledger and excluded from termination checks.
    cost:
        The :class:`CostModel` used for bit accounting.
    crash_adversary:
        The crash adversary consulted every round (default: none).
    shared:
        Optional shared-randomness handle made available to every node.
    seed:
        Seeds the per-node private RNG streams.
    monitors:
        Per-round invariant monitors (see :mod:`repro.falsify.monitors`).
        Each object is called as ``monitor.on_start(network)`` once,
        ``monitor.on_round(network)`` after every completed round, and
        ``monitor.on_finish(network)`` after termination; a monitor
        signals a falsified invariant by raising.  The default ``()``
        costs nothing.
    """

    def __init__(
        self,
        processes: Sequence[Process],
        cost: CostModel,
        *,
        crash_adversary: Optional[CrashAdversary] = None,
        authenticator: Optional[Authenticator] = None,
        shared: Optional[SharedRandomness] = None,
        seed: int = 0,
        trace: bool = False,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        monitors: Sequence[object] = (),
    ):
        if not processes:
            raise ValueError("need at least one process")
        self.processes = list(processes)
        self.n = len(self.processes)
        self.cost = cost
        self.adversary = crash_adversary or NoCrashes()
        self.authenticator = authenticator or Authenticator()
        self.shared = shared
        self.max_rounds = max_rounds
        self.monitors = tuple(monitors)
        self.metrics = Metrics(cost=cost)
        self.trace = Trace(enabled=trace)
        self.round_no = 0
        self.crashed: set[int] = set()
        self.finished: dict[int, object] = {}
        self._seed_root = Random(seed)
        self.contexts = [
            Context(
                n=self.n,
                namespace=cost.namespace,
                index=index,
                rng=Random(self._seed_root.getrandbits(64)),
                cost=cost,
                shared=shared,
            )
            for index in range(self.n)
        ]
        self._programs: dict[int, Program] = {}
        self._pending: dict[int, list[Send]] = {}

    # ------------------------------------------------------------------
    # Lifecycle

    def _start(self) -> None:
        for index, process in enumerate(self.processes):
            program = process.program(self.contexts[index])
            try:
                first_sends = next(program)
            except StopIteration as stop:
                self._finish(index, stop.value)
                continue
            self._programs[index] = program
            self._pending[index] = self._validated(index, first_sends)

    def _finish(self, index: int, value: object) -> None:
        self.finished[index] = value
        self.processes[index].result = value
        self.trace.record(self.round_no, "terminate", index, value)

    def _validated(self, index: int, sends) -> list[Send]:
        out = list(sends)
        for send in out:
            if not 0 <= send.to < self.n:
                raise ValueError(
                    f"node {index} addressed link {send.to} outside [0, {self.n})"
                )
        return out

    # ------------------------------------------------------------------
    # Round execution

    def _alive_unfinished(self) -> list[int]:
        return [
            index
            for index in range(self.n)
            if index not in self.crashed and index not in self.finished
        ]

    def _correct_pending(self) -> list[int]:
        return [
            index
            for index in self._alive_unfinished()
            if not self.processes[index].byzantine
        ]

    def _apply_crash_plan(self, proposed: dict[int, list[Send]]) -> dict[int, list[Send]]:
        """Validate the adversary's plan and return the delivered sends.

        The whole plan is validated before any state changes, so a
        rejected plan (:class:`CrashPlanError`) leaves ``self.crashed``
        and ``adversary.crashed`` untouched — no half-applied crashes.
        """
        alive = frozenset(self._alive_unfinished())
        plan = self.adversary.plan_round(self.round_no, proposed, alive, self.trace)
        victims = set(plan)
        if not victims:
            return proposed
        if not victims <= alive:
            raise CrashPlanError(f"plan names non-alive victims: {victims - alive}")
        already = victims & self.crashed
        if already:
            raise CrashPlanError(f"victims already crashed: {already}")
        if len(self.adversary.crashed) + len(victims) > self.adversary.budget:
            raise CrashPlanError(
                f"budget {self.adversary.budget} exceeded by crashing {victims}"
            )
        kept_by_victim: dict[int, list[Send]] = {}
        for victim, kept in plan.items():
            kept = list(kept)
            remaining = list(proposed.get(victim, []))
            for send in kept:
                if send in remaining:
                    remaining.remove(send)
                else:
                    raise CrashPlanError(
                        f"victim {victim}: kept message {send} was never proposed"
                    )
            kept_by_victim[victim] = kept
        delivered = dict(proposed)
        for victim, kept in kept_by_victim.items():
            delivered[victim] = kept
            self.crashed.add(victim)
            self.trace.record(self.round_no, "crash", victim,
                              {"delivered": len(kept),
                               "proposed": len(proposed.get(victim, []))})
        self.adversary.note_crashes(victims)
        return delivered

    def step(self) -> None:
        """Execute one synchronous round."""
        self.round_no += 1
        self.metrics.begin_round()
        for ctx in self.contexts:
            ctx.current_round = self.round_no

        proposed = {
            index: self._pending.get(index, [])
            for index in self._alive_unfinished()
        }
        delivered = self._apply_crash_plan(proposed)

        inboxes: dict[int, list[Envelope]] = {i: [] for i in range(self.n)}
        for sender, sends in delivered.items():
            byz = self.processes[sender].byzantine
            sender_true_uid = self.processes[sender].uid
            for send in sends:
                self.metrics.record_send(sender, send.message, byzantine=byz)
                perceived_uid, claim = self.authenticator.resolve(
                    sender_true_uid, send.claim
                )
                inboxes[send.to].append(
                    Envelope(
                        sender=sender,
                        to=send.to,
                        round_no=self.round_no,
                        message=send.message,
                        sender_uid=perceived_uid,
                        claimed_sender=claim,
                    )
                )

        for index in self._alive_unfinished():
            program = self._programs.get(index)
            if program is None:
                continue
            try:
                next_sends = program.send(inboxes[index])
                self._pending[index] = self._validated(index, next_sends)
            except StopIteration as stop:
                self._finish(index, stop.value)
                self._pending.pop(index, None)
            except Exception:
                if not self.processes[index].byzantine:
                    raise
                # A Byzantine strategy crashed its own program (e.g. its
                # desynchronised view made honest-code reuse blow up).
                # That is the adversary's problem, not the network's:
                # the node simply falls silent.
                self.trace.record(self.round_no, "byzantine-fault", index)
                self._finish(index, None)
                self._pending.pop(index, None)

        for monitor in self.monitors:
            monitor.on_round(self)

    def run(self) -> None:
        """Run rounds until every correct, non-crashed node terminates."""
        self._start()
        for monitor in self.monitors:
            monitor.on_start(self)
        while self._correct_pending():
            if self.round_no >= self.max_rounds:
                raise NonTerminationError(
                    f"protocol still running after {self.max_rounds} rounds; "
                    f"pending correct nodes: {self._correct_pending()[:10]}",
                    round_no=self.round_no,
                    pending=self._correct_pending(),
                    trace=self.trace,
                    metrics=self.metrics,
                )
            self.step()
        for index in sorted(set(self._programs) - set(self.finished)):
            self._programs[index].close()
        for monitor in self.monitors:
            monitor.on_finish(self)
