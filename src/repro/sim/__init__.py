"""Synchronous message-passing simulation substrate.

This package provides the execution environment every protocol in
:mod:`repro` runs on top of:

* :mod:`repro.sim.messages` -- typed messages, envelopes, and the
  bit-cost model used for communication accounting.
* :mod:`repro.sim.node` -- the :class:`~repro.sim.node.Process`
  abstraction (a generator-based synchronous state machine) and the
  per-process :class:`~repro.sim.node.Context`.
* :mod:`repro.sim.network` -- the round-based network engine with
  link-addressed delivery, authentication stamping, and adversary hooks.
* :mod:`repro.sim.metrics` -- message / bit / round counters.
* :mod:`repro.sim.trace` -- structured per-round execution traces.
* :mod:`repro.sim.runner` -- convenience entry points returning an
  :class:`~repro.sim.runner.ExecutionResult`.
"""

from repro.sim.messages import CostModel, Envelope, Message, Send
from repro.sim.metrics import Metrics
from repro.sim.network import SyncNetwork
from repro.sim.node import Context, Process
from repro.sim.runner import ExecutionResult, run_network
from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "Context",
    "CostModel",
    "Envelope",
    "ExecutionResult",
    "Message",
    "Metrics",
    "Process",
    "Send",
    "SyncNetwork",
    "Trace",
    "TraceEvent",
    "run_network",
]
