"""Columnar round representation for the deliver phase.

``BENCH_perf.json`` put ``deliver`` at ~90% of wall time: the object
path constructs one :class:`~repro.sim.messages.Envelope` per delivered
message, so an all-to-all round costs ``n**2`` constructor calls even
when every program ignores its inbox.  The paper's subquadratic-bits
claim (PODC 2025) only separates from quadratic baselines at
n = 10k-100k, a scale the object-per-message representation cannot
reach.

This module stores a round's delivery as *columns* instead of objects:

- **Broadcast column** — a whole-network fan-out is one row ``(seq,
  sender, message, uid, claim)``; its per-recipient expansion stays
  lazy, so a round of ``n`` broadcasts is ``n`` appends, not ``n**2``
  envelopes.
- **Run columns** — each maximal constant-``(message, claim)`` run of a
  sender's targeted sends is one row; the per-envelope columns hold
  only the recipient id and the run index (``array`` of C ints, or
  numpy views over them when numpy is importable and the batch is
  large).

Inboxes are materialized per recipient, and only when a program
actually reads its inbox at the ``program.send()`` boundary: a
:class:`LazyInbox` is a :class:`~collections.abc.Sequence` of
envelopes whose backing list is built on first access by merging the
broadcast column with the recipient's targeted rows in global send
order (``seq``).  A program that never touches its inbox — the perf
benchmark's broadcast storm, any listen-free round — costs zero
envelope constructions; a program that reads pays exactly the object
path's per-envelope cost, but only for itself and only once (the
materialized list is cached, so repeated iteration yields the *same*
instances, mirroring the engine's one-envelope-per-delivery contract).

Charging is not done here: the network charges every resolved send
through :meth:`repro.sim.metrics.Metrics.record_sends` while it fills
the columns, so the identity-keyed bit cache is reused across the whole
batch and every counted quantity is byte-identical to the object path
(see ``tests/test_fastpath_ab.py`` and
``tests/test_columnar_property.py``).
"""

from __future__ import annotations

import os
from array import array
from collections.abc import Sequence
from typing import Optional

from repro.sim.messages import Envelope, Message

try:  # optional: vectorized recipient grouping for large batches
    import numpy as _np
except Exception:  # pragma: no cover - environment without numpy
    _np = None

#: Targeted-envelope count at which grouping switches to numpy.
NUMPY_GROUP_THRESHOLD = 4096


def columnar_default() -> bool:
    """Whether new networks take the columnar deliver path by default.

    ``REPRO_COLUMNAR=0`` in the environment falls back to the object
    path (``_step_fast``) — an escape hatch for A/B comparisons and
    bisection, not a supported configuration.
    """
    return os.environ.get("REPRO_COLUMNAR", "1") != "0"


class ColumnarRound:
    """One round's delivery as parallel arrays.

    Rows are appended by the network in *delivery order* (senders in
    ``delivered.items()`` order, runs in send order); ``seq`` is a
    per-round op counter that totally orders broadcast rows against
    targeted runs, so a merged inbox reproduces the object path's
    append order exactly.
    """

    __slots__ = (
        "round_no",
        # Whole-network broadcast column (one row per fan-out).
        "b_seq", "b_sender", "b_message", "b_uid", "b_claim",
        # Targeted-run column (one row per constant-(message, claim) run).
        "r_seq", "r_sender", "r_message", "r_uid", "r_claim",
        # Per-envelope columns (recipient id, owning run index).
        "t_to", "t_run",
        "_seq", "_wanted", "_buckets",
    )

    def __init__(self, round_no: int):
        self.round_no = round_no
        self.b_seq: list[int] = []
        self.b_sender: list[int] = []
        self.b_message: list[Message] = []
        self.b_uid: list[Optional[int]] = []
        self.b_claim: list[Optional[int]] = []
        self.r_seq = array("i")
        self.r_sender = array("i")
        self.r_message: list[Message] = []
        self.r_uid: list[Optional[int]] = []
        self.r_claim: list[Optional[int]] = []
        self.t_to = array("i")
        self.t_run = array("i")
        self._seq = 0
        self._wanted: frozenset[int] = frozenset()
        self._buckets: Optional[dict] = None

    # ------------------------------------------------------------------
    # Filling (called by the network while it charges the ledgers)

    def add_broadcast(self, sender: int, message: Message,
                      uid: Optional[int], claim: Optional[int]) -> None:
        """One whole-network fan-out: a single row, no expansion."""
        self.b_seq.append(self._seq)
        self._seq += 1
        self.b_sender.append(sender)
        self.b_message.append(message)
        self.b_uid.append(uid)
        self.b_claim.append(claim)

    def add_run(self, sender: int, message: Message, uid: Optional[int],
                claim: Optional[int], sends, start: int, stop: int) -> None:
        """One constant-``(message, claim)`` run of targeted sends."""
        run_index = len(self.r_message)
        self.r_seq.append(self._seq)
        self._seq += 1
        self.r_sender.append(sender)
        self.r_message.append(message)
        self.r_uid.append(uid)
        self.r_claim.append(claim)
        t_to = self.t_to
        for k in range(start, stop):
            t_to.append(sends[k].to)
        self.t_run.extend([run_index] * (stop - start))

    def attach(self, alive: Sequence[int]) -> dict[int, "LazyInbox"]:
        """Freeze the alive set and hand out one lazy inbox per recipient.

        Messages addressed to links outside ``alive`` vanish (they were
        still charged), exactly like the object path's missing-inbox
        check.
        """
        self._wanted = frozenset(alive)
        return {index: LazyInbox(self, index) for index in alive}

    # ------------------------------------------------------------------
    # Materialization (lazy, per recipient)

    def _ensure_buckets(self) -> dict:
        """Recipient id -> ascending positions into the t_* columns.

        Built once, on the first inbox materialization of the round; a
        round nobody reads never pays for grouping.  Uses a stable
        numpy argsort for large batches, a plain dict-of-lists pass
        otherwise — both produce ascending position sequences.
        """
        buckets = self._buckets
        if buckets is not None:
            return buckets
        buckets = {}
        t_to = self.t_to
        wanted = self._wanted
        if _np is not None and len(t_to) >= NUMPY_GROUP_THRESHOLD:
            to = _np.frombuffer(t_to, dtype=_np.intc)
            order = _np.argsort(to, kind="stable")
            sorted_to = to[order]
            cuts = _np.flatnonzero(sorted_to[1:] != sorted_to[:-1]) + 1
            starts = [0, *cuts.tolist()]
            ends = [*cuts.tolist(), len(sorted_to)]
            for start, end in zip(starts, ends):
                recipient = int(sorted_to[start])
                if recipient in wanted:
                    buckets[recipient] = order[start:end]
        else:
            for position, recipient in enumerate(t_to):
                if recipient in wanted:
                    bucket = buckets.get(recipient)
                    if bucket is None:
                        buckets[recipient] = [position]
                    else:
                        bucket.append(position)
        self._buckets = buckets
        return buckets

    def inbox_for(self, recipient: int) -> list[Envelope]:
        """The recipient's envelopes in object-path append order."""
        round_no = self.round_no
        out: list[Envelope] = []
        append = out.append
        b_seq = self.b_seq
        b_count = len(b_seq)
        b_sender = self.b_sender
        b_message = self.b_message
        b_uid = self.b_uid
        b_claim = self.b_claim
        positions = () if not len(self.t_to) else (
            self._ensure_buckets().get(recipient, ()))
        bi = 0
        if len(positions):
            r_seq = self.r_seq
            r_sender = self.r_sender
            r_message = self.r_message
            r_uid = self.r_uid
            r_claim = self.r_claim
            t_run = self.t_run
            for position in positions:
                run = t_run[position]
                run_seq = r_seq[run]
                while bi < b_count and b_seq[bi] < run_seq:
                    append(Envelope(b_sender[bi], recipient, round_no,
                                    b_message[bi], b_uid[bi], b_claim[bi]))
                    bi += 1
                append(Envelope(r_sender[run], recipient, round_no,
                                r_message[run], r_uid[run], r_claim[run]))
        while bi < b_count:
            append(Envelope(b_sender[bi], recipient, round_no,
                            b_message[bi], b_uid[bi], b_claim[bi]))
            bi += 1
        return out


class LazyInbox(Sequence):
    """A recipient's inbox, materialized on first read and then cached.

    Behaves exactly like the envelope list the object path would have
    built (same order, same fields, fresh instances per recipient);
    caching preserves the identity contract — iterating twice yields
    the *same* envelope objects, never new copies.  Receivers must
    treat it as read-only, like any inbox.
    """

    __slots__ = ("_column", "_recipient", "_cache")

    def __init__(self, column: ColumnarRound, recipient: int):
        self._column = column
        self._recipient = recipient
        self._cache: Optional[list[Envelope]] = None

    def _materialize(self) -> list[Envelope]:
        cache = self._cache
        if cache is None:
            self._cache = cache = self._column.inbox_for(self._recipient)
        return cache

    def __len__(self) -> int:
        return len(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __iter__(self):
        return iter(self._materialize())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("unmaterialized" if self._cache is None
                 else f"{len(self._cache)} envelopes")
        return f"LazyInbox(to={self._recipient}, {state})"
