"""Communication and round accounting.

The paper's three performance metrics are rounds, messages, and bits.
:class:`Metrics` counts all three, split by whether the sender is a
correct node or an adversary-controlled (Byzantine) node: the theorems
bound the cost incurred by the *algorithm*, while Byzantine nodes can
always spam arbitrarily many messages at no charge to the protocol.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.sim.messages import CostModel, Message


@dataclass
class Metrics:
    """Counters accumulated by the network engine during one execution."""

    cost: CostModel
    rounds: int = 0
    correct_messages: int = 0
    correct_bits: int = 0
    byzantine_messages: int = 0
    byzantine_bits: int = 0
    max_message_bits: int = 0
    messages_per_round: list[int] = field(default_factory=list)
    bits_per_round: list[int] = field(default_factory=list)
    sends_by_node: Counter = field(default_factory=Counter)
    sends_by_type: Counter = field(default_factory=Counter)

    def begin_round(self) -> None:
        self.rounds += 1
        self.messages_per_round.append(0)
        self.bits_per_round.append(0)

    def record_send(self, sender: int, message: Message, *, byzantine: bool) -> None:
        """Charge one transmitted message to the appropriate ledger."""
        bits = message.bit_size(self.cost)
        if byzantine:
            self.byzantine_messages += 1
            self.byzantine_bits += bits
        else:
            self.correct_messages += 1
            self.correct_bits += bits
        self.max_message_bits = max(self.max_message_bits, bits)
        if self.messages_per_round:
            self.messages_per_round[-1] += 1
            self.bits_per_round[-1] += bits
        self.sends_by_node[sender] += 1
        self.sends_by_type[type(message).__name__] += 1

    @property
    def total_messages(self) -> int:
        """Messages sent by correct and Byzantine nodes combined."""
        return self.correct_messages + self.byzantine_messages

    @property
    def total_bits(self) -> int:
        return self.correct_bits + self.byzantine_bits

    def summary(self) -> dict:
        """A plain-dict snapshot convenient for tables and benchmarks."""
        return {
            "rounds": self.rounds,
            "correct_messages": self.correct_messages,
            "correct_bits": self.correct_bits,
            "byzantine_messages": self.byzantine_messages,
            "byzantine_bits": self.byzantine_bits,
            "max_message_bits": self.max_message_bits,
        }
