"""Communication and round accounting.

The paper's three performance metrics are rounds, messages, and bits.
:class:`Metrics` counts all three, split by whether the sender is a
correct node or an adversary-controlled (Byzantine) node: the theorems
bound the cost incurred by the *algorithm*, while Byzantine nodes can
always spam arbitrarily many messages at no charge to the protocol.

Bit accounting is memoized: messages are frozen dataclasses, so one
``broadcast`` produces ``n`` envelopes around a single message object,
and :meth:`Metrics.message_bits` computes its
:meth:`~repro.sim.messages.Message.bit_size` once instead of ``n``
times.  The cache is keyed by message identity (with a strong reference
pinning the object, so a recycled ``id`` can never alias) plus an
equality fallback for distinct-but-equal messages, and is dropped at
every :meth:`begin_round` so it stays bounded by one round's working
set.  Memoization is invisible in the ledgers: every counted quantity
is identical to charging each send individually.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.sim.messages import CostModel, Message


@dataclass
class Metrics:
    """Counters accumulated by the network engine during one execution."""

    cost: CostModel
    rounds: int = 0
    correct_messages: int = 0
    correct_bits: int = 0
    byzantine_messages: int = 0
    byzantine_bits: int = 0
    max_message_bits: int = 0
    messages_per_round: list[int] = field(default_factory=list)
    bits_per_round: list[int] = field(default_factory=list)
    sends_by_node: Counter = field(default_factory=Counter)
    sends_by_type: Counter = field(default_factory=Counter)
    #: id(message) -> (message, bits); the message reference keeps the
    #: object alive so the id cannot be recycled while the entry exists.
    _bits_by_id: dict = field(default_factory=dict, repr=False, compare=False)
    #: message -> bits, the equality fallback for hashable messages.
    _bits_by_value: dict = field(default_factory=dict, repr=False,
                                 compare=False)

    def begin_round(self) -> None:
        self.rounds += 1
        self.messages_per_round.append(0)
        self.bits_per_round.append(0)
        if self._bits_by_id:
            self._bits_by_id.clear()
            self._bits_by_value.clear()

    def message_bits(self, message: Message) -> int:
        """The memoized :meth:`~repro.sim.messages.Message.bit_size`."""
        entry = self._bits_by_id.get(id(message))
        if entry is not None and entry[0] is message:
            return entry[1]
        try:
            bits = self._bits_by_value[message]
        except (KeyError, TypeError):
            bits = message.bit_size(self.cost)
            try:
                self._bits_by_value[message] = bits
            except TypeError:
                pass  # unhashable message: identity caching only
        self._bits_by_id[id(message)] = (message, bits)
        return bits

    def record_send(self, sender: int, message: Message, *, byzantine: bool) -> None:
        """Charge one transmitted message to the appropriate ledger."""
        self.record_sends(sender, message, 1, byzantine=byzantine)

    def record_sends(
        self, sender: int, message: Message, count: int, *, byzantine: bool
    ) -> None:
        """Charge ``count`` transmissions of one message at once.

        This is the batched fast path behind a ``broadcast``: the bit
        size is computed (or fetched from the cache) once and every
        ledger advances by ``count``, leaving totals, per-round series,
        and counters identical to ``count`` single ``record_send`` calls.
        """
        if not self.messages_per_round:
            raise RuntimeError(
                "record_send before begin_round: per-round ledgers would "
                "silently drift from the running totals"
            )
        bits = self.message_bits(message)
        total = bits * count
        if byzantine:
            self.byzantine_messages += count
            self.byzantine_bits += total
        else:
            self.correct_messages += count
            self.correct_bits += total
        if bits > self.max_message_bits:
            self.max_message_bits = bits
        self.messages_per_round[-1] += count
        self.bits_per_round[-1] += total
        self.sends_by_node[sender] += count
        self.sends_by_type[type(message).__name__] += count

    @property
    def total_messages(self) -> int:
        """Messages sent by correct and Byzantine nodes combined."""
        return self.correct_messages + self.byzantine_messages

    @property
    def total_bits(self) -> int:
        return self.correct_bits + self.byzantine_bits

    def summary(self) -> dict:
        """A plain-dict snapshot convenient for tables and benchmarks."""
        return {
            "rounds": self.rounds,
            "correct_messages": self.correct_messages,
            "correct_bits": self.correct_bits,
            "byzantine_messages": self.byzantine_messages,
            "byzantine_bits": self.byzantine_bits,
            "max_message_bits": self.max_message_bits,
        }
