"""Convenience entry point and execution results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.adversary.base import CrashAdversary
from repro.crypto.auth import Authenticator
from repro.crypto.shared_randomness import SharedRandomness
from repro.faults.base import FaultModel, FaultStats
from repro.sim.messages import CostModel
from repro.sim.metrics import Metrics
from repro.sim.network import DEFAULT_MAX_ROUNDS, SyncNetwork
from repro.sim.node import Process
from repro.sim.trace import Trace


@dataclass
class ExecutionResult:
    """Everything observable after one protocol execution."""

    results: dict[int, object]
    metrics: Metrics
    crashed: set[int]
    byzantine: set[int]
    rounds: int
    trace: Trace
    processes: Sequence[Process] = field(repr=False, default=())
    #: Applied link-fault tallies, or ``None`` when no fault model ran.
    fault_stats: Optional[FaultStats] = None

    @property
    def correct_results(self) -> dict[int, object]:
        """Outputs of nodes that are neither crashed nor Byzantine."""
        return {
            index: value
            for index, value in self.results.items()
            if index not in self.crashed and index not in self.byzantine
        }

    def outputs_by_uid(self) -> dict[int, object]:
        """Map each surviving correct node's original identity to its output."""
        return {
            self.processes[index].uid: value
            for index, value in self.correct_results.items()
        }


def run_network(
    processes: Sequence[Process],
    cost: CostModel,
    *,
    crash_adversary: Optional[CrashAdversary] = None,
    authenticator: Optional[Authenticator] = None,
    shared: Optional[SharedRandomness] = None,
    seed: int = 0,
    trace: bool = False,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    monitors: Sequence[object] = (),
    observer: Optional[object] = None,
    fault_model: Optional[FaultModel] = None,
    columnar: Optional[bool] = None,
) -> ExecutionResult:
    """Build a :class:`SyncNetwork`, run it to completion, package results."""
    network = SyncNetwork(
        processes,
        cost,
        crash_adversary=crash_adversary,
        authenticator=authenticator,
        shared=shared,
        seed=seed,
        trace=trace,
        max_rounds=max_rounds,
        monitors=monitors,
        observer=observer,
        fault_model=fault_model,
        columnar=columnar,
    )
    network.run()
    byzantine = {
        index for index, process in enumerate(processes) if process.byzantine
    }
    return ExecutionResult(
        results=dict(network.finished),
        metrics=network.metrics,
        crashed=set(network.crashed),
        byzantine=byzantine,
        rounds=network.round_no,
        trace=network.trace,
        processes=list(processes),
        fault_stats=network.fault_stats,
    )
