"""Message model and bit-cost accounting.

The paper's complexity claims are stated in a model where every message
carries at most ``Theta(log N)`` bits: identities cost ``ceil(log2 N)``
bits, interval endpoints and counters over ``[n]`` cost ``ceil(log2 n)``
bits, and every message carries a small constant-size type header.  The
:class:`CostModel` encodes those word sizes so each message can report
its exact bit footprint, which makes the paper's bit-complexity claims
directly measurable.

Messages are small frozen dataclasses.  Concrete protocols subclass
:class:`Message` and implement :meth:`Message.payload_bits`.  The network
wraps each message in an :class:`Envelope` carrying the (authenticated)
sender link and delivery round.

Because messages are frozen (immutable) dataclasses, their bit size
under a fixed :class:`CostModel` never changes after construction.  The
engine exploits that: :meth:`repro.sim.metrics.Metrics.message_bits`
memoizes :meth:`Message.bit_size` per message object (with an equality
fallback), so broadcasting one message over ``n`` links charges its
size via a single ``payload_bits`` evaluation.  ``payload_bits``
implementations must therefore be pure functions of the message's
fields and the cost model — a message whose size depends on mutable
external state would defeat both the cache and the frozen contract.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Iterator, Optional

#: Number of bits charged for the message-type tag of every message.
HEADER_BITS = 4


def bit_length_of_domain(size: int) -> int:
    """Number of bits needed to address a domain of ``size`` values.

    Computed in exact integer arithmetic as ``(size - 1).bit_length()``:
    ``ceil(log2(size))`` through ``math.log2`` rounds through a float
    and silently under-counts near 64-bit boundaries (it returns 53 for
    ``2**53 + 1``), which is precisely the large-namespace regime where
    the paper's subquadratic-bits claims are measured.

    >>> bit_length_of_domain(1)
    1
    >>> bit_length_of_domain(1024)
    10
    >>> bit_length_of_domain(2**53 + 1)
    54
    """
    if size < 1:
        raise ValueError(f"domain size must be positive, got {size}")
    return max(1, (size - 1).bit_length())


@dataclass(frozen=True)
class CostModel:
    """Word sizes used to charge message bits.

    Parameters
    ----------
    n:
        Number of participating nodes (target namespace size).
    namespace:
        Size ``N`` of the original namespace, ``N >= n``.
    """

    n: int
    namespace: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.namespace < self.n:
            raise ValueError(
                f"namespace N={self.namespace} must be at least n={self.n}"
            )

    @property
    def id_bits(self) -> int:
        """Bits for one original identity from ``[N]``."""
        return bit_length_of_domain(self.namespace)

    @property
    def index_bits(self) -> int:
        """Bits for one value from ``[n]`` (new identities, endpoints)."""
        return bit_length_of_domain(self.n)

    @property
    def depth_bits(self) -> int:
        """Bits for an interval-tree depth in ``[0, ceil(log2 n)]``."""
        return bit_length_of_domain(bit_length_of_domain(self.n) + 1)

    @property
    def counter_bits(self) -> int:
        """Bits for a small counter bounded by ``n`` (e.g. ``p`` values)."""
        return bit_length_of_domain(self.n)

    @property
    def digest_bits(self) -> int:
        """Bits for one fingerprint digest, ``O(log N)`` per Fact 3.2."""
        # Digests live in a field of size O(N^6) so that, union-bounded over
        # the whole execution, collisions are n^{-Theta(1)}-unlikely; that is
        # 6 * ceil(log2 N) bits, still O(log N).
        return 6 * bit_length_of_domain(self.namespace)


class Message:
    """Base class for protocol messages.

    Subclasses are expected to be frozen dataclasses.  ``payload_bits``
    charges the message's fields under a :class:`CostModel`; the envelope
    adds :data:`HEADER_BITS` for the type tag.
    """

    def payload_bits(self, cost: CostModel) -> int:
        raise NotImplementedError

    def bit_size(self, cost: CostModel) -> int:
        """Total on-wire size of this message in bits."""
        return HEADER_BITS + self.payload_bits(cost)


@dataclass(frozen=True, slots=True)
class Send:
    """An outgoing message addressed to a link (node index in ``[0, n)``).

    ``claim`` is a forged sender identity.  It only reaches the receiver
    when the network runs *without* authentication; under the paper's
    authenticated model the network discards it (see
    :class:`repro.crypto.auth.Authenticator`).
    """

    to: int
    message: Message
    claim: Optional[int] = None

    def __post_init__(self) -> None:
        if self.to < 0:
            raise ValueError(f"link index must be non-negative, got {self.to}")


@dataclass(slots=True)
class Envelope:
    """A delivered message.

    ``sender`` is the link index of the true sender, stamped by the
    network.  ``sender_uid`` is the sender's original identity as the
    receiver perceives it: with authentication enabled (the paper's
    model) it is always the true identity; without authentication a
    forged ``claim`` shows up here instead, which is exactly the spoof
    the assumption rules out.  ``claimed_sender`` records the raw claim
    in the unauthenticated case (``None`` otherwise).

    Envelopes are created by the engine — one per delivered message, on
    the hottest allocation path in the simulator — so the class trades
    enforced immutability for plain slot assignment, which constructs
    several times faster than a frozen dataclass.  Receivers must treat
    envelopes as read-only: the engine never hands the same instance to
    two nodes, but mutating one would falsify the delivery record that
    traces and monitors reason about.
    """

    sender: int
    to: int
    round_no: int
    message: Message
    sender_uid: Optional[int] = field(default=None)
    claimed_sender: Optional[int] = field(default=None)


class Broadcast(Sequence):
    """A lazily materialized all-links fan-out: one message to ``n`` links.

    Behaves exactly like the ``[Send(to=0, m), ..., Send(to=n-1, m)]``
    list it denotes, but the engine recognizes the type and charges the
    whole fan-out in one step — no per-link ``Send`` objects, no
    per-link validation, no per-link bit-size computation — which is
    what makes ``broadcast``-heavy protocols cheap to simulate.

    The ``Send`` list is materialized (and cached) only when someone
    actually indexes or iterates the sequence — in practice, when a
    crash adversary inspects a victim's in-flight messages.  Caching
    matters for correctness, not just speed: crash plans resolve kept
    sends by object identity, so repeated access must yield the *same*
    ``Send`` instances.
    """

    __slots__ = ("n", "message", "claim", "_sends")

    def __init__(self, n: int, message: Message, claim: Optional[int] = None):
        if n < 0:
            raise ValueError(f"link count must be non-negative, got {n}")
        self.n = n
        self.message = message
        self.claim = claim
        self._sends: Optional[list[Send]] = None

    def _materialize(self) -> list[Send]:
        sends = self._sends
        if sends is None:
            message, claim = self.message, self.claim
            self._sends = sends = [
                Send(index, message, claim) for index in range(self.n)
            ]
        return sends

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index):
        return self._materialize()[index]

    def __iter__(self) -> Iterator[Send]:
        return iter(self._materialize())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Broadcast(n={self.n}, message={self.message!r})"


def broadcast(n: int, message: Message) -> Broadcast:
    """Address ``message`` to all ``n`` links (including the self link).

    Returns a :class:`Broadcast`, a lazy, list-equivalent sequence of
    ``Send`` objects that the engine fast-paths.
    """
    return Broadcast(n, message)


def multicast(targets, message: Message) -> list[Send]:
    """Address ``message`` to each link index in ``targets``."""
    return [Send(to=index, message=message) for index in targets]
