"""Per-round invariant monitors for the falsification harness.

A :class:`Monitor` hooks into :meth:`repro.sim.network.SyncNetwork.step`
via the network's ``monitors=`` parameter and checks one safety
invariant after every completed round.  A falsified invariant raises a
structured :class:`InvariantViolation` carrying the round, the
offending nodes, and the full :class:`~repro.sim.trace.Trace`, so the
campaign runner (:mod:`repro.falsify.campaign`) can serialize a
replayable repro artifact on the spot.

The concrete monitors cover the paper's safety claims:

* :class:`UniqueNames` — no two decided correct nodes share a name
  (Theorems 1.2/1.3, uniqueness).
* :class:`NamespaceBounds` — decided names stay inside the target
  namespace: ``strong`` ``[1, n]``, ``tight`` ``[1, n + f]``, or
  ``loose`` ``[1, 8n]`` depending on the algorithm's contract.
* :class:`CrashBudget` — the adversary never exceeds its budget ``f``
  and the network/adversary crash ledgers stay in lock-step.
* :class:`LedgerMonotone` — the bit/message ledgers only grow and the
  per-round series always sums to the running totals.
* :class:`RoundBudget` — a watchdog that fails fast (with the pending
  node set) long before the network's hard 1M-round cap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # annotations only; sim never imports falsify back
    from repro.sim.network import SyncNetwork
    from repro.sim.trace import Trace


class InvariantViolation(AssertionError):
    """A per-round safety invariant was falsified.

    Attributes
    ----------
    invariant:
        The short name of the violated invariant (``monitor.name``).
    round_no:
        The round after which the violation was detected.
    nodes:
        Link indices of the offending nodes (may be empty).
    detail:
        A JSON-friendly payload with invariant-specific evidence.
    trace:
        The execution's :class:`~repro.sim.trace.Trace` at detection
        time (empty unless the run was traced).
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        round_no: int,
        nodes: Sequence[int] = (),
        detail: object = None,
        trace: Optional["Trace"] = None,
    ):
        super().__init__(f"[{invariant}] round {round_no}: {message}")
        self.invariant = invariant
        self.round_no = round_no
        self.nodes = tuple(nodes)
        self.detail = detail
        self.trace = trace


class Monitor:
    """Base class: override any of the three hooks; raise via :meth:`fail`."""

    #: Short, stable identifier used in violations and repro artifacts.
    name = "monitor"

    def on_start(self, network: "SyncNetwork") -> None:
        """Called once after the processes are started, before round 1."""

    def on_round(self, network: "SyncNetwork") -> None:
        """Called after every completed round."""

    def on_finish(self, network: "SyncNetwork") -> None:
        """Called once after every correct, non-crashed node terminated."""

    def fail(
        self,
        network: "SyncNetwork",
        message: str,
        *,
        nodes: Sequence[int] = (),
        detail: object = None,
    ) -> None:
        raise InvariantViolation(
            self.name, message,
            round_no=network.round_no, nodes=nodes, detail=detail,
            trace=network.trace,
        )


def decided_correct(network: "SyncNetwork") -> dict[int, object]:
    """Outputs of nodes that terminated and are neither crashed nor
    Byzantine — the set all renaming guarantees quantify over."""
    return {
        index: value
        for index, value in network.finished.items()
        if index not in network.crashed
        and not network.processes[index].byzantine
    }


class UniqueNames(Monitor):
    """No two decided correct nodes may hold the same name."""

    name = "unique-names"

    def on_round(self, network: "SyncNetwork") -> None:
        holders: dict[object, list[int]] = {}
        for index, value in decided_correct(network).items():
            holders.setdefault(value, []).append(index)
        duplicates = {
            value: nodes for value, nodes in holders.items()
            if len(nodes) > 1 and value is not None
        }
        if duplicates:
            offending = sorted(
                node for nodes in duplicates.values() for node in nodes
            )
            self.fail(
                network,
                f"duplicate names {sorted(duplicates)} held by nodes "
                f"{offending}",
                nodes=offending,
                detail={str(value): nodes
                        for value, nodes in duplicates.items()},
            )

    on_finish = on_round


class NamespaceBounds(Monitor):
    """Every decided name must be an integer in ``[lo, hi]``.

    Use the constructors for the paper's three contracts:
    :meth:`strong` (``[1, n]``), :meth:`tight` (``[1, n + f]``), or
    :meth:`loose` (``[1, 8n]``).
    """

    name = "namespace-bounds"

    def __init__(self, hi: int, lo: int = 1, label: str = "strong"):
        if hi < lo:
            raise ValueError(f"empty namespace [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self.label = label

    @classmethod
    def strong(cls, n: int) -> "NamespaceBounds":
        return cls(n, label="strong")

    @classmethod
    def tight(cls, n: int, f: int) -> "NamespaceBounds":
        return cls(n + f, label="tight")

    @classmethod
    def loose(cls, n: int) -> "NamespaceBounds":
        return cls(8 * n, label="loose")

    def on_round(self, network: "SyncNetwork") -> None:
        out_of_range = {
            index: value
            for index, value in decided_correct(network).items()
            if not (isinstance(value, int) and not isinstance(value, bool)
                    and self.lo <= value <= self.hi)
        }
        if out_of_range:
            self.fail(
                network,
                f"names outside {self.label} namespace [{self.lo}, {self.hi}]: "
                f"{out_of_range}",
                nodes=sorted(out_of_range),
                detail={str(k): repr(v) for k, v in out_of_range.items()},
            )

    on_finish = on_round


class CrashBudget(Monitor):
    """Crash-budget conservation: never more than ``f`` crashes, the
    network and adversary ledgers agree, and crashes are permanent."""

    name = "crash-budget"

    def __init__(self) -> None:
        self._seen: set[int] = set()

    def on_round(self, network: "SyncNetwork") -> None:
        adversary = network.adversary
        crashed = set(network.crashed)
        if len(crashed) > adversary.budget:
            self.fail(
                network,
                f"{len(crashed)} crashes exceed budget {adversary.budget}",
                nodes=sorted(crashed),
                detail={"budget": adversary.budget, "crashed": sorted(crashed)},
            )
        if crashed != adversary.crashed:
            drift = crashed ^ adversary.crashed
            self.fail(
                network,
                f"network/adversary crash ledgers disagree on {sorted(drift)}",
                nodes=sorted(drift),
                detail={"network": sorted(crashed),
                        "adversary": sorted(adversary.crashed)},
            )
        if not self._seen <= crashed:
            revived = self._seen - crashed
            self.fail(
                network,
                f"crashed nodes came back to life: {sorted(revived)}",
                nodes=sorted(revived),
            )
        self._seen = crashed


class LedgerMonotone(Monitor):
    """Bit/message ledger sanity: totals never decrease and the
    per-round series always sums to the running totals."""

    name = "ledger-monotone"

    def __init__(self) -> None:
        self._last_totals = (0, 0)
        self._last_max = 0

    def on_round(self, network: "SyncNetwork") -> None:
        metrics = network.metrics
        totals = (metrics.total_messages, metrics.total_bits)
        if totals[0] < self._last_totals[0] or totals[1] < self._last_totals[1]:
            self.fail(
                network,
                f"ledger totals decreased: {self._last_totals} -> {totals}",
                detail={"before": self._last_totals, "after": totals},
            )
        if metrics.max_message_bits < self._last_max:
            self.fail(
                network,
                f"max message size shrank: {self._last_max} -> "
                f"{metrics.max_message_bits}",
            )
        per_round = (sum(metrics.messages_per_round),
                     sum(metrics.bits_per_round))
        if per_round != totals:
            self.fail(
                network,
                f"per-round ledgers sum to {per_round}, totals say {totals}",
                detail={"per_round": per_round, "totals": totals},
            )
        if len(metrics.messages_per_round) != metrics.rounds:
            self.fail(
                network,
                f"{len(metrics.messages_per_round)} ledger entries for "
                f"{metrics.rounds} rounds",
            )
        self._last_totals = totals
        self._last_max = metrics.max_message_bits


class RoundBudget(Monitor):
    """Watchdog: fail once the execution exceeds ``max_rounds`` rounds.

    Much tighter than the network's hard cap, so falsification
    campaigns turn hangs into structured violations (with the pending
    node set attached) in seconds rather than hours.
    """

    name = "round-budget"

    def __init__(self, max_rounds: int):
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.max_rounds = max_rounds

    def on_round(self, network: "SyncNetwork") -> None:
        if network.round_no > self.max_rounds:
            # The network maintains this set incrementally; asking it is
            # O(pending) instead of rescanning all n nodes every round.
            pending = network._correct_pending()
            self.fail(
                network,
                f"still running after {self.max_rounds} rounds; "
                f"pending correct nodes: {pending[:10]}",
                nodes=pending,
                detail={"max_rounds": self.max_rounds,
                        "pending": pending[:32]},
            )


def default_watchdog_rounds(n: int) -> int:
    """A generous per-scenario round budget: every protocol in this
    repo terminates in ``O(f + log n)``-ish rounds, so ``32 n + 256``
    flags a hang orders of magnitude sooner than the 1M-round cap."""
    return 32 * n + 256


def default_monitors(
    n: int,
    f: int = 0,
    *,
    bound: str = "strong",
    watchdog_rounds: Optional[int] = None,
) -> tuple[Monitor, ...]:
    """The standard falsification suite for one renaming execution.

    ``bound`` selects the namespace contract (``strong`` | ``tight`` |
    ``loose``); ``watchdog_rounds`` overrides the hang watchdog
    (``None`` picks :func:`default_watchdog_rounds`).
    """
    bounds = {
        "strong": NamespaceBounds.strong(n),
        "tight": NamespaceBounds.tight(n, f),
        "loose": NamespaceBounds.loose(n),
    }
    try:
        namespace_monitor = bounds[bound]
    except KeyError:
        raise ValueError(
            f"unknown bound {bound!r}; expected one of {sorted(bounds)}"
        ) from None
    return (
        UniqueNames(),
        namespace_monitor,
        CrashBudget(),
        LedgerMonotone(),
        RoundBudget(watchdog_rounds or default_watchdog_rounds(n)),
    )
