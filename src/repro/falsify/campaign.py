"""Randomized falsification campaigns over the sweep engine.

A campaign fans ``scenario x adversary x n x seed`` configurations out
through :func:`repro.engine.pool.run_requests` — so it inherits the
pool's crash isolation, bounded per-task retry, and the SQLite store's
content-addressed dedup: a configuration already probed under the
current code version is a cache hit, not a re-execution.

Every configuration runs under a :class:`RecordingAdversary` and the
full monitor suite; a violated invariant (or a hang) becomes a row
carrying the recorded crash schedule, which the campaign then shrinks
to a minimal, strictly-replayable JSON repro artifact.

If the process pool itself breaks (not one task — the pool), the
campaign degrades gracefully to serial in-process execution rather
than dropping the batch.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.engine.store import RunStore, code_version
from repro.falsify.monitors import InvariantViolation
from repro.falsify.replay import (
    RecordingAdversary,
    ReproArtifact,
    schedule_from_json,
    schedule_size,
    schedule_to_json,
)
from repro.falsify.scenarios import (
    DEFAULT_ADVERSARIES,
    DEFAULT_SCENARIOS,
    make_adversary,
    monitors_for,
    resolve_scenario,
    run_scenario,
)
from repro.falsify.shrink import (
    NON_TERMINATION,
    ShrinkReport,
    probe,
    shrink_artifact,
)
from repro.sim.network import NonTerminationError

#: Request parameters that configure the harness itself, not the
#: scenario; stripped before params reach the scenario function.
HARNESS_PARAMS = ("scenario", "adversary", "rate", "watchdog_rounds")


def falsify_run_summary(
    n: int,
    f: int,
    seed: int,
    *,
    scenario: str = "crash",
    adversary: str = "random",
    rate: Optional[float] = None,
    watchdog_rounds: Optional[int] = None,
    include_rounds: bool = False,
    **scenario_params,
) -> dict:
    """One falsification probe, summarized as an engine driver row.

    Registered as the ``falsify`` driver so probes flow through the
    sweep engine (pool parallelism + store dedup).  A violation is a
    *successful* probe: the row records the invariant, the offending
    nodes, and the recorded crash schedule; only a driver bug makes
    the run ``failed``.
    """
    spec = resolve_scenario(scenario)
    inner = make_adversary(adversary, f, seed, rate=rate)
    recorder = RecordingAdversary(inner) if inner is not None else None
    monitors = monitors_for(spec, n, f, watchdog_rounds=watchdog_rounds)
    row = {
        "scenario": scenario,
        "adversary": adversary,
        "n": n,
        "f_budget": f,
        "seed": seed,
    }
    try:
        result = run_scenario(
            scenario, n, f, seed,
            adversary=recorder, monitors=monitors, params=scenario_params,
        )
    except InvariantViolation as violation:
        return {
            **row,
            "violation": violation.invariant,
            "violation_round": violation.round_no,
            "violation_nodes": json.dumps(list(violation.nodes)),
            "violation_detail": json.dumps(violation.detail, default=repr),
            "schedule": _schedule_json(recorder),
            "f_actual": len(recorder.crashed) if recorder else 0,
            "rounds": violation.round_no,
        }
    except NonTerminationError as hang:
        return {
            **row,
            "violation": NON_TERMINATION,
            "violation_round": hang.round_no,
            "violation_nodes": json.dumps(list(hang.pending[:32])),
            "violation_detail": json.dumps(
                {"pending": list(hang.pending[:32])}
            ),
            "schedule": _schedule_json(recorder),
            "f_actual": len(recorder.crashed) if recorder else 0,
            "rounds": hang.round_no,
        }
    summary = {
        **row,
        "violation": None,
        "violation_round": None,
        "violation_nodes": None,
        "violation_detail": None,
        "schedule": _schedule_json(recorder),
        "f_actual": len(result.crashed),
        "rounds": result.rounds,
        "messages": result.metrics.correct_messages,
        "bits": result.metrics.correct_bits,
    }
    if include_rounds:
        summary["messages_per_round"] = list(
            result.metrics.messages_per_round)
        summary["bits_per_round"] = list(result.metrics.bits_per_round)
    return summary


def _schedule_json(recorder: Optional[RecordingAdversary]) -> str:
    schedule = recorder.schedule if recorder is not None else {}
    return json.dumps(schedule_to_json(schedule))


def artifact_from_row(row: dict, params: Optional[dict] = None,
                      ) -> ReproArtifact:
    """Rebuild the (unshrunk) repro artifact a violating row describes."""
    if not row.get("violation"):
        raise ValueError("row records no violation")
    schedule = schedule_from_json(json.loads(row.get("schedule") or "[]"))
    scenario_params = {
        key: value for key, value in (params or {}).items()
        if key not in HARNESS_PARAMS
    }
    return ReproArtifact(
        scenario=row["scenario"],
        n=row["n"],
        f=schedule_size(schedule),
        seed=row["seed"],
        params=scenario_params,
        schedule=schedule,
        invariant=row["violation"],
        violation_round=row.get("violation_round") or 0,
        nodes=tuple(json.loads(row.get("violation_nodes") or "[]")),
        detail=json.loads(row.get("violation_detail") or "null"),
        code_version=code_version(),
    )


def replay_artifact(artifact: ReproArtifact) -> Optional[Exception]:
    """Strictly replay an artifact; return the reproduced failure.

    Returns the :class:`InvariantViolation` (or
    :class:`NonTerminationError`) if the recorded invariant is
    reproduced, ``None`` if the execution completed cleanly or
    violated something else.  A divergence from the recording raises
    :class:`~repro.falsify.replay.ReplayMismatch`.
    """
    outcome = probe(
        artifact.scenario, artifact.n, artifact.seed, artifact.schedule,
        artifact.params, strict=True,
    )
    if outcome is not None and outcome.invariant == artifact.invariant:
        return outcome.error
    return None


# ---------------------------------------------------------------------------
# Campaign orchestration


@dataclass
class CampaignConfig:
    """One falsification campaign, fully declarative."""

    scenarios: Sequence[str] = DEFAULT_SCENARIOS
    n_values: Sequence[int] = (8, 12)
    seeds: Sequence[int] = tuple(range(4))
    f: str = "max(1, n // 4)"
    adversaries: Sequence[str] = DEFAULT_ADVERSARIES
    jobs: int = 1
    timeout: Optional[float] = None
    time_budget: Optional[float] = None
    shrink: bool = True
    max_shrink_executions: int = 300
    params: dict = field(default_factory=dict)


@dataclass
class Finding:
    """One falsified configuration, shrunk and verified."""

    row: dict
    artifact: ReproArtifact
    raw_artifact: ReproArtifact
    shrink: Optional[ShrinkReport]
    replayed: bool

    def describe(self) -> str:
        status = "replays" if self.replayed else "DOES NOT REPLAY"
        suffix = f"; {self.shrink.describe()}" if self.shrink else ""
        return f"{self.artifact.describe()} [{status}]{suffix}"


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    findings: list[Finding]
    results: list
    failures: list
    executed: int
    cached: int
    degraded: bool
    skipped: int = 0

    @property
    def falsified(self) -> bool:
        return bool(self.findings)


def campaign_requests(config: CampaignConfig) -> list:
    """The campaign's probe grid as engine requests."""
    from repro.engine.sweeps import RunRequest, evaluate_f

    return [
        RunRequest.make(
            "falsify", n, evaluate_f(config.f, n), seed,
            scenario=scenario, adversary=adversary, **config.params,
        )
        for scenario in config.scenarios
        for adversary in config.adversaries
        for n in config.n_values
        for seed in config.seeds
    ]


def run_campaign(
    config: CampaignConfig,
    *,
    store: Optional[RunStore] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    clock: Callable[[], float] = time.monotonic,
    observer: Optional[object] = None,
) -> CampaignResult:
    """Run a campaign: probe the grid, shrink and verify every finding.

    ``observer`` (a :class:`repro.obs.Observer`, optional) receives the
    probe lifecycle as ``campaign.*`` events: one ``campaign.begin`` /
    ``campaign.end`` pair, a ``campaign.batch`` per probe batch handed
    to the engine, and a ``campaign.finding`` plus a ``campaign.shrink``
    span per falsified configuration.
    """
    from repro.engine.pool import run_requests

    obs = observer if (observer is not None
                       and getattr(observer, "enabled", False)) else None
    requests = campaign_requests(config)
    if obs is not None:
        obs.emit("campaign.begin", probes=len(requests),
                 scenarios=",".join(config.scenarios),
                 adversaries=",".join(config.adversaries))
    batch_size = max(4 * max(config.jobs, 1), 8)
    started = clock()
    results: list = []
    degraded = False
    skipped = 0
    for cursor in range(0, len(requests), batch_size):
        if (config.time_budget is not None
                and clock() - started > config.time_budget):
            skipped = len(requests) - cursor
            break
        batch = requests[cursor:cursor + batch_size]
        if obs is not None:
            obs.emit("campaign.batch", cursor=cursor, size=len(batch))
        try:
            results.extend(run_requests(
                batch, jobs=config.jobs, store=store, timeout=config.timeout,
                observer=observer,
            ))
        except Exception:
            # The pool itself broke (not one task): degrade to serial
            # in-process execution rather than dropping the batch.
            degraded = True
            results.extend(run_requests(batch, jobs=1, store=store,
                                        observer=observer))
        if progress is not None:
            progress(len(results), len(requests))

    findings: list[Finding] = []
    for result in results:
        if not (result.ok and result.row and result.row.get("violation")):
            continue
        raw = artifact_from_row(result.row, result.request.params_dict())
        if obs is not None:
            obs.emit("campaign.finding", scenario=raw.scenario,
                     invariant=raw.invariant, n=raw.n, seed=raw.seed)
        report: Optional[ShrinkReport] = None
        artifact = raw
        if config.shrink:
            if obs is not None:
                with obs.span("campaign.shrink", scenario=raw.scenario,
                              seed=raw.seed):
                    report = shrink_artifact(
                        raw, max_executions=config.max_shrink_executions)
            else:
                report = shrink_artifact(
                    raw, max_executions=config.max_shrink_executions)
            artifact = report.artifact
        replayed = replay_artifact(artifact) is not None
        findings.append(Finding(
            row=result.row, artifact=artifact, raw_artifact=raw,
            shrink=report, replayed=replayed,
        ))

    failures = [result for result in results if not result.ok]
    cached = sum(1 for result in results if result.cached)
    if obs is not None:
        obs.emit("campaign.end", findings=len(findings),
                 failures=len(failures), cached=cached, skipped=skipped)
    return CampaignResult(
        findings=findings,
        results=results,
        failures=failures,
        executed=len(results) - cached - len(failures),
        cached=cached,
        degraded=degraded,
        skipped=skipped,
    )


def save_findings(result: CampaignResult, out_dir) -> list[Path]:
    """Write each finding's artifact to ``out_dir``; return the paths."""
    out_dir = Path(out_dir)
    paths = []
    for index, finding in enumerate(result.findings):
        artifact = finding.artifact
        name = (f"repro-{artifact.scenario}-{artifact.invariant}"
                f"-n{artifact.n}-s{artifact.seed}-{index:03d}.json")
        paths.append(artifact.save(out_dir / name))
    return paths
