"""Delta-debugging shrinker for failing executions.

Given a repro artifact, the shrinker searches for the smallest
execution that still falsifies the same invariant, along two axes:

1. **Schedule minimization** — greedily drop crash entries, then
   simplify surviving mid-send splits to clean pre-send crashes, until
   a fixpoint: every remaining entry is load-bearing.
2. **Population minimization** — walk ``n`` down while the violation
   persists (schedule entries naming removed nodes are dropped).

Candidate executions replay leniently (dropped crashes legitimately
change everything downstream), and the final minimal execution is
re-recorded through a :class:`~repro.falsify.replay.RecordingAdversary`
so the emitted artifact replays *strictly* — byte-for-byte the same
violation on a fresh process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.store import code_version
from repro.falsify.monitors import InvariantViolation
from repro.falsify.replay import (
    RecordingAdversary,
    ReplayAdversary,
    ReproArtifact,
    Schedule,
    normalize_schedule,
    schedule_size,
)
from repro.falsify.scenarios import monitors_for, resolve_scenario, run_scenario
from repro.sim.network import NonTerminationError

#: Pseudo-invariant name used when the failure is a hang rather than a
#: monitor violation.
NON_TERMINATION = "non-termination"


@dataclass
class ProbeOutcome:
    """One re-execution of a candidate: what (if anything) it violated."""

    invariant: str
    error: Exception
    #: The adversary the probe ran under; a recording probe exposes the
    #: exact applied schedule via ``adversary.schedule``.
    adversary: object

    def violation_fields(self) -> tuple[int, tuple[int, ...], object]:
        """``(round, nodes, detail)`` of the reproduced failure."""
        error = self.error
        if isinstance(error, InvariantViolation):
            return error.round_no, error.nodes, error.detail
        if isinstance(error, NonTerminationError):
            return error.round_no, error.pending, None
        return 0, (), repr(error)


def probe(
    scenario_name: str,
    n: int,
    seed: int,
    schedule: Schedule,
    params: Optional[dict] = None,
    *,
    strict: bool = False,
    record: bool = False,
    watchdog_rounds: Optional[int] = None,
) -> Optional[ProbeOutcome]:
    """Replay one candidate; return what it violated, or ``None``.

    ``strict`` enforces exact replay (artifact verification);
    ``record=True`` additionally captures the applied schedule.
    Driver exceptions other than violations/hangs are reported under an
    ``error:<ExceptionName>`` pseudo-invariant so the shrinker never
    conflates a crash-of-the-code with the violation it is minimizing.
    """
    scenario = resolve_scenario(scenario_name)
    f = schedule_size(schedule)
    adversary = ReplayAdversary(schedule, strict=strict)
    if record:
        adversary = RecordingAdversary(adversary)
    monitors = monitors_for(scenario, n, f, watchdog_rounds=watchdog_rounds)
    try:
        run_scenario(
            scenario_name, n, f, seed,
            adversary=adversary, monitors=monitors, params=params,
        )
    except InvariantViolation as violation:
        return ProbeOutcome(violation.invariant, violation, adversary)
    except NonTerminationError as hang:
        return ProbeOutcome(NON_TERMINATION, hang, adversary)
    except Exception as error:  # noqa: BLE001 - classified, not swallowed
        return ProbeOutcome(f"error:{type(error).__name__}", error, adversary)
    return None


@dataclass
class ShrinkReport:
    """The minimized artifact plus how much work minimization did."""

    artifact: ReproArtifact
    executions: int
    entries_before: int
    entries_after: int
    n_before: int
    n_after: int

    def describe(self) -> str:
        return (
            f"shrank schedule {self.entries_before} -> {self.entries_after} "
            f"crashes, n {self.n_before} -> {self.n_after} "
            f"({self.executions} probe executions)"
        )


def _entries(schedule: Schedule) -> list[tuple[int, int]]:
    return [
        (round_no, victim)
        for round_no in sorted(schedule)
        for victim in sorted(schedule[round_no])
    ]


def _without(schedule: Schedule, round_no: int, victim: int) -> Schedule:
    candidate = {r: dict(step) for r, step in schedule.items()}
    candidate[round_no].pop(victim, None)
    return normalize_schedule(candidate)


def _with_clean_crash(schedule: Schedule, round_no: int,
                      victim: int) -> Schedule:
    candidate = {r: dict(step) for r, step in schedule.items()}
    candidate[round_no][victim] = ()
    return normalize_schedule(candidate)


def shrink_artifact(
    artifact: ReproArtifact,
    *,
    max_executions: int = 300,
) -> ShrinkReport:
    """Minimize ``artifact`` to the smallest still-failing execution.

    Deterministic and bounded: at most ``max_executions`` candidate
    re-executions.  Returns a report whose artifact strictly replays
    the same invariant violation.
    """
    target = artifact.invariant
    n = artifact.n
    schedule = normalize_schedule(artifact.schedule)
    entries_before = schedule_size(schedule)
    executions = 0

    def still_fails(candidate_n: int, candidate: Schedule) -> bool:
        nonlocal executions
        if executions >= max_executions:
            return False
        executions += 1
        outcome = probe(artifact.scenario, candidate_n, artifact.seed,
                        candidate, artifact.params)
        return outcome is not None and outcome.invariant == target

    # Pass 1: drop whole crash entries until every one is load-bearing.
    changed = True
    while changed:
        changed = False
        for round_no, victim in _entries(schedule):
            candidate = _without(schedule, round_no, victim)
            if still_fails(n, candidate):
                schedule = candidate
                changed = True

    # Pass 2: simplify mid-send splits — first try a clean pre-send
    # crash, else drop the delivered messages one by one.
    for round_no, victim in _entries(schedule):
        if not schedule[round_no][victim]:
            continue
        candidate = _with_clean_crash(schedule, round_no, victim)
        if still_fails(n, candidate):
            schedule = candidate
            continue
        kept = list(schedule[round_no][victim])
        position = 0
        while position < len(kept):
            candidate_kept = tuple(kept[:position] + kept[position + 1:])
            candidate = {r: dict(step) for r, step in schedule.items()}
            candidate[round_no][victim] = candidate_kept
            candidate = normalize_schedule(candidate)
            if still_fails(n, candidate):
                schedule = candidate
                kept = list(candidate_kept)
            else:
                position += 1

    # Pass 3: walk n down while the violation persists.
    while n > 2:
        candidate_n = n - 1
        candidate = normalize_schedule({
            round_no: {v: kept for v, kept in step.items()
                       if v < candidate_n}
            for round_no, step in schedule.items()
        })
        if still_fails(candidate_n, candidate):
            n = candidate_n
            schedule = candidate
        else:
            break

    # Re-record the minimal execution so the artifact replays strictly.
    executions += 1
    outcome = probe(artifact.scenario, n, artifact.seed, schedule,
                    artifact.params, record=True)
    if outcome is None or outcome.invariant != target:
        raise RuntimeError(
            f"shrinker lost the violation: {artifact.describe()} "
            f"no longer fails with the minimized schedule"
        )
    recorded = normalize_schedule(outcome.adversary.schedule)
    violation_round, nodes, detail = outcome.violation_fields()
    minimized = ReproArtifact(
        scenario=artifact.scenario,
        n=n,
        f=schedule_size(recorded),
        seed=artifact.seed,
        params=dict(artifact.params),
        schedule=recorded,
        invariant=target,
        violation_round=violation_round,
        nodes=tuple(nodes),
        detail=detail,
        code_version=code_version(),
    )
    return ShrinkReport(
        artifact=minimized,
        executions=executions,
        entries_before=entries_before,
        entries_after=schedule_size(recorded),
        n_before=artifact.n,
        n_after=n,
    )
