"""Named falsification scenarios and adversary factories.

A *scenario* is one end-to-end protocol execution parameterized over an
explicit crash adversary and a monitor suite — the unit the campaign
runner randomizes, the shrinker re-executes, and a repro artifact pins
down.  Scenarios deliberately mirror the seeding conventions of the
sweep drivers in :mod:`repro.analysis.experiments` (identities from
``Random(seed)``, network seed ``seed + 2``) so a falsified
configuration is directly comparable to a sweep row.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Callable, Optional

from repro.adversary.base import CrashAdversary
from repro.adversary.crash import (
    CommitteeHunter,
    MidSendPartitioner,
    RandomCrash,
)
from repro.falsify.faulty import RacyRankNode
from repro.falsify.monitors import Monitor, default_monitors
from repro.faults.base import FaultModel
from repro.faults.spec import build_fault_model
from repro.sim.messages import CostModel
from repro.sim.runner import ExecutionResult, run_network

#: ``fn(n, f, seed, adversary, monitors, params, observer=None,``
#: ``fault_model=None) -> ExecutionResult``
ScenarioFn = Callable[..., ExecutionResult]


@dataclass(frozen=True)
class Scenario:
    """A named falsification target.

    ``bound`` is the namespace contract its monitor suite enforces
    (``strong`` | ``tight`` | ``loose``).
    """

    name: str
    run: ScenarioFn
    bound: str = "strong"
    description: str = ""


SCENARIOS: dict[str, Scenario] = {}

#: Adversary kinds the campaign randomizes over by default.
DEFAULT_ADVERSARIES = ("random", "hunter", "partitioner")

#: Per-round crash probability of the ``random`` falsification
#: adversary; deliberately higher than the sweeps' 0.05 so the budget
#: is usually spent within the execution.
FALSIFY_CRASH_RATE = 0.15


def register_scenario(scenario: Scenario) -> Scenario:
    SCENARIOS[scenario.name] = scenario
    return scenario


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def resolve_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None


def make_adversary(
    kind: Optional[str], f: int, seed: int, *, rate: Optional[float] = None
) -> Optional[CrashAdversary]:
    """Build a falsification adversary; ``None``/``"none"``/``f=0`` → none."""
    if kind is None or kind == "none" or f <= 0:
        return None
    rng = Random(seed + 1)
    if kind == "random":
        return RandomCrash(f, rate=rate or FALSIFY_CRASH_RATE, rng=rng)
    if kind == "hunter":
        return CommitteeHunter(f, rng)
    if kind == "partitioner":
        return MidSendPartitioner(f, rng)
    raise ValueError(
        f"unknown adversary kind {kind!r}; expected one of "
        f"none, random, hunter, partitioner"
    )


def monitors_for(scenario: Scenario, n: int, f: int,
                 watchdog_rounds: Optional[int] = None) -> tuple[Monitor, ...]:
    """The default monitor suite for one scenario execution."""
    return default_monitors(n, f, bound=scenario.bound,
                            watchdog_rounds=watchdog_rounds)


def run_scenario(
    name: str,
    n: int,
    f: int,
    seed: int,
    *,
    adversary: Optional[CrashAdversary] = None,
    monitors: tuple[Monitor, ...] = (),
    params: Optional[dict] = None,
    observer: Optional[object] = None,
    fault_model: Optional[FaultModel] = None,
) -> ExecutionResult:
    """Execute one scenario under an explicit adversary and monitors.

    A link-fault model may be supplied two ways: an explicit
    ``fault_model`` instance, or — the replayable path — a
    :mod:`repro.faults.spec` spec under ``params["faults"]`` (JSON text
    or a list of entry dicts), which the scenario builds with
    :func:`build_fault_model` from the execution seed.  The spec form
    travels through repro artifacts and engine rows, so shrinking and
    strict replay reconstruct the identical channel.
    """
    scenario = resolve_scenario(name)
    return scenario.run(n, f, seed, adversary, monitors, dict(params or {}),
                        observer=observer, fault_model=fault_model)


# ---------------------------------------------------------------------------
# Concrete scenarios


def _population(n: int, seed: int) -> tuple[list[int], int]:
    from repro.analysis.experiments import default_namespace, sample_uids

    namespace = default_namespace(n)
    return sample_uids(n, namespace, Random(seed)), namespace


def _faults_from(params, n, seed, fault_model, default=None):
    """Resolve a scenario's fault model: explicit instance wins, then
    ``params["faults"]`` (the replayable spec form), then the scenario's
    deterministic default spec (a function of ``n`` only, so shrinking
    ``n`` rebuilds the matching channel)."""
    if fault_model is not None:
        return fault_model
    spec = params.get("faults")
    if spec in (None, "", "[]") and default is not None:
        spec = default(n)
    return build_fault_model(spec, n, seed)


def _crash_scenario(n, f, seed, adversary, monitors, params, observer=None,
                    fault_model=None):
    from repro.analysis.experiments import EXPERIMENT_ELECTION_CONSTANT
    from repro.core.crash_renaming import (
        CrashRenamingConfig,
        run_crash_renaming,
    )

    uids, namespace = _population(n, seed)
    config = CrashRenamingConfig(
        election_constant=params.get("election_constant",
                                     EXPERIMENT_ELECTION_CONSTANT),
        early_stopping=params.get("early_stopping", False),
    )
    return run_crash_renaming(
        uids, namespace=namespace, adversary=adversary, config=config,
        seed=seed + 2, trace=True, monitors=monitors, observer=observer,
        fault_model=_faults_from(params, n, seed, fault_model),
    )


def _obg_scenario(n, f, seed, adversary, monitors, params, observer=None,
                  fault_model=None):
    from repro.baselines.obg_halving import run_obg_halving

    uids, namespace = _population(n, seed)
    return run_obg_halving(
        uids, namespace=namespace, adversary=adversary,
        seed=seed + 2, trace=True, monitors=monitors, observer=observer,
        fault_model=_faults_from(params, n, seed, fault_model),
    )


def _balls_scenario(n, f, seed, adversary, monitors, params, observer=None,
                    fault_model=None):
    from repro.baselines.balls_into_slots import run_balls_into_slots

    uids, namespace = _population(n, seed)
    return run_balls_into_slots(
        uids, namespace=namespace, slots=params.get("slots"),
        adversary=adversary, seed=seed + 2, trace=True,
        monitors=monitors, observer=observer,
        fault_model=_faults_from(params, n, seed, fault_model),
    )


def _gossip_scenario(n, f, seed, adversary, monitors, params, observer=None,
                     fault_model=None):
    from repro.baselines.collect_rank import run_collect_rank

    uids, namespace = _population(n, seed)
    return run_collect_rank(
        uids, namespace=namespace, adversary=adversary,
        assumed_faults=params.get("assumed_faults"),
        seed=seed + 2, trace=True, monitors=monitors, observer=observer,
        fault_model=_faults_from(params, n, seed, fault_model),
    )


def _planted_duplicate_scenario(n, f, seed, adversary, monitors, params,
                                observer=None, fault_model=None):
    uids, namespace = _population(n, seed)
    cost = CostModel(n=n, namespace=namespace)
    processes = [RacyRankNode(uid) for uid in uids]
    return run_network(
        processes, cost, crash_adversary=adversary,
        seed=seed + 2, trace=True, monitors=monitors, observer=observer,
        fault_model=_faults_from(params, n, seed, fault_model),
    )


# Default fault specs of the fault scenarios: deterministic functions of
# n only, so a shrunk artifact at a smaller n rebuilds the matching
# channel.  Chosen from the measured degradation frontier (EXPERIMENTS
# F15): gossip's flooding redundancy absorbs omission, duplication,
# *and* a healing partition, while committee renaming — which assumes
# reliable synchronous links — genuinely loses unique-names under
# omission, and under duplicate delivery once a mid-send crash is
# composed in (see the `crash-dup` scenario below).


def _gossip_fault_spec(n: int) -> list[dict]:
    return [
        {"kind": "omission", "p": 0.05, "budget": 2 * n},
        {"kind": "partition", "start": 2, "end": 5},
    ]


def _dup_spec(n: int) -> list[dict]:
    return [{"kind": "duplicate", "p": 0.2}]


def _gossip_faults_scenario(n, f, seed, adversary, monitors, params,
                            observer=None, fault_model=None):
    fault_model = _faults_from(params, n, seed, fault_model,
                               default=_gossip_fault_spec)
    return _gossip_scenario(n, f, seed, adversary, monitors, params,
                            observer=observer, fault_model=fault_model)


def _gossip_dup_scenario(n, f, seed, adversary, monitors, params,
                         observer=None, fault_model=None):
    fault_model = _faults_from(params, n, seed, fault_model,
                               default=_dup_spec)
    return _gossip_scenario(n, f, seed, adversary, monitors, params,
                            observer=observer, fault_model=fault_model)


def _crash_dup_scenario(n, f, seed, adversary, monitors, params,
                        observer=None, fault_model=None):
    fault_model = _faults_from(params, n, seed, fault_model,
                               default=_dup_spec)
    return _crash_scenario(n, f, seed, adversary, monitors, params,
                           observer=observer, fault_model=fault_model)


register_scenario(Scenario(
    "crash", _crash_scenario,
    description="committee renaming under a crash adversary (Thm 1.2)",
))
register_scenario(Scenario(
    "obg", _obg_scenario,
    description="all-to-all halving baseline under crashes",
))
register_scenario(Scenario(
    "balls", _balls_scenario,
    description="balls-into-slots baseline under crashes",
))
register_scenario(Scenario(
    "gossip", _gossip_scenario,
    description="full-information gossip baseline under crashes",
))
register_scenario(Scenario(
    "planted-duplicate", _planted_duplicate_scenario,
    description="fault-injection fixture: racy rank renaming that emits "
                "duplicate names under a mid-send crash",
))
register_scenario(Scenario(
    "gossip-faults", _gossip_faults_scenario,
    description="gossip baseline over lossy, healing-partition links "
                "(budgeted omission + transient partition): safety and "
                "liveness both survive",
))
register_scenario(Scenario(
    "gossip-dup", _gossip_dup_scenario,
    description="gossip baseline over an at-least-once channel (20% "
                "duplicate delivery): set-union gossip is idempotent, "
                "so safety holds",
))
register_scenario(Scenario(
    "crash-dup", _crash_dup_scenario,
    description="committee renaming over an at-least-once channel (20% "
                "duplicate delivery): NOT expected to stay clean — "
                "composed with a mid-send crash adversary, duplicated "
                "committee votes falsify unique-names (a deliberate "
                "demonstration target, excluded from the defaults)",
))

#: Scenarios the smoke campaign runs by default — every real driver
#: plus the two empirically-clean fault-model scenarios, excluding the
#: planted fault-injection fixtures and the known-to-falsify
#: `crash-dup` probe.
DEFAULT_SCENARIOS = ("crash", "obg", "balls", "gossip",
                     "gossip-faults", "gossip-dup")
