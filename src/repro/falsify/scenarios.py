"""Named falsification scenarios and adversary factories.

A *scenario* is one end-to-end protocol execution parameterized over an
explicit crash adversary and a monitor suite — the unit the campaign
runner randomizes, the shrinker re-executes, and a repro artifact pins
down.  Scenarios deliberately mirror the seeding conventions of the
sweep drivers in :mod:`repro.analysis.experiments` (identities from
``Random(seed)``, network seed ``seed + 2``) so a falsified
configuration is directly comparable to a sweep row.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Callable, Optional

from repro.adversary.base import CrashAdversary
from repro.adversary.crash import (
    CommitteeHunter,
    MidSendPartitioner,
    RandomCrash,
)
from repro.falsify.faulty import RacyRankNode
from repro.falsify.monitors import Monitor, default_monitors
from repro.sim.messages import CostModel
from repro.sim.runner import ExecutionResult, run_network

#: ``fn(n, f, seed, adversary, monitors, params, observer=None)``
#: ``-> ExecutionResult``
ScenarioFn = Callable[..., ExecutionResult]


@dataclass(frozen=True)
class Scenario:
    """A named falsification target.

    ``bound`` is the namespace contract its monitor suite enforces
    (``strong`` | ``tight`` | ``loose``).
    """

    name: str
    run: ScenarioFn
    bound: str = "strong"
    description: str = ""


SCENARIOS: dict[str, Scenario] = {}

#: Adversary kinds the campaign randomizes over by default.
DEFAULT_ADVERSARIES = ("random", "hunter", "partitioner")

#: Per-round crash probability of the ``random`` falsification
#: adversary; deliberately higher than the sweeps' 0.05 so the budget
#: is usually spent within the execution.
FALSIFY_CRASH_RATE = 0.15


def register_scenario(scenario: Scenario) -> Scenario:
    SCENARIOS[scenario.name] = scenario
    return scenario


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def resolve_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None


def make_adversary(
    kind: Optional[str], f: int, seed: int, *, rate: Optional[float] = None
) -> Optional[CrashAdversary]:
    """Build a falsification adversary; ``None``/``"none"``/``f=0`` → none."""
    if kind is None or kind == "none" or f <= 0:
        return None
    rng = Random(seed + 1)
    if kind == "random":
        return RandomCrash(f, rate=rate or FALSIFY_CRASH_RATE, rng=rng)
    if kind == "hunter":
        return CommitteeHunter(f, rng)
    if kind == "partitioner":
        return MidSendPartitioner(f, rng)
    raise ValueError(
        f"unknown adversary kind {kind!r}; expected one of "
        f"none, random, hunter, partitioner"
    )


def monitors_for(scenario: Scenario, n: int, f: int,
                 watchdog_rounds: Optional[int] = None) -> tuple[Monitor, ...]:
    """The default monitor suite for one scenario execution."""
    return default_monitors(n, f, bound=scenario.bound,
                            watchdog_rounds=watchdog_rounds)


def run_scenario(
    name: str,
    n: int,
    f: int,
    seed: int,
    *,
    adversary: Optional[CrashAdversary] = None,
    monitors: tuple[Monitor, ...] = (),
    params: Optional[dict] = None,
    observer: Optional[object] = None,
) -> ExecutionResult:
    """Execute one scenario under an explicit adversary and monitors."""
    scenario = resolve_scenario(name)
    return scenario.run(n, f, seed, adversary, monitors, dict(params or {}),
                        observer=observer)


# ---------------------------------------------------------------------------
# Concrete scenarios


def _population(n: int, seed: int) -> tuple[list[int], int]:
    from repro.analysis.experiments import default_namespace, sample_uids

    namespace = default_namespace(n)
    return sample_uids(n, namespace, Random(seed)), namespace


def _crash_scenario(n, f, seed, adversary, monitors, params, observer=None):
    from repro.analysis.experiments import EXPERIMENT_ELECTION_CONSTANT
    from repro.core.crash_renaming import (
        CrashRenamingConfig,
        run_crash_renaming,
    )

    uids, namespace = _population(n, seed)
    config = CrashRenamingConfig(
        election_constant=params.get("election_constant",
                                     EXPERIMENT_ELECTION_CONSTANT),
        early_stopping=params.get("early_stopping", False),
    )
    return run_crash_renaming(
        uids, namespace=namespace, adversary=adversary, config=config,
        seed=seed + 2, trace=True, monitors=monitors, observer=observer,
    )


def _obg_scenario(n, f, seed, adversary, monitors, params, observer=None):
    from repro.baselines.obg_halving import run_obg_halving

    uids, namespace = _population(n, seed)
    return run_obg_halving(
        uids, namespace=namespace, adversary=adversary,
        seed=seed + 2, trace=True, monitors=monitors, observer=observer,
    )


def _balls_scenario(n, f, seed, adversary, monitors, params, observer=None):
    from repro.baselines.balls_into_slots import run_balls_into_slots

    uids, namespace = _population(n, seed)
    return run_balls_into_slots(
        uids, namespace=namespace, slots=params.get("slots"),
        adversary=adversary, seed=seed + 2, trace=True,
        monitors=monitors, observer=observer,
    )


def _gossip_scenario(n, f, seed, adversary, monitors, params, observer=None):
    from repro.baselines.collect_rank import run_collect_rank

    uids, namespace = _population(n, seed)
    return run_collect_rank(
        uids, namespace=namespace, adversary=adversary,
        assumed_faults=params.get("assumed_faults"),
        seed=seed + 2, trace=True, monitors=monitors, observer=observer,
    )


def _planted_duplicate_scenario(n, f, seed, adversary, monitors, params,
                                observer=None):
    uids, namespace = _population(n, seed)
    cost = CostModel(n=n, namespace=namespace)
    processes = [RacyRankNode(uid) for uid in uids]
    return run_network(
        processes, cost, crash_adversary=adversary,
        seed=seed + 2, trace=True, monitors=monitors, observer=observer,
    )


register_scenario(Scenario(
    "crash", _crash_scenario,
    description="committee renaming under a crash adversary (Thm 1.2)",
))
register_scenario(Scenario(
    "obg", _obg_scenario,
    description="all-to-all halving baseline under crashes",
))
register_scenario(Scenario(
    "balls", _balls_scenario,
    description="balls-into-slots baseline under crashes",
))
register_scenario(Scenario(
    "gossip", _gossip_scenario,
    description="full-information gossip baseline under crashes",
))
register_scenario(Scenario(
    "planted-duplicate", _planted_duplicate_scenario,
    description="fault-injection fixture: racy rank renaming that emits "
                "duplicate names under a mid-send crash",
))

#: Scenarios the smoke campaign runs by default — every real driver,
#: excluding the planted fault-injection fixtures.
DEFAULT_SCENARIOS = ("crash", "obg", "balls", "gossip")
