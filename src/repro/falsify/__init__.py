"""Falsification harness: invariant monitors, trace replay, shrinking.

Three layers, bottom to top:

* :mod:`repro.falsify.monitors` — per-round safety invariants hooked
  into the network via ``run_network(..., monitors=...)``; violations
  raise a structured :class:`InvariantViolation`.
* :mod:`repro.falsify.replay` / :mod:`repro.falsify.shrink` — record a
  failing execution's adversary schedule, serialize it to a JSON repro
  artifact, replay it deterministically, and delta-debug it down to
  the smallest execution that still fails.
* :mod:`repro.falsify.campaign` — the ``python -m repro falsify``
  campaign runner: randomized probes fanned out through the sweep
  engine, every finding shrunk and verified to replay.
"""

from repro.falsify.campaign import (
    CampaignConfig,
    CampaignResult,
    Finding,
    artifact_from_row,
    falsify_run_summary,
    replay_artifact,
    run_campaign,
    save_findings,
)
from repro.falsify.monitors import (
    CrashBudget,
    InvariantViolation,
    LedgerMonotone,
    Monitor,
    NamespaceBounds,
    RoundBudget,
    UniqueNames,
    default_monitors,
)
from repro.falsify.replay import (
    RecordingAdversary,
    ReplayAdversary,
    ReplayMismatch,
    ReproArtifact,
)
from repro.falsify.scenarios import (
    SCENARIOS,
    Scenario,
    make_adversary,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.falsify.shrink import ShrinkReport, probe, shrink_artifact

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CrashBudget",
    "Finding",
    "InvariantViolation",
    "LedgerMonotone",
    "Monitor",
    "NamespaceBounds",
    "RecordingAdversary",
    "ReplayAdversary",
    "ReplayMismatch",
    "ReproArtifact",
    "RoundBudget",
    "SCENARIOS",
    "Scenario",
    "ShrinkReport",
    "UniqueNames",
    "artifact_from_row",
    "default_monitors",
    "falsify_run_summary",
    "make_adversary",
    "probe",
    "register_scenario",
    "replay_artifact",
    "run_campaign",
    "run_scenario",
    "save_findings",
    "scenario_names",
    "shrink_artifact",
]
