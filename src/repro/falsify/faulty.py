"""Deliberately buggy protocols — fault-injection fixtures.

The falsifier needs known-bad targets to prove it can find, shrink,
and replay real violations; these fixtures play the role mutation
seeds play in a mutation-testing harness.  They are registered as
ordinary scenarios (``planted-duplicate``) so the CI smoke job can
assert the campaign actually falsifies something.

:class:`RacyRankNode` is a one-round renaming that is correct only in
failure-free executions: every node broadcasts its identity and takes
as its name the rank of its own identity among the identities it
heard.  A mid-send crash delivers the victim's broadcast to only some
survivors, so survivors disagree on the identity population and two of
them can compute the same rank — exactly the view-splitting hazard the
paper's committee algorithm defends against with its response round
(Lemma 2.3), here left undefended on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.messages import CostModel, Message, broadcast
from repro.sim.node import Context, Process, Program


@dataclass(frozen=True)
class RankHello(Message):
    """The racy renaming's single message: "my identity is ``uid``"."""

    uid: int

    def payload_bits(self, cost: CostModel) -> int:
        return cost.id_bits


class RacyRankNode(Process):
    """One participant of the planted-bug renaming (see module docs)."""

    def program(self, ctx: Context) -> Program:
        inbox = yield broadcast(ctx.n, RankHello(self.uid))
        heard = {
            envelope.message.uid
            for envelope in inbox
            if isinstance(envelope.message, RankHello)
        }
        heard.add(self.uid)
        return sorted(heard).index(self.uid) + 1
