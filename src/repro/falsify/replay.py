"""Capture and deterministic replay of adversary schedules.

A failing execution is only useful if it can be re-run.  Messages are
arbitrary protocol dataclasses, so a schedule is serialized *by
position*: for every crash the artifact records the round, the victim,
and the indices (into the victim's proposed send list of that round) of
the messages still delivered before the crash.  Because every execution
in this repo is deterministic given ``(scenario, n, f, seed)``, the
proposed send lists are reproducible and the indices pin down the exact
mid-send split.

* :class:`RecordingAdversary` wraps any
  :class:`~repro.adversary.base.CrashAdversary` and records the plan it
  actually applied, round by round.
* :class:`ReplayAdversary` re-applies a recorded schedule.  ``strict``
  replay raises :class:`ReplayMismatch` if the execution diverges from
  the recording (a victim already dead, an index out of range);
  lenient replay skips what no longer applies — that is what the
  shrinker needs while it perturbs the schedule.
* :class:`ReproArtifact` is the JSON repro file: scenario identity,
  schedule, and the violation it reproduces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.adversary.base import (
    CrashAdversary,
    CrashPlan,
    CrashPlanError,
    kept_send_indices,
)

#: round -> victim -> indices of the victim's proposed sends delivered.
Schedule = dict[int, dict[int, tuple[int, ...]]]

ARTIFACT_KIND = "repro.falsify/repro"
ARTIFACT_FORMAT = 1


class ReplayMismatch(RuntimeError):
    """A strict replay diverged from the recorded schedule."""


#: The recorder resolves kept sends to indices with the *same* rule the
#: network uses to apply a crash plan (identity first, then equality),
#: so a recorded index always names the instance the network delivered —
#: including when a victim proposed duplicate identical sends.
_indices_of = kept_send_indices


def schedule_size(schedule: Mapping[int, Mapping[int, Sequence[int]]]) -> int:
    """Number of crash entries (victims) across the whole schedule."""
    return sum(len(step) for step in schedule.values())


def normalize_schedule(
    schedule: Mapping[int, Mapping[int, Sequence[int]]],
) -> Schedule:
    """Int keys, tuple values, empty steps dropped — the canonical form."""
    return {
        int(round_no): {
            int(victim): tuple(int(i) for i in kept)
            for victim, kept in step.items()
        }
        for round_no, step in schedule.items()
        if step
    }


class RecordingAdversary(CrashAdversary):
    """Wraps an adversary and records every applied plan as indices.

    The wrapper is transparent: it delegates ``plan_round`` to the
    inner adversary and forwards ``note_crashes`` so adaptive inner
    strategies keep seeing their own remaining budget.
    """

    def __init__(self, inner: CrashAdversary):
        super().__init__(budget=inner.budget)
        self.inner = inner
        self.schedule: Schedule = {}

    def plan_round(self, round_no, proposed, alive, trace) -> CrashPlan:
        plan = self.inner.plan_round(round_no, proposed, alive, trace)
        if plan:
            self.schedule[round_no] = {
                victim: kept_send_indices(kept, proposed.get(victim, ()))
                for victim, kept in plan.items()
            }
        return plan

    def note_crashes(self, victims: set[int]) -> None:
        super().note_crashes(victims)
        self.inner.note_crashes(victims)


class ReplayAdversary(CrashAdversary):
    """Re-applies a recorded schedule deterministically.

    ``strict=True`` (artifact verification) raises
    :class:`ReplayMismatch` on any divergence from the recording;
    ``strict=False`` (shrinking) silently drops entries that no longer
    apply, because removing one crash legitimately changes everything
    downstream of it.
    """

    def __init__(
        self,
        schedule: Mapping[int, Mapping[int, Sequence[int]]],
        *,
        strict: bool = True,
    ):
        schedule = normalize_schedule(schedule)
        super().__init__(budget=schedule_size(schedule))
        self.schedule = schedule
        self.strict = strict

    def plan_round(self, round_no, proposed, alive, trace) -> CrashPlan:
        step = self.schedule.get(round_no)
        if not step:
            return {}
        plan: dict[int, list] = {}
        for victim, kept_indices in step.items():
            if victim not in alive:
                if self.strict:
                    raise ReplayMismatch(
                        f"round {round_no}: recorded victim {victim} is not "
                        f"alive in the replayed execution"
                    )
                continue
            sends = list(proposed.get(victim, ()))
            out_of_range = [i for i in kept_indices if i >= len(sends)]
            if out_of_range and self.strict:
                raise ReplayMismatch(
                    f"round {round_no}: victim {victim} proposed "
                    f"{len(sends)} messages, recording kept indices "
                    f"{sorted(out_of_range)}"
                )
            plan[victim] = [sends[i] for i in kept_indices if i < len(sends)]
        return plan


# ---------------------------------------------------------------------------
# Repro artifacts


def schedule_to_json(schedule: Schedule) -> list[dict]:
    return [
        {
            "round": round_no,
            "victims": {
                str(victim): list(kept)
                for victim, kept in sorted(step.items())
            },
        }
        for round_no, step in sorted(schedule.items())
    ]


def schedule_from_json(data: Sequence[Mapping]) -> Schedule:
    return normalize_schedule({
        step["round"]: {
            int(victim): tuple(kept)
            for victim, kept in step.get("victims", {}).items()
        }
        for step in data
    })


@dataclass
class ReproArtifact:
    """A self-contained, replayable description of a failing execution."""

    scenario: str
    n: int
    f: int
    seed: int
    invariant: str
    schedule: Schedule = field(default_factory=dict)
    params: dict = field(default_factory=dict)
    violation_round: int = 0
    nodes: tuple[int, ...] = ()
    detail: object = None
    code_version: str = ""

    def to_json(self) -> dict:
        return {
            "kind": ARTIFACT_KIND,
            "format": ARTIFACT_FORMAT,
            "scenario": self.scenario,
            "n": self.n,
            "f": self.f,
            "seed": self.seed,
            "params": dict(self.params),
            "schedule": schedule_to_json(self.schedule),
            "violation": {
                "invariant": self.invariant,
                "round": self.violation_round,
                "nodes": list(self.nodes),
                "detail": self.detail,
            },
            "code_version": self.code_version,
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "ReproArtifact":
        if data.get("kind") != ARTIFACT_KIND:
            raise ValueError(
                f"not a falsify repro artifact: kind={data.get('kind')!r}"
            )
        if data.get("format") != ARTIFACT_FORMAT:
            raise ValueError(
                f"unsupported artifact format {data.get('format')!r} "
                f"(this build reads format {ARTIFACT_FORMAT})"
            )
        violation = data.get("violation", {})
        return cls(
            scenario=data["scenario"],
            n=int(data["n"]),
            f=int(data["f"]),
            seed=int(data["seed"]),
            params=dict(data.get("params", {})),
            schedule=schedule_from_json(data.get("schedule", ())),
            invariant=violation.get("invariant", "unknown"),
            violation_round=int(violation.get("round", 0)),
            nodes=tuple(violation.get("nodes", ())),
            detail=violation.get("detail"),
            code_version=data.get("code_version", ""),
        )

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True)
                        + "\n")
        return path

    @classmethod
    def load(cls, path) -> "ReproArtifact":
        return cls.from_json(json.loads(Path(path).read_text()))

    def describe(self) -> str:
        return (
            f"{self.scenario}(n={self.n}, f={self.f}, seed={self.seed}) "
            f"violates {self.invariant} at round {self.violation_round} "
            f"with {schedule_size(self.schedule)} scheduled crashes"
        )
