"""Structured observability events: ring buffer, spans, JSONL, schema.

An *event* is one flat JSON object describing something the harness did
— a round starting, a crash plan being applied, a sweep chunk being
dispatched.  Events are collected by an :class:`EventRecorder`, a
bounded ring buffer (old events fall off the front, so a long sweep
cannot exhaust memory), and serialized as JSON Lines, one event per
line, in emission order.

Every event carries:

``seq``
    Monotonically increasing integer, unique within one recorder.
``ts``
    Seconds since the recorder was created (``time.perf_counter``
    deltas — monotonic, unaffected by wall-clock adjustments).
``kind``
    A dotted event name, e.g. ``"round.begin"`` or ``"store.hit"``.

plus ``round`` / ``node`` when the event is attached to a round or a
node, and arbitrary extra scalar fields under ``data``.  *Spans* are
emitted as paired ``<kind>.begin`` / ``<kind>.end`` events sharing a
``span`` id; the ``.end`` event carries the measured ``wall_s``.

The default observer everywhere in the engine is ``None`` — the no-op.
Instrumented code guards every emission with a cheap
:func:`observing` check, so the disabled path costs one attribute
load per *round* (never per message), and the A/B tests in
``tests/test_obs_ab.py`` prove counted results are byte-identical with
observability detached.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Iterable, Iterator, Optional

#: Event stream format identifier, stamped into every JSONL header.
EVENT_FORMAT = "repro.obs/events@1"

#: Declarative schema each event must satisfy.  Kept as plain data (a
#: strict subset of JSON Schema) so it can be published in docs and
#: checked without a third-party validator.
EVENT_SCHEMA = {
    "type": "object",
    "required": ["seq", "ts", "kind"],
    "properties": {
        "seq": {"type": "integer", "minimum": 0},
        "ts": {"type": "number", "minimum": 0},
        "kind": {"type": "string", "minLength": 1},
        "round": {"type": "integer", "minimum": 0},
        "node": {"type": "integer", "minimum": 0},
        "span": {"type": "integer", "minimum": 0},
        "data": {"type": "object"},
    },
    "additionalProperties": False,
}

_TYPE_CHECKS = {
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (isinstance(v, (int, float))
                         and not isinstance(v, bool)),
    "string": lambda v: isinstance(v, str),
    "object": lambda v: isinstance(v, dict),
}


def validate_event(event: object) -> list[str]:
    """Check one decoded event against :data:`EVENT_SCHEMA`.

    Returns a list of human-readable problems — empty means valid.
    """
    if not isinstance(event, dict):
        return [f"event is {type(event).__name__}, expected object"]
    problems = []
    for key in EVENT_SCHEMA["required"]:
        if key not in event:
            problems.append(f"missing required field {key!r}")
    for key, value in event.items():
        spec = EVENT_SCHEMA["properties"].get(key)
        if spec is None:
            problems.append(f"unexpected field {key!r}")
            continue
        if not _TYPE_CHECKS[spec["type"]](value):
            problems.append(
                f"field {key!r} is {type(value).__name__}, "
                f"expected {spec['type']}"
            )
            continue
        if "minimum" in spec and value < spec["minimum"]:
            problems.append(f"field {key!r} = {value} below "
                            f"{spec['minimum']}")
        if spec.get("minLength") and len(value) < spec["minLength"]:
            problems.append(f"field {key!r} is empty")
    if "data" in event and not problems:
        for key, value in event["data"].items():
            if not isinstance(value, (str, int, float, bool, type(None))):
                problems.append(
                    f"data field {key!r} is {type(value).__name__}, "
                    "expected a JSON scalar"
                )
    return problems


def observing(observer: Optional["Observer"]) -> bool:
    """True when ``observer`` wants events.  The single guard every
    instrumented call site uses; ``None`` (the default everywhere) and
    a disabled observer both short-circuit to False."""
    return observer is not None and observer.enabled


class Observer:
    """No-op base observer; the contract every recorder implements.

    ``enabled`` gates event emission; ``profiler`` (optional, may stay
    ``None``) is a :class:`repro.obs.profile.PhaseProfiler` that the
    network fills with per-phase wall times when attached.
    """

    enabled = False
    profiler = None

    def emit(self, kind: str, *, round_no: Optional[int] = None,
             node: Optional[int] = None, **data) -> None:
        """Record one event.  The base class drops it."""

    def span(self, kind: str, **data) -> "_Span":
        """Context manager emitting ``<kind>.begin`` / ``<kind>.end``."""
        return _Span(self, kind, data)


#: Shared do-nothing observer for call sites that want a non-None value.
NULL_OBSERVER = Observer()


class _Span:
    """Paired begin/end events around a block, with measured wall time."""

    __slots__ = ("observer", "kind", "data", "span_id", "started")

    _next_id = 0

    def __init__(self, observer: Observer, kind: str, data: dict):
        self.observer = observer
        self.kind = kind
        self.data = data

    def __enter__(self) -> "_Span":
        _Span._next_id += 1
        self.span_id = _Span._next_id
        self.started = time.perf_counter()
        if self.observer.enabled:
            self.observer.emit(f"{self.kind}.begin", span=self.span_id,
                               **self.data)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.observer.enabled:
            self.observer.emit(
                f"{self.kind}.end", span=self.span_id,
                wall_s=round(time.perf_counter() - self.started, 6),
                ok=exc_type is None, **self.data,
            )


class EventRecorder(Observer):
    """Ring-buffered event collector.

    Parameters
    ----------
    capacity:
        Maximum events retained; older events are dropped from the
        front (``dropped`` counts them).  ``None`` keeps everything.
    profile:
        When true, attaches a fresh
        :class:`~repro.obs.profile.PhaseProfiler` as ``.profiler`` so
        the network also collects per-phase wall times.
    """

    enabled = True

    def __init__(self, capacity: Optional[int] = 65536, *,
                 profile: bool = False):
        self._events: deque[dict] = deque(maxlen=capacity)
        self.capacity = capacity
        self.dropped = 0
        self._seq = 0
        self._epoch = time.perf_counter()
        self.profiler = None
        if profile:
            from repro.obs.profile import PhaseProfiler

            self.profiler = PhaseProfiler()

    def emit(self, kind: str, *, round_no: Optional[int] = None,
             node: Optional[int] = None, span: Optional[int] = None,
             **data) -> None:
        event: dict = {
            "seq": self._seq,
            "ts": round(time.perf_counter() - self._epoch, 6),
            "kind": kind,
        }
        self._seq += 1
        if round_no is not None:
            event["round"] = round_no
        if node is not None:
            event["node"] = node
        if span is not None:
            event["span"] = span
        if data:
            event["data"] = data
        if (self._events.maxlen is not None
                and len(self._events) == self._events.maxlen):
            self.dropped += 1
        self._events.append(event)

    # -- queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._events)

    def events(self, kind: Optional[str] = None) -> list[dict]:
        """Retained events, oldest first, optionally filtered by kind
        (exact match or dotted prefix: ``"round"`` matches
        ``"round.begin"``)."""
        if kind is None:
            return list(self._events)
        prefix = kind + "."
        return [e for e in self._events
                if e["kind"] == kind or e["kind"].startswith(prefix)]

    def tail(self, count: int) -> list[dict]:
        return list(self._events)[-count:]

    # -- persistence --------------------------------------------------

    def write_jsonl(self, path) -> Path:
        """Write the retained events as JSON Lines; returns the path.

        The first line is a self-describing header carrying the format
        tag, the capacity, and how many events were dropped.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fp:
            fp.write(json.dumps({
                "seq": 0, "ts": 0.0, "kind": "stream.header",
                "data": {
                    "format": EVENT_FORMAT,
                    "events": len(self._events),
                    "dropped": self.dropped,
                },
            }) + "\n")
            for event in self._events:
                fp.write(json.dumps(event, sort_keys=True) + "\n")
        return path


def read_jsonl(path) -> list[dict]:
    """Decode an event file written by :meth:`EventRecorder.write_jsonl`.

    Skips the stream header; raises ``ValueError`` on a line that is
    not valid JSON.
    """
    events = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{lineno}: not JSON: {error}") from None
        if isinstance(event, dict) and event.get("kind") == "stream.header":
            continue
        events.append(event)
    return events


def validate_events(events: Iterable[dict]) -> list[str]:
    """Validate a batch; returns ``"event N: problem"`` strings."""
    problems = []
    for index, event in enumerate(events):
        for problem in validate_event(event):
            problems.append(f"event {index}: {problem}")
    return problems
