"""Wall-clock phase profiling for executions and sweeps.

A :class:`PhaseProfiler` accumulates ``(calls, total seconds)`` per
named phase.  The network fills it with the four phases of
:meth:`repro.sim.network.SyncNetwork.step` — ``plan`` (proposal
collection + crash-plan application), ``charge`` (bit accounting),
``deliver`` (envelope fan-out), ``advance`` (driving the node
programs and monitors) — and the sweep engine adds ``driver:<name>``
entries from :func:`repro.engine.sweeps.execute_request` timings.

Profiling is opt-in: attach a profiler via an observer
(``EventRecorder(profile=True)``) or pass one directly where accepted.
With no profiler attached the engine takes its uninstrumented fast
path, so the default costs nothing.

:func:`PhaseProfiler.report` returns a self-describing dict (schema
tag, unit, per-phase calls/wall/mean) that ``benchmarks/perf.py``
embeds verbatim under the ``"phases"`` key of ``BENCH_perf.json``.
"""

from __future__ import annotations

import time
from typing import Optional

#: Schema tag stamped into every report so downstream consumers can
#: detect format changes.
PROFILE_FORMAT = "repro.obs/profile@1"

#: The four phases of one ``SyncNetwork.step``, in execution order.
STEP_PHASES = ("plan", "charge", "deliver", "advance")


class PhaseProfiler:
    """Accumulates wall-clock time per named phase."""

    __slots__ = ("_calls", "_totals")

    def __init__(self):
        self._calls: dict[str, int] = {}
        self._totals: dict[str, float] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Charge ``seconds`` of wall time to ``phase``."""
        self._calls[phase] = self._calls.get(phase, 0) + 1
        self._totals[phase] = self._totals.get(phase, 0.0) + seconds

    def time(self, phase: str) -> "_Timer":
        """Context manager charging the block's duration to ``phase``."""
        return _Timer(self, phase)

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's accumulations into this one."""
        for phase, calls in other._calls.items():
            self._calls[phase] = self._calls.get(phase, 0) + calls
            self._totals[phase] = (self._totals.get(phase, 0.0)
                                   + other._totals[phase])

    def total(self, phase: str) -> float:
        return self._totals.get(phase, 0.0)

    def calls(self, phase: str) -> int:
        return self._calls.get(phase, 0)

    def phases(self) -> list[str]:
        return list(self._calls)

    def __bool__(self) -> bool:
        return bool(self._calls)

    def report(self) -> dict:
        """The self-describing aggregation embedded in benchmarks.

        ``phases`` preserves first-charge order; every row carries the
        call count, total wall seconds, and mean seconds per call.
        """
        return {
            "schema": PROFILE_FORMAT,
            "unit": "seconds",
            "phases": {
                phase: {
                    "calls": self._calls[phase],
                    "wall_s": round(self._totals[phase], 6),
                    "mean_s": round(
                        self._totals[phase] / self._calls[phase], 9),
                }
                for phase in self._calls
            },
        }


class _Timer:
    __slots__ = ("profiler", "phase", "started")

    def __init__(self, profiler: PhaseProfiler, phase: str):
        self.profiler = profiler
        self.phase = phase

    def __enter__(self) -> "_Timer":
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.profiler.add(self.phase, time.perf_counter() - self.started)


def profile_scenario(
    scenario: str,
    n: int,
    f: int,
    seed: int,
    *,
    adversary: Optional[str] = "random",
    observer=None,
    params: Optional[dict] = None,
):
    """Run one falsification scenario with profiling attached.

    Returns ``(result, report)`` where ``result`` is the scenario's
    :class:`~repro.sim.runner.ExecutionResult` and ``report`` is the
    profiler's self-describing dict.  When ``observer`` is ``None`` a
    fresh profiling :class:`~repro.obs.events.EventRecorder` is used
    (and discarded); pass your own recorder to keep the event stream.
    """
    from repro.falsify.scenarios import make_adversary, run_scenario
    from repro.obs.events import EventRecorder

    if observer is None:
        observer = EventRecorder(profile=True)
    if observer.profiler is None:
        raise ValueError("observer has no profiler attached; construct it "
                         "with EventRecorder(profile=True)")
    crash_adversary = make_adversary(adversary, f, seed)
    result = run_scenario(
        scenario, n, f, seed,
        adversary=crash_adversary, params=params, observer=observer,
    )
    return result, observer.profiler.report()
