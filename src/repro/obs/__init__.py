"""Zero-cost-when-off observability for executions and sweeps.

Three pieces, all opt-in through an ``observer=`` parameter whose
default (``None``) leaves every hot path untouched:

* :mod:`repro.obs.events` — ring-buffered structured events with
  spans, a pure-python JSON schema validator, and JSONL persistence.
* :mod:`repro.obs.profile` — wall-clock phase profiling for the four
  phases of ``SyncNetwork.step`` and per-driver sweep timings.
* the ``telemetry`` table of :class:`repro.engine.store.RunStore` and
  the ``python -m repro obs`` CLI (``tail`` / ``profile`` / ``report``).
"""

from repro.obs.events import (
    EVENT_FORMAT,
    EVENT_SCHEMA,
    NULL_OBSERVER,
    EventRecorder,
    Observer,
    observing,
    read_jsonl,
    validate_event,
    validate_events,
)
from repro.obs.fabric import (
    FABRIC_EVENT_FORMAT,
    FABRIC_EVENT_KINDS,
    validate_fabric_events,
)
from repro.obs.profile import (
    PROFILE_FORMAT,
    STEP_PHASES,
    PhaseProfiler,
    profile_scenario,
)

__all__ = [
    "EVENT_FORMAT",
    "EVENT_SCHEMA",
    "NULL_OBSERVER",
    "EventRecorder",
    "Observer",
    "observing",
    "read_jsonl",
    "validate_event",
    "validate_events",
    "FABRIC_EVENT_FORMAT",
    "FABRIC_EVENT_KINDS",
    "validate_fabric_events",
    "PROFILE_FORMAT",
    "STEP_PHASES",
    "PhaseProfiler",
    "profile_scenario",
]
