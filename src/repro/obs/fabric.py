"""The ``repro.obs/fabric@1`` event surface of the sweep fabric.

Fabric events ride the existing :mod:`repro.obs` recorder — they are
ordinary ``repro.obs/events@1`` events whose ``kind`` is dotted under
``fabric.`` — so ``python -m repro obs tail`` validates and prints
them like any other stream.  This module pins the *fabric-specific*
contract on top: which kinds exist and which ``data`` fields each must
carry, so the chaos tests and CI's ``fabric-smoke`` job can
schema-validate a campaign, not just the generic envelope.

Each worker process writes its own JSONL stream (one file per worker
under the campaign's event directory) — crash forensics must survive
the crash, so events are never funneled through a coordinator that
might be the thing that died.
"""

from __future__ import annotations

from typing import Iterable

#: Format tag for the fabric event family (stamped into status output
#: and checked by CI's fabric-smoke job).
FABRIC_EVENT_FORMAT = "repro.obs/fabric@1"

#: Required ``data`` fields per fabric event kind.
FABRIC_EVENT_KINDS: dict[str, tuple[str, ...]] = {
    # Campaign lifecycle.  ``new`` is how many tasks this enqueue
    # actually inserted (re-enqueueing is idempotent).
    "fabric.campaign.enqueue": ("campaign", "tasks", "new"),
    # Worker lifecycle.  ``reason`` on stop is "drained" (no claimable
    # work left), "sigterm" (graceful drain), or "error".
    "fabric.worker.start": ("worker", "store", "campaign"),
    "fabric.worker.stop": ("worker", "reason", "settled", "failed",
                           "leases_lost"),
    # Lease/settlement state machine.  ``attempt`` is the lease
    # generation (1 = first execution, more after crash recovery).
    "fabric.task.lease": ("campaign", "task", "worker", "attempt",
                          "deadline"),
    # ``renewed`` is False when the heartbeat found the lease gone
    # (reaped, or settled by a competing recovery worker).
    "fabric.task.heartbeat": ("campaign", "task", "worker", "renewed",
                              "deadline"),
    # A stale lease returned to pending; ``owner`` is who lost it.
    "fabric.task.reap": ("campaign", "task", "owner", "attempt"),
    # ``outcome`` is the backend's settle verdict: "settled" (this
    # worker performed the settlement), "already", "lost", "missing".
    # ``cached`` marks runs served from the store without executing;
    # ``run_attempts`` is the execution count recorded on the run row.
    "fabric.task.settle": ("campaign", "task", "worker", "state",
                           "outcome", "cached", "run_attempts",
                           "elapsed_s"),
}


def validate_fabric_events(events: Iterable[dict]) -> list[str]:
    """Fabric-contract validation on top of the generic event schema.

    Checks every ``fabric.*`` event against :data:`FABRIC_EVENT_KINDS`:
    known kind, all required ``data`` fields present.  Returns
    human-readable problems; empty means valid.  Non-fabric events are
    ignored (streams may interleave engine or round events).
    """
    problems: list[str] = []
    for index, event in enumerate(events):
        kind = event.get("kind", "")
        if not kind.startswith("fabric."):
            continue
        required = FABRIC_EVENT_KINDS.get(kind)
        if required is None:
            problems.append(f"event {index}: unknown fabric kind {kind!r}")
            continue
        data = event.get("data", {})
        for field in required:
            if field not in data:
                problems.append(
                    f"event {index}: {kind} missing data field {field!r}"
                )
    return problems
