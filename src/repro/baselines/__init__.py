"""Baseline renaming algorithms from Table 1's prior-work rows.

Both baselines are *all-to-all* designs, which is exactly the property
the paper's algorithms remove; measured side by side they reproduce the
``Omega(n^2)`` message / ``Omega(n^3)`` bit wall of Table 1.

* :mod:`repro.baselines.obg_halving` -- every node halves its own
  interval from everyone's broadcast status each phase, in the style of
  Okun-Barak-Gafni [34] / Chaudhuri et al. [15]: ``O(log n)`` rounds,
  ``Theta(n^2 log n)`` messages of ``O(log N)`` bits.
* :mod:`repro.baselines.collect_rank` -- full-information gossip for
  ``f_assumed + 1`` rounds then rank-in-set, in the style of the early
  consensus-based solutions [20, 33]: rounds grow with the *assumed*
  fault bound and messages carry ``Theta(n log N)`` bits, i.e.
  ``O(n^3 log N)`` bits at full resilience.
* :mod:`repro.baselines.balls_into_slots` -- randomized slot racing in
  the spirit of Alistarh et al.'s balls-into-leaves [3]: few rounds,
  small messages, but still all-to-all claim broadcasts.

A third comparison point, the committee-less ablation of the paper's
own Byzantine algorithm, needs no code of its own: run
``run_byzantine_renaming`` with ``candidate_probability=1.0``.
"""

from repro.baselines.balls_into_slots import (
    BallsIntoSlotsNode,
    run_balls_into_slots,
)
from repro.baselines.collect_rank import CollectRankNode, run_collect_rank
from repro.baselines.obg_halving import ObgHalvingNode, run_obg_halving

__all__ = [
    "BallsIntoSlotsNode",
    "CollectRankNode",
    "ObgHalvingNode",
    "run_balls_into_slots",
    "run_collect_rank",
    "run_obg_halving",
]
