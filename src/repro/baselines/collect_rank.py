"""Full-information gossip renaming (the early, big-message family).

Each node repeatedly broadcasts *everything it knows* -- the whole set
of original identities it has heard of -- for ``f_assumed + 1`` rounds,
then takes its new name to be the rank of its own identity in its
final knowledge set.  This is the style of the early consensus-derived
solutions the paper cites ([20], [33]): correctness comes from the
classic crash-free-round argument (with at most ``f`` crashes, some
round among ``f + 1`` is crash-free; from then on all alive nodes hold
the identical, closed knowledge set), and the costs are what Table 1
charges that family:

* rounds grow linearly with the *assumed* fault bound, not the actual
  failure count;
* every message carries a set of up to ``n`` identities, i.e.
  ``Theta(n log N)`` bits, for ``Theta(n^3 log N)`` total bits at full
  resilience -- the cubic bit wall.

The new names are ranks of original identities, so this baseline is
order-preserving, and with a closed final set they are distinct and lie
in ``[1, n]`` (strong renaming).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.adversary.base import CrashAdversary
from repro.faults.base import FaultModel
from repro.sim.messages import CostModel, Message, broadcast
from repro.sim.node import Context, Process, Program
from repro.sim.runner import ExecutionResult, run_network


@dataclass(frozen=True)
class KnowledgeGossip(Message):
    """A node's full knowledge: every original identity it has heard of."""

    known: frozenset[int]

    def payload_bits(self, cost: CostModel) -> int:
        return max(1, len(self.known)) * cost.id_bits


class CollectRankNode(Process):
    """One participant of the gossip-to-stability baseline.

    ``assumed_faults`` is the fault bound the deployment provisions for
    (the paper's point: this family pays for the worst case up front);
    it defaults to ``n - 1`` when left ``None``.
    """

    def __init__(self, uid: int, assumed_faults: Optional[int] = None):
        super().__init__(uid)
        self.assumed_faults = assumed_faults
        self.known: frozenset[int] = frozenset()

    def program(self, ctx: Context) -> Program:
        n = ctx.n
        faults = self.assumed_faults if self.assumed_faults is not None else n - 1
        if not 0 <= faults < n:
            raise ValueError(f"assumed_faults={faults} must lie in [0, n)")
        self.known = frozenset([self.uid])
        for _round in range(faults + 1):
            inbox = yield broadcast(n, KnowledgeGossip(self.known))
            for envelope in inbox:
                if isinstance(envelope.message, KnowledgeGossip):
                    self.known |= envelope.message.known
        return sorted(self.known).index(self.uid) + 1


def run_collect_rank(
    uids: Sequence[int],
    *,
    namespace: Optional[int] = None,
    adversary: Optional[CrashAdversary] = None,
    assumed_faults: Optional[int] = None,
    seed: int = 0,
    trace: bool = False,
    monitors: Sequence[object] = (),
    observer: Optional[object] = None,
    fault_model: Optional[FaultModel] = None,
    columnar: Optional[bool] = None,
) -> ExecutionResult:
    """Run the gossip baseline for nodes with identities ``uids``."""
    uids = list(uids)
    if len(set(uids)) != len(uids):
        raise ValueError("original identities must be distinct")
    if namespace is None:
        namespace = max(max(uids), len(uids))
    cost = CostModel(n=len(uids), namespace=namespace)
    processes = [CollectRankNode(uid, assumed_faults) for uid in uids]
    return run_network(
        processes, cost, crash_adversary=adversary, seed=seed, trace=trace,
        monitors=monitors, observer=observer, fault_model=fault_model,
        columnar=columnar,
    )
