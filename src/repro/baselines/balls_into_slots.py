"""Randomized balls-into-slots renaming (the [3]-style baseline family).

Alistarh, Denysyuk, Rodrigues and Shavit's "balls-into-leaves" solves
strong renaming in ``O(log log f)`` rounds by treating names as leaves
and nodes as balls that race for them with load-balanced random
probes.  This module implements the family's flat core -- random slot
claiming with deterministic conflict resolution -- which preserves the
properties Table 1 charges the family for: all-to-all claim broadcasts
(``Theta(n^2)`` messages over the execution) with small ``O(log N)``-bit
messages, randomized round count concentrated at ``O(log n)``.

One round, for each unnamed node:

1. pick a uniformly random slot among those not known taken;
2. broadcast ``CLAIM(slot, ID)``;
3. the winner of a slot is the smallest identity among the claims a
   node *received* for it; a node takes the slot iff it won in its own
   view, and everybody marks every claimed slot as taken.

Safety under mid-send crashes: a non-crashed claimant's broadcast
reaches everyone, so two *alive* nodes can only contend inside one
round, where the min-identity rule orders them consistently; a slot
whose only claimant crashed is leaked, but at most one slot leaks per
crash, and crashed nodes need no names, so ``n`` slots always suffice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.adversary.base import CrashAdversary
from repro.faults.base import FaultModel
from repro.sim.messages import CostModel, Message, broadcast
from repro.sim.node import Context, Process, Program
from repro.sim.runner import ExecutionResult, run_network

#: Safety valve: the adversary cannot stall the protocol this long
#: (the per-round success probability is constant), so exceeding it
#: indicates a bug rather than bad luck.
MAX_CLAIM_ROUNDS = 10_000


@dataclass(frozen=True)
class SlotClaim(Message):
    """``CLAIM(slot, ID)``: one ball racing for one leaf."""

    slot: int
    uid: int

    def payload_bits(self, cost: CostModel) -> int:
        return cost.index_bits + cost.id_bits


@dataclass(frozen=True)
class SlotRelease(Message):
    """Keep-alive of a named node: re-announces its final slot so late
    observers cannot mistake the slot for free."""

    slot: int
    uid: int

    def payload_bits(self, cost: CostModel) -> int:
        return cost.index_bits + cost.id_bits


class BallsIntoSlotsNode(Process):
    """One participant of the balls-into-slots baseline.

    ``slots`` is the target namespace size ``M`` (Definition 1.1 allows
    any ``n <= M < N``).  ``M = n`` (default) is strong renaming --
    the hardest case, where the last contenders race for the last few
    slots.  ``M = (1 + eps) n`` is *loose* renaming: the slack keeps
    the collision probability per probe below eps/(1+eps), so the race
    finishes in O(log(1/eps))-ish rounds instead of O(log n) -- the
    classical time-for-namespace trade, measured in experiment F13.
    """

    def __init__(self, uid: int, slots: Optional[int] = None):
        super().__init__(uid)
        self.slots = slots
        self.my_slot: Optional[int] = None
        self.rounds_to_name: Optional[int] = None

    def program(self, ctx: Context) -> Program:
        n = ctx.n
        slot_count = self.slots if self.slots is not None else n
        if slot_count < n:
            raise ValueError(
                f"target namespace M={slot_count} smaller than n={n}"
            )
        taken: set[int] = set()
        quiescent = False
        round_index = 0
        while True:
            round_index += 1
            if round_index > MAX_CLAIM_ROUNDS:  # pragma: no cover
                raise RuntimeError(f"node {self.uid}: claim race stalled")

            my_claim: Optional[int] = None
            if self.my_slot is None:
                free = [slot for slot in range(1, slot_count + 1)
                        if slot not in taken]
                if not free:
                    raise RuntimeError(
                        f"node {self.uid}: no free slots "
                        f"(leaked more slots than crashes?)"
                    )
                my_claim = free[ctx.rng.randrange(len(free))]
                outgoing = broadcast(n, SlotClaim(my_claim, self.uid))
            elif quiescent:
                # Last round carried no fresh claims: every alive node is
                # named (unnamed nodes always claim), so the race is over.
                return self.my_slot
            else:
                # Keep the slot visible to stragglers until quiescence.
                outgoing = broadcast(n, SlotRelease(self.my_slot, self.uid))
            inbox = yield outgoing

            contenders: dict[int, list[int]] = {}
            fresh_claims = False
            for envelope in inbox:
                message = envelope.message
                if isinstance(message, SlotClaim):
                    fresh_claims = True
                    contenders.setdefault(message.slot, []).append(message.uid)
                    taken.add(message.slot)
                elif isinstance(message, SlotRelease):
                    taken.add(message.slot)

            if my_claim is not None:
                rivals = contenders.get(my_claim, [self.uid])
                if min(rivals) >= self.uid:
                    self.my_slot = my_claim
                    self.rounds_to_name = round_index
            quiescent = not fresh_claims


def run_balls_into_slots(
    uids: Sequence[int],
    *,
    namespace: Optional[int] = None,
    slots: Optional[int] = None,
    adversary: Optional[CrashAdversary] = None,
    seed: int = 0,
    trace: bool = False,
    monitors: Sequence[object] = (),
    observer: Optional[object] = None,
    fault_model: Optional[FaultModel] = None,
    columnar: Optional[bool] = None,
) -> ExecutionResult:
    """Run the balls-into-slots baseline for nodes with ids ``uids``.

    ``slots`` is the target namespace ``M`` (default ``n``: strong
    renaming); pass ``M > n`` for loose renaming.
    """
    uids = list(uids)
    if len(set(uids)) != len(uids):
        raise ValueError("original identities must be distinct")
    if slots is not None and slots < len(uids):
        raise ValueError(
            f"target namespace M={slots} smaller than n={len(uids)}"
        )
    if namespace is None:
        namespace = max(max(uids), len(uids), slots or 0)
    cost = CostModel(n=len(uids), namespace=namespace)
    processes = [BallsIntoSlotsNode(uid, slots=slots) for uid in uids]
    return run_network(
        processes, cost, crash_adversary=adversary, seed=seed, trace=trace,
        monitors=monitors, observer=observer, fault_model=fault_model,
        columnar=columnar,
    )
