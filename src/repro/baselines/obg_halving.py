"""All-to-all interval halving (the [34]/[15] baseline family).

Every phase is a single round: each alive node broadcasts
``<ID, I>`` to everyone, then *locally* plays committee for its own
interval with the same rank rule the paper's committee members apply
(rank among same-interval peers, offset by the peers already inside
``bot(I)``).  Because everyone halves in every phase, all alive nodes'
intervals sit at the same tree depth at all times -- the all-to-all
pattern makes the paper's minimum-depth synchronisation unnecessary,
which is also why this baseline needs no committee machinery.

Complexity: every node talks to every node each phase, so
``Theta(n^2)`` messages per phase and ``Theta(n^2 log n)`` in total --
the Table 1 message wall -- *regardless of how many failures actually
occur*.  Rounds: exactly ``ceil(log2 n)`` phases, deterministically.

Safety under mid-send crashes follows the same witness argument as
Lemma 2.3: among the nodes that moved into ``bot(I)``, the one with
the largest identity saw every mover's status (movers are alive, and
alive broadcasts reach everyone), so the slot-capacity inequality it
checked bounds the whole group.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.adversary.base import CrashAdversary
from repro.faults.base import FaultModel
from repro.core.crash_renaming import RenamingFailure
from repro.core.intervals import Interval, root_interval
from repro.sim.messages import CostModel, Message, broadcast
from repro.sim.node import Context, Process, Program
from repro.sim.runner import ExecutionResult, run_network


@dataclass(frozen=True)
class HalvingStatus(Message):
    """Per-phase broadcast ``<ID(v), I_v>``."""

    uid: int
    interval: Interval

    def payload_bits(self, cost: CostModel) -> int:
        return cost.id_bits + 2 * cost.index_bits


class ObgHalvingNode(Process):
    """One participant of the all-to-all halving baseline."""

    def __init__(self, uid: int):
        super().__init__(uid)
        self.interval: Optional[Interval] = None

    def _halve(self, statuses: list[HalvingStatus]) -> None:
        """One local halving step using everyone's broadcast status."""
        if self.interval.is_singleton:
            return
        same_ids = sorted(
            status.uid for status in statuses
            if status.interval == self.interval
        )
        bot = self.interval.bot()
        below_bot = sum(
            1 for status in statuses
            if bot.contains_interval(status.interval)
        )
        rank = same_ids.index(self.uid) + 1
        if below_bot + rank <= bot.size:
            self.interval = bot
        else:
            self.interval = self.interval.top()

    def program(self, ctx: Context) -> Program:
        n = ctx.n
        self.interval = root_interval(n)
        phases = math.ceil(math.log2(n)) if n > 1 else 0
        for _phase in range(phases):
            inbox = yield broadcast(n, HalvingStatus(self.uid, self.interval))
            statuses = [
                envelope.message for envelope in inbox
                if isinstance(envelope.message, HalvingStatus)
            ]
            if statuses:
                self._halve(statuses)
        if not self.interval.is_singleton:
            raise RenamingFailure(
                f"node {self.uid} finished with interval {self.interval}"
            )
        return self.interval.lo


def run_obg_halving(
    uids: Sequence[int],
    *,
    namespace: Optional[int] = None,
    adversary: Optional[CrashAdversary] = None,
    seed: int = 0,
    trace: bool = False,
    monitors: Sequence[object] = (),
    observer: Optional[object] = None,
    fault_model: Optional[FaultModel] = None,
    columnar: Optional[bool] = None,
) -> ExecutionResult:
    """Run the all-to-all halving baseline for nodes with ids ``uids``."""
    uids = list(uids)
    if len(set(uids)) != len(uids):
        raise ValueError("original identities must be distinct")
    if namespace is None:
        namespace = max(max(uids), len(uids))
    cost = CostModel(n=len(uids), namespace=namespace)
    processes = [ObgHalvingNode(uid) for uid in uids]
    return run_network(
        processes, cost, crash_adversary=adversary, seed=seed, trace=trace,
        monitors=monitors, observer=observer, fault_model=fault_model,
        columnar=columnar,
    )
