"""Shared randomness: a common random string readable by all correct nodes.

The paper assumes "nodes can access shared random bits" (Theorem 1.3).
Operationally this means every correct node, evaluating the same query,
obtains the same random answer, while the answers are unpredictable to
the protocol designer.  We realise it as a keyed deterministic PRG:
each *labelled query* hashes ``(seed, label)`` into a fresh
:class:`random.Random` stream, so distinct labels give independent
streams and repeated queries with the same label give identical bits on
every node.

The static Byzantine adversary of the paper chooses the corrupt set
*before* execution, i.e. before the shared random bits are revealed;
tests model this by letting the adversary pick corruptions without
access to the :class:`SharedRandomness` instance.
"""

from __future__ import annotations

import hashlib
from random import Random


class SharedRandomness:
    """A common random string, queried by label.

    >>> a, b = SharedRandomness(7), SharedRandomness(7)
    >>> a.stream("lottery").random() == b.stream("lottery").random()
    True
    >>> a.stream("x").random() == a.stream("y").random()
    False
    """

    def __init__(self, seed: int):
        self.seed = seed

    def stream(self, label: str) -> Random:
        """A fresh PRG stream for ``label``, identical on every node."""
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        return Random(int.from_bytes(digest[:16], "big"))

    def bits(self, label: str, count: int) -> list[int]:
        """``count`` shared random bits for ``label``."""
        stream = self.stream(label)
        return [stream.getrandbits(1) for _ in range(count)]

    def coin(self, label: str) -> int:
        """One shared random bit for ``label``."""
        return self.stream(label).getrandbits(1)

    def uniform_int(self, label: str, low: int, high: int) -> int:
        """A shared uniform integer in ``[low, high]`` (inclusive)."""
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        return self.stream(label).randint(low, high)

    def bernoulli_subset(self, label: str, universe: int, probability: float) -> set[int]:
        """The set ``{i in [1, universe] : r_i = 1}`` with ``P[r_i = 1] = p``.

        This is the committee lottery of the Byzantine algorithm: every
        identity in the original namespace is elected a *candidate*
        independently with probability ``p``, using shared bits, so all
        correct nodes compute the identical candidate pool.

        For small probabilities the pool is sampled via geometric skips,
        so the cost is ``O(universe * p)`` rather than ``O(universe)``;
        this keeps executions with ``N >> n`` cheap.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        stream = self.stream(label)
        if probability == 0.0:
            return set()
        if probability == 1.0:
            return set(range(1, universe + 1))
        chosen: set[int] = set()
        import math

        log_q = math.log1p(-probability)
        position = 0
        while True:
            # Geometric(p) gap to the next success, via inverse CDF.
            gap = 1 + int(math.log(1.0 - stream.random()) / log_q)
            position += gap
            if position > universe:
                return chosen
            chosen.add(position)
