"""Cryptographic substrates: shared randomness, fingerprints, authentication.

These modules realise the three assumptions the Byzantine-resilient
algorithm relies on (Section 3.2 of the paper):

* :mod:`repro.crypto.shared_randomness` -- a common random string every
  correct node can read, used for the committee lottery and to draw
  hash functions.
* :mod:`repro.crypto.hashing` -- the random fingerprint family of
  Fact 3.2, realised as polynomial fingerprints over a prime field.
* :mod:`repro.crypto.auth` -- message authentication: the network stamps
  each envelope with its true sender, so identities cannot be spoofed.
"""

from repro.crypto.auth import AuthenticationError, Authenticator
from repro.crypto.hashing import FingerprintFamily, Fingerprinter
from repro.crypto.shared_randomness import SharedRandomness

__all__ = [
    "AuthenticationError",
    "Authenticator",
    "FingerprintFamily",
    "Fingerprinter",
    "SharedRandomness",
]
