"""Random fingerprint family (Fact 3.2) via polynomial hashing.

The Byzantine-resilient algorithm compresses a segment
``L[l..r]`` of the length-``N`` identity bit vector into an
``O(log N)``-bit digest so that two *different* segments collide only
with polynomially small probability.  We realise the family of Fact 3.2
with Rabin-style polynomial fingerprints over a prime field:

    ``fp(b_l .. b_r) = sum_i b_{l+i} * x^i  (mod P)``

for a random evaluation point ``x`` drawn from shared randomness.  Two
distinct segments of length ``m`` collide iff ``x`` is a root of their
(non-zero) difference polynomial of degree ``< m``, which happens with
probability at most ``m / (P - 3)`` -- matching the ``1/|S|^i``
collision guarantee of Fact 3.2 once ``P`` is a sufficiently large
power of ``N``.  The point ``x`` needs ``O(log P) = O(log N)`` shared
random bits, as Fact 3.2 requires.

Segments are addressed sparsely: the caller passes the *positions of
one-bits* inside ``[l, r]`` rather than the raw bit string, so hashing a
segment costs ``O(k log m)`` for ``k`` ones instead of ``O(m)``.  This
keeps executions with ``N >> n`` cheap without changing the function
being computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.crypto.shared_randomness import SharedRandomness

#: Default field modulus: the Mersenne prime 2^127 - 1.  It exceeds
#: ``N**6`` for every namespace up to ``N ~ 2*10^6``, which keeps the
#: whole-execution collision probability at the ``n^{-4}`` level used in
#: the proof of Theorem 1.3.
DEFAULT_PRIME = (1 << 127) - 1


@dataclass(frozen=True)
class Fingerprinter:
    """One concrete hash function: an evaluation point in a prime field."""

    prime: int
    point: int

    def __post_init__(self) -> None:
        if not 2 <= self.point <= self.prime - 2:
            raise ValueError(
                f"evaluation point {self.point} outside [2, {self.prime - 2}]"
            )

    def digest_segment(self, ones: Iterable[int], lo: int, hi: int) -> int:
        """Fingerprint of the bit string whose ones inside ``[lo, hi]``
        are listed (in any order) in ``ones``.

        Positions are absolute; each position ``q`` contributes
        ``x^(q - lo)``.  Positions outside ``[lo, hi]`` are rejected so
        callers cannot silently hash the wrong segment.
        """
        if lo > hi:
            raise ValueError(f"empty segment [{lo}, {hi}]")
        acc = 0
        for position in ones:
            if not lo <= position <= hi:
                raise ValueError(
                    f"one-position {position} outside segment [{lo}, {hi}]"
                )
            acc = (acc + pow(self.point, position - lo, self.prime)) % self.prime
        # Mix in the segment length so equal-content prefixes of unequal
        # declared lengths cannot be confused by construction.
        return (acc * (hi - lo + 1)) % self.prime

    def digest_ints(self, values: Iterable[int]) -> int:
        """Fingerprint of an integer tuple (Horner evaluation)."""
        acc = 0
        for value in values:
            acc = (acc * self.point + value + 1) % self.prime
        return acc


class FingerprintFamily:
    """Draws :class:`Fingerprinter` instances from shared randomness.

    All correct nodes construct the family from the same
    :class:`SharedRandomness`, hence draw identical hash functions for
    identical labels -- exactly the "hash function constructed via
    shared randomness" of Section 3.1.
    """

    def __init__(self, shared: SharedRandomness, prime: int = DEFAULT_PRIME):
        if prime < 5:
            raise ValueError(f"prime too small: {prime}")
        self.shared = shared
        self.prime = prime

    def draw(self, label: str) -> Fingerprinter:
        point = self.shared.uniform_int(f"hash:{label}", 2, self.prime - 2)
        return Fingerprinter(prime=self.prime, point=point)
