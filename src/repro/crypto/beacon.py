"""A committee randomness beacon (the Section 3.2 extension).

The paper assumes shared randomness and notes the assumption "could be
removed at the cost of a more complicated algorithm": elect a committee
and let it *generate* shared randomness with known techniques
([13, 35]).  This module implements the simplest such technique --
commit-reveal XOR with a validator round -- as an abortable **weak
common coin**:

1. every committee member draws a private contribution and broadcasts
   a binding commitment (a fingerprint of contribution + nonce);
2. members broadcast their openings; an opening is *valid* iff it
   matches the sender's round-1 commitment;
3. members run :func:`~repro.consensus.validator.validator` on the
   XOR of the valid contributions they saw.  ``same = 1`` certifies a
   common value; ``same = 0`` aborts.

Guarantees (tested in ``tests/test_beacon.py``):

* with only correct members, the coin always succeeds, all members
  output the same value, and no member could predict it before the
  reveal round (every contribution is XORed in);
* commitments bind: a member cannot choose its opening after seeing
  others' openings;
* a Byzantine member *can* force an abort (or bias the output by
  conditionally withholding its opening) -- the inherent weakness of
  commit-reveal coins that the cited threshold-crypto constructions
  [13, 35] exist to remove.  Callers must treat ``ok = False`` as
  "retry or fall back", never as a value.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from random import Random

from repro.consensus.comm import CommitteeComm, exchange
from repro.consensus.validator import validator

#: Bit width of one coin output.
COIN_BITS = 64


def commitment_of(contribution: int, nonce: int) -> int:
    """The binding commitment to ``(contribution, nonce)``."""
    digest = hashlib.sha256(f"{contribution}:{nonce}".encode()).digest()
    return int.from_bytes(digest[:16], "big")


def weak_common_coin(comm: CommitteeComm, rng: Random, label: str,
                     coin_bits: int = COIN_BITS):
    """Generator sub-program; returns ``(ok, value)``.

    ``rng`` is the member's *private* randomness; ``label`` must be the
    same at all correct members (it tags the exchanges).  4 rounds:
    commit, reveal, then the 2-round validator.
    """
    contribution = rng.getrandbits(coin_bits)
    nonce = rng.getrandbits(64)

    commitments = yield from exchange(
        comm, f"coin-commit:{label}", commitment_of(contribution, nonce),
        width=128,
    )
    openings = yield from exchange(
        comm, f"coin-reveal:{label}", (contribution, nonce),
        width=coin_bits + 64,
    )

    pooled = 0
    for sender, opening in sorted(openings.items()):
        if (
            isinstance(opening, tuple)
            and len(opening) == 2
            and all(isinstance(part, int) for part in opening)
            and sender in commitments
            and commitment_of(*opening) == commitments[sender]
        ):
            pooled ^= opening[0]

    same, agreed = yield from validator(comm, pooled, width=coin_bits)
    if same == 1 and isinstance(agreed, int):
        return True, agreed
    return False, None
