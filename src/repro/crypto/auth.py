"""Message authentication.

The Byzantine algorithm assumes messages are authenticated, "so that
nodes cannot spoof messages or identities" (Section 1).  The only
property the proofs use is exactly that: a Byzantine node cannot make a
message appear to originate from a link it does not control.

The network realises the property structurally: it stamps every
envelope with the true sender's link index.  :class:`Authenticator`
packages the policy so the *unauthenticated* variant (useful for tests
demonstrating why the assumption matters) is a configuration switch
rather than a code fork.
"""

from __future__ import annotations

from typing import Optional


class AuthenticationError(ValueError):
    """Raised when a spoof attempt is detected under strict policy."""


class Authenticator:
    """Decides how a claimed sender identity is reconciled with reality.

    With ``enabled=True`` (the paper's model) the claimed sender is
    discarded: receivers see the true link index and nothing else.  With
    ``enabled=False`` a forged claim is passed through to the receiver,
    which lets tests exhibit the identity-duplication attacks the
    assumption rules out.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled

    def resolve(
        self, true_uid: int, claimed_uid: Optional[int]
    ) -> tuple[int, Optional[int]]:
        """Return ``(perceived_uid, recorded_claim)``.

        ``perceived_uid`` is what the receiver believes the sender's
        original identity to be.  Under authentication a forged claim is
        discarded; without it, the forgery succeeds and the receiver
        perceives the claimed identity.

        >>> Authenticator().resolve(3, 99)
        (3, None)
        >>> Authenticator(enabled=False).resolve(3, 99)
        (99, 99)
        >>> Authenticator(enabled=False).resolve(3, None)
        (3, None)
        """
        if self.enabled or claimed_uid is None:
            return true_uid, None
        return claimed_uid, claimed_uid
