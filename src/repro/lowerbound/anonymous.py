"""The Omega(n) message lower bound (Theorem 1.4), made measurable.

Proof skeleton of the theorem: if a strong renaming algorithm sends few
messages, then (after the reduction to *anonymous* renaming, where
shared randomness cannot break symmetry between identically-initialised
nodes) at least two nodes must choose their new names without
communicating at all, and two communication-free anonymous nodes pick
identical names with non-trivial probability -- so success probability
3/4 forces Omega(n) messages.

This module realises the construction the proof reasons about, in its
sharpest admissible form: a *coordinator* protocol in which ``k`` nodes
spend one message each to receive reserved, collision-free names, while
the remaining ``m = n - k`` silent nodes draw uniformly from the
remaining ``m`` names (uniform is the symmetric-optimal silent
strategy; shared randomness is useless to them because they are
anonymous and identically distributed).  Success requires the ``m``
silent draws to be a permutation, which happens with probability
``m! / m^m`` -- at most 1/2 already for ``m = 2`` and exponentially
small in ``m``.  Measuring success against the message budget ``k``
reproduces the theorem's shape: success >= 3/4 demands ``k >= n - 1``,
i.e. a message floor linear in ``n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random


def exact_success_probability(n: int, messages: int) -> float:
    """Closed-form success probability of the coordinator protocol.

    ``messages`` of the ``n`` nodes coordinate (one message each); the
    other ``m = n - messages`` stay silent and draw uniformly from the
    ``m`` unreserved names.  Success probability is ``m! / m^m``.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 <= messages <= n:
        raise ValueError(f"messages must lie in [0, {n}], got {messages}")
    silent = n - messages
    if silent <= 1:
        return 1.0
    # Evaluated in log space: silent!/silent^silent underflows float
    # division for a few hundred silent nodes.
    return math.exp(math.lgamma(silent + 1) - silent * math.log(silent))


def minimum_messages_for_success(n: int, target: float = 0.75) -> int:
    """Smallest message budget achieving the target success probability.

    The theorem's quantitative content: for ``target = 3/4`` the answer
    is ``n - 1`` (linear in ``n``) for every ``n >= 3``.
    """
    if not 0.0 < target <= 1.0:
        raise ValueError(f"target must lie in (0, 1], got {target}")
    for messages in range(n + 1):
        if exact_success_probability(n, messages) >= target:
            return messages
    return n


@dataclass
class SilentRenamingExperiment:
    """Monte-Carlo estimate of the coordinator protocol's success rate.

    ``run(messages, trials)`` simulates the protocol ``trials`` times and
    returns the fraction of trials in which all ``n`` names were
    distinct; compare with :func:`exact_success_probability`.
    """

    n: int
    rng: Random

    def run_once(self, messages: int) -> bool:
        silent = self.n - messages
        if silent < 0:
            raise ValueError(f"messages {messages} exceeds n={self.n}")
        # Names 1..messages are reserved by the coordinator; the silent
        # nodes draw independently and uniformly from the rest.
        draws = [self.rng.randrange(silent) for _ in range(silent)]
        return len(set(draws)) == silent

    def run(self, messages: int, trials: int) -> float:
        if trials < 1:
            raise ValueError(f"need at least one trial, got {trials}")
        successes = sum(self.run_once(messages) for _ in range(trials))
        return successes / trials

    def sweep(self, message_budgets, trials: int) -> list[dict]:
        """One row per budget: measured vs. exact success probability."""
        rows = []
        for messages in message_budgets:
            rows.append({
                "n": self.n,
                "messages": messages,
                "measured_success": self.run(messages, trials),
                "exact_success": exact_success_probability(self.n, messages),
            })
        return rows
