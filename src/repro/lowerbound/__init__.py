"""The Omega(n) message lower bound of Theorem 1.4, as an experiment."""

from repro.lowerbound.anonymous import (
    SilentRenamingExperiment,
    exact_success_probability,
    minimum_messages_for_success,
)

__all__ = [
    "SilentRenamingExperiment",
    "exact_success_probability",
    "minimum_messages_for_success",
]
