"""An epoch-based compact-identity directory for churning overlays.

The paper motivates renaming with practical systems "such as
cryptocurrency networks", where communicating via original identities
from huge, heterogeneous namespaces is costly.  A real deployment does
not rename once: membership churns, so the directory re-runs renaming
in *epochs* -- exactly the usage pattern this class packages.

Between epochs, nodes ``join`` and ``leave``; ``run_epoch`` executes
the crash-resilient strong renaming algorithm among the current
members (under an optional crash adversary, whose victims are treated
as departed), and installs the fresh assignment.  Lookup goes both
ways (``compact_id`` / ``original_id``), and per-epoch reports retain
the protocol's cost so operators can watch how much each reshuffle
cost under the observed churn -- the resource-competitive story of
Theorem 1.2, operationalised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.adversary.base import CrashAdversary
from repro.core.crash_renaming import CrashRenamingConfig, run_crash_renaming

#: Builds a fresh adversary per epoch: ``factory(epoch) -> adversary``.
AdversaryFactory = Callable[[int], Optional[CrashAdversary]]


@dataclass(frozen=True)
class EpochReport:
    """What one directory epoch did and what it cost."""

    epoch: int
    members: int
    renamed: int
    departed_during_epoch: tuple[int, ...]
    rounds: int
    messages: int
    bits: int
    assignment: dict[int, int] = field(hash=False)


class OverlayDirectory:
    """Compact identities for a churning membership.

    Parameters
    ----------
    namespace:
        Size ``N`` of the original identity namespace.
    config:
        Crash-renaming configuration for every epoch (default: the
        paper's constants).
    seed:
        Seeds each epoch's protocol randomness (epoch index is mixed
        in, so epochs are independent but the whole history replays).
    """

    def __init__(self, namespace: int,
                 config: Optional[CrashRenamingConfig] = None,
                 seed: int = 0):
        if namespace < 1:
            raise ValueError(f"namespace must be positive, got {namespace}")
        self.namespace = namespace
        self.config = config or CrashRenamingConfig()
        self.seed = seed
        self.members: set[int] = set()
        self.epoch = 0
        self.history: list[EpochReport] = []
        self._compact_by_uid: dict[int, int] = {}
        self._uid_by_compact: dict[int, int] = {}

    # -- membership -----------------------------------------------------

    def join(self, uid: int) -> None:
        """Admit a node; takes effect at the next epoch."""
        if not 1 <= uid <= self.namespace:
            raise ValueError(
                f"identity {uid} outside [1, {self.namespace}]"
            )
        if uid in self.members:
            raise ValueError(f"identity {uid} is already a member")
        self.members.add(uid)

    def leave(self, uid: int) -> None:
        """Retire a node; takes effect at the next epoch."""
        try:
            self.members.remove(uid)
        except KeyError:
            raise ValueError(f"identity {uid} is not a member") from None

    # -- lookups -----------------------------------------------------------

    def compact_id(self, uid: int) -> int:
        """Current compact identity of ``uid`` (this epoch's assignment)."""
        try:
            return self._compact_by_uid[uid]
        except KeyError:
            raise KeyError(
                f"identity {uid} has no compact id; run an epoch after it "
                f"joins"
            ) from None

    def original_id(self, compact: int) -> int:
        """Inverse lookup: which member holds compact identity ``compact``."""
        try:
            return self._uid_by_compact[compact]
        except KeyError:
            raise KeyError(f"compact id {compact} is unassigned") from None

    @property
    def assignment(self) -> dict[int, int]:
        """The current ``original -> compact`` table (a copy)."""
        return dict(self._compact_by_uid)

    # -- epochs ---------------------------------------------------------------

    def run_epoch(
        self, adversary: Optional[CrashAdversary] = None
    ) -> EpochReport:
        """Rename the current membership; install the new assignment.

        Members crashed by the adversary during the epoch are treated
        as having churned out: they lose membership and receive no
        compact identity.
        """
        if not self.members:
            raise ValueError("cannot run an epoch with no members")
        self.epoch += 1
        uids = sorted(self.members)
        result = run_crash_renaming(
            uids,
            namespace=self.namespace,
            adversary=adversary,
            config=self.config,
            seed=hash((self.seed, self.epoch)) & 0x7FFFFFFF,
        )
        outputs = result.outputs_by_uid()
        departed = tuple(sorted(
            uids[index] for index in result.crashed
        ))
        self.members -= set(departed)
        self._compact_by_uid = dict(outputs)
        self._uid_by_compact = {
            compact: uid for uid, compact in outputs.items()
        }
        if len(self._uid_by_compact) != len(self._compact_by_uid):
            raise AssertionError(
                "renaming produced duplicate compact ids -- protocol bug"
            )
        report = EpochReport(
            epoch=self.epoch,
            members=len(uids),
            renamed=len(outputs),
            departed_during_epoch=departed,
            rounds=result.rounds,
            messages=result.metrics.correct_messages,
            bits=result.metrics.correct_bits,
            assignment=dict(outputs),
        )
        self.history.append(report)
        return report
