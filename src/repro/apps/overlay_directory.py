"""An epoch-based compact-identity directory for churning overlays.

The paper motivates renaming with practical systems "such as
cryptocurrency networks", where communicating via original identities
from huge, heterogeneous namespaces is costly.  A real deployment does
not rename once: membership churns, so the directory re-runs renaming
in *epochs* -- exactly the usage pattern this class packages.

Between epochs, nodes ``join`` and ``leave``; ``run_epoch`` executes
the crash-resilient strong renaming algorithm among the current
members (under an optional crash adversary, whose victims are treated
as departed), and installs the fresh assignment.  Lookup goes both
ways (``compact_id`` / ``original_id``), and per-epoch reports retain
the protocol's cost so operators can watch how much each reshuffle
cost under the observed churn -- the resource-competitive story of
Theorem 1.2, operationalised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Callable, Mapping, Optional

from repro.adversary.base import CrashAdversary
from repro.core.crash_renaming import CrashRenamingConfig, run_crash_renaming
from repro.faults.base import FaultModel

#: Builds a fresh adversary per epoch: ``factory(epoch) -> adversary``.
AdversaryFactory = Callable[[int], Optional[CrashAdversary]]


@dataclass(frozen=True)
class EpochReport:
    """What one directory epoch did and what it cost.

    ``assignment`` is a read-only view over a private copy: mutating a
    report cannot corrupt directory state, and directory churn after
    the epoch cannot rewrite history.
    """

    epoch: int
    members: int
    renamed: int
    departed_during_epoch: tuple[int, ...]
    rounds: int
    messages: int
    bits: int
    assignment: Mapping[int, int] = field(hash=False)


class OverlayDirectory:
    """Compact identities for a churning membership.

    Parameters
    ----------
    namespace:
        Size ``N`` of the original identity namespace.
    config:
        Crash-renaming configuration for every epoch (default: the
        paper's constants).
    seed:
        Seeds each epoch's protocol randomness (epoch index is mixed
        in, so epochs are independent but the whole history replays).
    """

    def __init__(self, namespace: int,
                 config: Optional[CrashRenamingConfig] = None,
                 seed: int = 0):
        if namespace < 1:
            raise ValueError(f"namespace must be positive, got {namespace}")
        self.namespace = namespace
        self.config = config or CrashRenamingConfig()
        self.seed = seed
        self.members: set[int] = set()
        self.epoch = 0
        self.history: list[EpochReport] = []
        self._compact_by_uid: dict[int, int] = {}
        self._uid_by_compact: dict[int, int] = {}

    # -- membership -----------------------------------------------------

    def join(self, uid: int) -> None:
        """Admit a node; takes effect at the next epoch."""
        if not 1 <= uid <= self.namespace:
            raise ValueError(
                f"identity {uid} outside [1, {self.namespace}]"
            )
        if uid in self.members:
            raise ValueError(f"identity {uid} is already a member")
        self.members.add(uid)

    def leave(self, uid: int) -> None:
        """Retire a node; takes effect at the next epoch."""
        try:
            self.members.remove(uid)
        except KeyError:
            raise ValueError(f"identity {uid} is not a member") from None

    # -- lookups -----------------------------------------------------------

    def compact_id(self, uid: int) -> int:
        """Current compact identity of ``uid`` (this epoch's assignment)."""
        try:
            return self._compact_by_uid[uid]
        except KeyError:
            raise KeyError(
                f"identity {uid} has no compact id; run an epoch after it "
                f"joins"
            ) from None

    def original_id(self, compact: int) -> int:
        """Inverse lookup: which member holds compact identity ``compact``."""
        try:
            return self._uid_by_compact[compact]
        except KeyError:
            raise KeyError(f"compact id {compact} is unassigned") from None

    def compact_id_or_none(self, uid: int) -> Optional[int]:
        """Like :meth:`compact_id`, but a miss returns ``None``.

        The hot read path of the serving layer: one dict probe, no
        exception on the (routine) lookup-before-rename miss.
        """
        return self._compact_by_uid.get(uid)

    @property
    def assignment(self) -> dict[int, int]:
        """The current ``original -> compact`` table (a copy)."""
        return dict(self._compact_by_uid)

    def withdraw_assignment(self) -> None:
        """Clear the current assignment without running an epoch.

        Used when membership empties out entirely between epochs
        (everyone released): there is nobody left to rename, but the
        departed holders' compact ids must stop resolving.
        """
        self._compact_by_uid = {}
        self._uid_by_compact = {}

    # -- epochs ---------------------------------------------------------------

    def run_epoch(
        self,
        adversary: Optional[CrashAdversary] = None,
        *,
        fault_model: Optional[FaultModel] = None,
        observer: Optional[object] = None,
        seed_salt: int = 0,
    ) -> EpochReport:
        """Rename the current membership; install the new assignment.

        Members crashed by the adversary during the epoch are treated
        as having churned out: they lose membership and receive no
        compact identity.  ``fault_model`` injects link faults into the
        epoch's protocol execution and ``observer`` receives its round
        events — the same hooks every ``run_*`` entry point takes.

        ``seed_salt`` varies the protocol seed for *re-executions* of
        the same epoch number: a failed epoch is rolled back without
        advancing ``self.epoch``, so a retry with ``seed_salt=0`` would
        replay the identical randomness.  ``0`` (the default) keeps the
        historical seed formula bit-for-bit.

        The install is atomic: if the execution raises (renaming
        failure under injected faults, non-termination, a protocol
        bug), no directory state changes — membership, the lookup
        tables, the epoch counter, and history are all exactly as they
        were, so a serving layer can fail the batch and keep going.
        """
        if not self.members:
            raise ValueError("cannot run an epoch with no members")
        epoch = self.epoch + 1
        uids = sorted(self.members)
        if seed_salt:
            seed = hash((self.seed, epoch, seed_salt)) & 0x7FFFFFFF
        else:
            seed = hash((self.seed, epoch)) & 0x7FFFFFFF
        result = run_crash_renaming(
            uids,
            namespace=self.namespace,
            adversary=adversary,
            config=self.config,
            seed=seed,
            fault_model=fault_model,
            observer=observer,
        )
        outputs = result.outputs_by_uid()
        compact_by_uid = dict(outputs)
        uid_by_compact = {
            compact: uid for uid, compact in outputs.items()
        }
        if len(uid_by_compact) != len(compact_by_uid):
            raise AssertionError(
                "renaming produced duplicate compact ids -- protocol bug"
            )
        departed = tuple(sorted(
            uids[index] for index in result.crashed
        ))
        report = EpochReport(
            epoch=epoch,
            members=len(uids),
            renamed=len(outputs),
            departed_during_epoch=departed,
            rounds=result.rounds,
            messages=result.metrics.correct_messages,
            bits=result.metrics.correct_bits,
            assignment=MappingProxyType(dict(outputs)),
        )
        # Install: nothing above mutated self, so an exception anywhere
        # earlier leaves the directory exactly as it was.  The lookup
        # tables are rebound wholesale (never mutated in place), which
        # is what lets a concurrent reader on another thread always see
        # a consistent epoch.
        self.epoch = epoch
        self.members -= set(departed)
        self._compact_by_uid = compact_by_uid
        self._uid_by_compact = uid_by_compact
        self.history.append(report)
        return report
