"""Application layer: what a downstream system builds on renaming.

* :mod:`repro.apps.overlay_directory` -- an epoch-based compact-identity
  directory for churning overlays (the paper's cryptocurrency-network
  motivation), built on the crash-resilient renaming algorithm.
"""

from repro.apps.overlay_directory import EpochReport, OverlayDirectory

__all__ = ["EpochReport", "OverlayDirectory"]
