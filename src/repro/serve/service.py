"""The asyncio front door: renaming as a long-lived service.

:class:`RenamingService` accepts ``rename`` / ``lookup`` / ``release``
requests from many concurrent clients and turns them into epoch-based
executions of the crash-resilient renaming protocol:

* **Routing** — every original identity hashes to one of ``shards``
  independent :class:`~repro.serve.sharding.Shard` directories.
* **Batching** — per shard, state-changing requests coalesce in an
  :class:`~repro.serve.batching.EpochBatcher` (``max_batch`` /
  ``max_wait``); each closed batch becomes one protocol epoch.
* **Concurrency** — epochs run *off the event loop* in a thread pool
  (``run_in_executor``), one at a time per shard, concurrently across
  shards; the loop stays free to accept requests and answer lookups
  (which read the shard's current table directly, no queueing).
* **Degradation** — a shard whose epoch fails (injected link faults,
  renaming failure, non-termination) rolls its membership delta back
  and fails only that batch's requests with :class:`ShardDegraded`;
  every other shard, and the failed shard's next batch, keep serving.

Two clocks. In *deterministic mode* callers stamp each request with a
virtual ``arrival`` time (the load generator's trace does); batch
boundaries then depend only on the submitted stream, never on the
event loop's schedule — the property the A/B and determinism tests
pin.  In *live mode* (no ``arrival``), the service stamps requests
with ``loop.time()`` and arms a ``call_later`` alarm so a lonely
request still flushes after ``max_wait`` real seconds.

Serve-level events (``repro.obs/serve@1``, see
:mod:`repro.serve.obs`) are emitted through the ordinary ``observer=``
hook, always from the event-loop thread.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Mapping, Optional, Sequence

from repro.core.crash_renaming import CrashRenamingConfig
from repro.faults.spec import FaultSpec
from repro.obs.events import observing
from repro.obs.profile import PROFILE_FORMAT, PhaseProfiler
from repro.serve.batching import (
    CLOSE_DRAIN,
    CLOSE_TIMEOUT,
    Batch,
    BatchPolicy,
    EpochBatcher,
)
from repro.serve.sharding import (
    LOOKUP,
    RELEASE,
    RENAME,
    Shard,
    ShardAdversaryFactory,
    ShardOp,
    shard_of,
)


class ServeError(RuntimeError):
    """Base class for request-level service failures."""


class NotRenamed(ServeError):
    """A rename produced no name: the identity was released in the
    same batch, or crashed out of its epoch."""

    def __init__(self, uid: int, shard: int):
        super().__init__(
            f"identity {uid} holds no name after its epoch on shard {shard}"
        )
        self.uid = uid
        self.shard = shard


class ShardDegraded(ServeError):
    """The batch's epoch failed; the shard rolled back and serves on."""

    def __init__(self, shard: int, epoch: int, cause: BaseException):
        super().__init__(
            f"shard {shard} epoch {epoch} failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.shard = shard
        self.epoch = epoch
        self.cause = cause


class _ProfileTap:
    """Observer that only collects phase times, never events.

    ``enabled`` stays False so no event is emitted from protocol
    threads; the attached profiler still routes the network through its
    instrumented step.  One tap per shard — epochs of one shard are
    serialized, so each profiler is touched by one thread at a time.
    """

    enabled = False

    def __init__(self):
        self.profiler = PhaseProfiler()

    def emit(self, kind, **data):  # pragma: no cover - never called
        pass


class _Lane:
    """One shard's serving state: batcher, queue, worker, failures."""

    __slots__ = ("shard", "batcher", "queue", "task", "timer", "failures",
                 "tap")

    def __init__(self, shard: Shard, policy: BatchPolicy,
                 tap: Optional[_ProfileTap]):
        self.shard = shard
        self.batcher = EpochBatcher(shard.index, policy)
        self.queue: Optional[asyncio.Queue] = None
        self.task: Optional[asyncio.Task] = None
        self.timer: Optional[asyncio.TimerHandle] = None
        self.failures = 0
        self.tap = tap

    @property
    def index(self) -> int:
        return self.shard.index


class RenamingService:
    """Sharded, batching renaming service over an asyncio event loop.

    Use as an async context manager (or call :meth:`start` /
    :meth:`aclose` explicitly) inside a running loop::

        async with RenamingService(shards=4, namespace=1 << 20) as svc:
            gid = await svc.rename(uid)
            assert svc.lookup(uid) == gid
            await svc.release(uid)
            await svc.drain()

    ``shard_faults`` maps a shard index to a :mod:`repro.faults.spec`
    spec injected into that shard's every epoch; ``adversary_factory``
    builds a per-``(shard, epoch)`` crash adversary.  ``profile_shards``
    attaches a per-shard phase tap so :meth:`phase_report` breaks each
    shard's epochs into the protocol's plan/charge/deliver/advance
    phases (slightly slower: the instrumented network step runs).
    """

    def __init__(
        self,
        *,
        shards: int = 4,
        namespace: int = 1 << 20,
        seed: int = 0,
        max_batch: int = 64,
        max_wait: Optional[float] = 0.1,
        config: Optional[CrashRenamingConfig] = None,
        shard_faults: Optional[Mapping[int, FaultSpec]] = None,
        adversary_factory: Optional[ShardAdversaryFactory] = None,
        observer: Optional[object] = None,
        executor: Optional[ThreadPoolExecutor] = None,
        profile_shards: bool = False,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if namespace < 1:
            raise ValueError(f"namespace must be positive, got {namespace}")
        if config is None:
            from repro.analysis.experiments import (
                EXPERIMENT_ELECTION_CONSTANT,
            )

            config = CrashRenamingConfig(
                election_constant=EXPERIMENT_ELECTION_CONSTANT,
            )
        self.shards = shards
        self.namespace = namespace
        self.seed = seed
        self.policy = BatchPolicy(max_batch=max_batch, max_wait=max_wait)
        self.observer = observer
        self.profiler = PhaseProfiler()
        faults = dict(shard_faults or {})
        unknown = [s for s in faults if not 0 <= s < shards]
        if unknown:
            raise ValueError(
                f"shard_faults names shards {unknown} outside [0, {shards})"
            )
        self._lanes = []
        for index in range(shards):
            tap = _ProfileTap() if profile_shards else None
            self._lanes.append(_Lane(
                Shard(
                    index, shards, namespace=namespace, seed=seed,
                    config=config, fault_spec=faults.get(index),
                    adversary_factory=adversary_factory,
                    observer=tap,
                ),
                self.policy,
                tap,
            ))
        self.epochs = 0
        self.empty_batches = 0
        self.failed_epochs = 0
        self._submitted = 0
        self._executor = executor
        self._own_executor = executor is None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    async def __aenter__(self) -> "RenamingService":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    def start(self) -> None:
        """Bind to the running loop, start executors and lane workers."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.shards, thread_name_prefix="repro-serve",
            )
        for lane in self._lanes:
            lane.queue = asyncio.Queue()
            lane.task = self._loop.create_task(
                self._run_lane(lane), name=f"repro-serve-shard{lane.index}",
            )
        self._emit("serve.start", shards=self.shards,
                   max_batch=self.policy.max_batch,
                   max_wait=self.policy.max_wait,
                   namespace=self.namespace, seed=self.seed)

    async def drain(self) -> None:
        """Flush open batches and wait until every queued epoch ran."""
        self._check_running()
        flushed = 0
        for lane in self._lanes:
            if self._flush_lane(lane, CLOSE_DRAIN):
                flushed += 1
        await asyncio.gather(*(lane.queue.join() for lane in self._lanes))
        self._emit("serve.drain", flushed=flushed)

    async def aclose(self) -> None:
        """Drain, then stop the lane workers and the owned executor."""
        if self._closed or not self._started:
            self._closed = True
            return
        await self.drain()
        self._closed = True
        for lane in self._lanes:
            if lane.timer is not None:
                lane.timer.cancel()
            lane.task.cancel()
        await asyncio.gather(*(lane.task for lane in self._lanes),
                             return_exceptions=True)
        if self._own_executor and self._executor is not None:
            self._executor.shutdown(wait=True)
        self._emit("serve.stop", epochs=self.epochs,
                   failed_epochs=self.failed_epochs,
                   batches=self.batches, requests=self._submitted)

    def _check_running(self) -> None:
        if not self._started:
            raise RuntimeError("service not started; use 'async with' or "
                               "call start() inside a running loop")
        if self._closed:
            raise RuntimeError("service is closed")

    # -- the front door -------------------------------------------------

    def submit(self, kind: str, uid: int,
               arrival: Optional[float] = None) -> "asyncio.Future":
        """Enqueue one state-changing request; returns its future.

        Synchronous (no await): the request joins its shard's open
        batch before control returns, so per-shard request order equals
        submission order — the determinism contract.  ``arrival`` is a
        virtual timestamp (deterministic mode); ``None`` stamps the
        request with the loop clock and arms the live-mode alarm.
        """
        self._check_running()
        if kind not in (RENAME, RELEASE):
            raise ValueError(f"cannot batch request kind {kind!r}")
        if not 1 <= uid <= self.namespace:
            raise ValueError(
                f"identity {uid} outside [1, {self.namespace}]"
            )
        lane = self._lanes[shard_of(uid, self.shards)]
        future = self._loop.create_future()
        op = ShardOp(self._submitted, kind, uid, handle=future)
        self._submitted += 1
        live = arrival is None
        if live:
            arrival = self._loop.time()
        for batch in lane.batcher.offer(op, arrival):
            self._dispatch(lane, batch)
        if live:
            self._arm_timer(lane)
        elif lane.timer is not None and not len(lane.batcher):
            lane.timer.cancel()
            lane.timer = None
        return future

    async def rename(self, uid: int,
                     arrival: Optional[float] = None) -> int:
        """Acquire (or refresh) the global compact id of ``uid``.

        Resolves after the epoch that covers this request: the id is
        from the *new* assignment.  Raises :class:`NotRenamed` if the
        identity ends the epoch without a name, :class:`ShardDegraded`
        if the shard's epoch failed.
        """
        return await self.submit(RENAME, uid, arrival)

    async def release(self, uid: int,
                      arrival: Optional[float] = None) -> bool:
        """Give up ``uid``'s compact id (idempotent); True when applied."""
        return await self.submit(RELEASE, uid, arrival)

    def lookup(self, uid: int) -> Optional[int]:
        """Current global compact id of ``uid``, or ``None`` (miss).

        Served synchronously from the shard's installed table — reads
        never queue behind epochs and never block the loop.  Reads are
        *epoch-consistent* but may trail in-flight batches.
        """
        if not 1 <= uid <= self.namespace:
            raise ValueError(
                f"identity {uid} outside [1, {self.namespace}]"
            )
        return self._lanes[shard_of(uid, self.shards)].shard.lookup(uid)

    def original_of(self, global_id: int) -> Optional[int]:
        """Inverse lookup across shards, or ``None``."""
        from repro.serve.sharding import split_compact

        local, shard = split_compact(global_id, self.shards)
        directory = self._lanes[shard].shard.directory
        try:
            return directory.original_id(local)
        except KeyError:
            return None

    # -- batching / timers ---------------------------------------------

    def _dispatch(self, lane: _Lane, batch: Batch) -> None:
        self._emit("serve.batch.close", shard=lane.index, batch=batch.index,
                   size=len(batch), reason=batch.reason)
        lane.queue.put_nowait(batch)

    def _flush_lane(self, lane: _Lane, reason: str) -> bool:
        if lane.timer is not None:
            lane.timer.cancel()
            lane.timer = None
        batch = lane.batcher.flush(reason)
        if batch is None:
            return False
        self._dispatch(lane, batch)
        return True

    def _arm_timer(self, lane: _Lane) -> None:
        """Live mode: a lonely batch flushes after ``max_wait`` seconds."""
        if self.policy.max_wait is None:
            return
        if lane.timer is not None:
            if len(lane.batcher):
                return
            lane.timer.cancel()
            lane.timer = None
        if not len(lane.batcher):
            return
        lane.timer = self._loop.call_later(
            self.policy.max_wait, self._timer_fired, lane,
        )

    def _timer_fired(self, lane: _Lane) -> None:
        lane.timer = None
        if self._closed:
            return
        self._flush_lane(lane, CLOSE_TIMEOUT)

    # -- epoch execution ------------------------------------------------

    async def _run_lane(self, lane: _Lane) -> None:
        while True:
            batch = await lane.queue.get()
            try:
                await self._execute_batch(lane, batch)
            finally:
                lane.queue.task_done()

    async def _execute_batch(self, lane: _Lane, batch: Batch) -> None:
        epoch = lane.shard.directory.epoch + 1
        self._emit("serve.epoch.begin", shard=lane.index, epoch=epoch,
                   ops=len(batch))
        started = time.perf_counter()
        try:
            outcome = await self._loop.run_in_executor(
                self._executor, lane.shard.execute, batch.ops,
            )
        except Exception as error:
            wall = time.perf_counter() - started
            lane.failures += 1
            self.failed_epochs += 1
            self.profiler.add(f"shard{lane.index}:failed_epoch", wall)
            self._emit("serve.epoch.failed", shard=lane.index, epoch=epoch,
                       error=f"{type(error).__name__}: {error}"[:200],
                       wall_s=round(wall, 6))
            self._emit("serve.shard.degraded", shard=lane.index,
                       failures=lane.failures)
            failure = ShardDegraded(lane.index, epoch, error)
            for op in batch.ops:
                if not op.handle.done():
                    op.handle.set_exception(failure)
            return
        wall = time.perf_counter() - started
        for op in batch.ops:
            future = op.handle
            if future.done():
                continue
            if op.kind == RELEASE:
                future.set_result(True)
                continue
            value = lane.shard.resolve(outcome, op)
            if value is None:
                future.set_exception(NotRenamed(op.uid, lane.index))
            else:
                future.set_result(value)
        if not outcome.ran:
            self.empty_batches += 1
            self.profiler.add(f"shard{lane.index}:empty_batch", wall)
            self._emit("serve.epoch.empty", shard=lane.index,
                       ops=len(batch))
            return
        self.epochs += 1
        self.profiler.add(f"shard{lane.index}:epoch", wall)
        report = outcome.report
        self._emit(
            "serve.epoch.end", shard=lane.index, epoch=report.epoch,
            members=report.members, renamed=report.renamed,
            departed=len(report.departed_during_epoch),
            rounds=report.rounds, messages=report.messages,
            bits=report.bits, wall_s=round(wall, 6),
        )

    # -- introspection --------------------------------------------------

    @property
    def batches(self) -> int:
        return sum(lane.batcher.closed for lane in self._lanes)

    def boundaries(self) -> list[list[dict]]:
        """Per-shard batch boundary records (see ``Batch.boundary``)."""
        return [list(lane.batcher.boundaries) for lane in self._lanes]

    def histories(self) -> list[list]:
        """Per-shard :class:`EpochReport` histories."""
        return [list(lane.shard.directory.history) for lane in self._lanes]

    def assignment(self) -> dict[int, int]:
        """The merged ``original -> global compact`` table, all shards."""
        merged: dict[int, int] = {}
        for lane in self._lanes:
            merged.update(lane.shard.global_assignment())
        return merged

    def stats(self) -> dict:
        """Scalar service counters (JSON-friendly)."""
        totals = {"rounds": 0, "messages": 0, "bits": 0}
        for lane in self._lanes:
            for report in lane.shard.directory.history:
                totals["rounds"] += report.rounds
                totals["messages"] += report.messages
                totals["bits"] += report.bits
        return {
            "shards": self.shards,
            "requests": self._submitted,
            "batches": self.batches,
            "epochs": self.epochs,
            "empty_batches": self.empty_batches,
            "failed_epochs": self.failed_epochs,
            "members": sum(len(lane.shard.directory.members)
                           for lane in self._lanes),
            **totals,
        }

    def per_shard_stats(self) -> list[dict]:
        rows = []
        for lane in self._lanes:
            directory = lane.shard.directory
            rows.append({
                "shard": lane.index,
                "members": len(directory.members),
                "epochs": directory.epoch,
                "batches": lane.batcher.closed,
                "failures": lane.failures,
                "messages": sum(r.messages for r in directory.history),
                "bits": sum(r.bits for r in directory.history),
            })
        return rows

    def phase_report(self) -> dict:
        """Per-shard phase breakdown (``repro.obs/profile@1``).

        Always contains the ``shard<k>:epoch`` wall time measured
        around each executor call; with ``profile_shards=True`` also
        the protocol-phase split (``shard<k>:plan`` ...) from each
        shard's tap.
        """
        merged = PhaseProfiler()
        merged.merge(self.profiler)
        report = merged.report()
        for lane in self._lanes:
            if lane.tap is None:
                continue
            tap_report = lane.tap.profiler.report()
            for phase, row in tap_report["phases"].items():
                report["phases"][f"shard{lane.index}:{phase}"] = row
        report["schema"] = PROFILE_FORMAT
        return report

    # -- events ---------------------------------------------------------

    def _emit(self, kind: str, **data) -> None:
        if observing(self.observer):
            self.observer.emit(kind, **data)
