"""The asyncio front door: renaming as a long-lived service.

:class:`RenamingService` accepts ``rename`` / ``lookup`` / ``release``
requests from many concurrent clients and turns them into epoch-based
executions of the crash-resilient renaming protocol:

* **Routing** — every original identity hashes to one of ``shards``
  independent :class:`~repro.serve.sharding.Shard` directories.
* **Batching** — per shard, state-changing requests coalesce in an
  :class:`~repro.serve.batching.EpochBatcher` (``max_batch`` /
  ``max_wait``); each closed batch becomes one protocol epoch.
* **Concurrency** — epochs run *off the event loop* in a thread pool
  (``run_in_executor``), one at a time per shard, concurrently across
  shards; the loop stays free to accept requests and answer lookups
  (which read the shard's current table directly, no queueing).
* **Degradation** — a shard whose epoch fails (injected link faults,
  renaming failure, non-termination) rolls its membership delta back
  and fails only that batch's requests with :class:`ShardDegraded`;
  every other shard, and the failed shard's next batch, keep serving.
* **Resilience** (opt-in, ``resilience=``) — failed batch members are
  *retried* with seeded jittered exponential backoff instead of failed
  outright; a per-shard circuit breaker opens after consecutive failed
  epochs, defers work to a half-open probe, and sheds load beyond a
  capacity bound; per-request deadlines cancel requests whose retry
  would start too late.  See :mod:`repro.serve.resilience`.  Recovery
  is state-free by construction: a failed epoch rolls the directory
  back, so the probe epoch re-runs the protocol from the last good
  assignment — the shard rebuilds from the rolled-back directory
  rather than degrading forever.

Two clocks. In *deterministic mode* callers stamp each request with a
virtual ``arrival`` time (the load generator's trace does); batch
boundaries then depend only on the submitted stream, never on the
event loop's schedule — the property the A/B and determinism tests
pin.  In *live mode* (no ``arrival``), the service stamps requests
with ``loop.time()`` and arms a ``call_later`` alarm so a lonely
request still flushes after ``max_wait`` real seconds.

Serve-level events (``repro.obs/serve@2``, see
:mod:`repro.serve.obs`) are emitted through the ordinary ``observer=``
hook, always from the event-loop thread.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Mapping, Optional, Sequence

from repro.core.crash_renaming import CrashRenamingConfig
from repro.faults.spec import FaultSpec
from repro.obs.events import observing
from repro.obs.profile import PROFILE_FORMAT, PhaseProfiler
from repro.serve.batching import (
    CLOSE_DRAIN,
    CLOSE_TIMEOUT,
    Batch,
    BatchPolicy,
    EpochBatcher,
)
from repro.serve.resilience import (
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    ResiliencePolicy,
    ResilienceSpec,
    RetryBacklog,
    classify_failure,
    retry_delay,
)
from repro.serve.sharding import (
    LOOKUP,
    RELEASE,
    RENAME,
    Shard,
    ShardAdversaryFactory,
    ShardOp,
    shard_of,
)


class ServeError(RuntimeError):
    """Base class for request-level service failures."""


class NotRenamed(ServeError):
    """A rename produced no name: the identity was released in the
    same batch, or crashed out of its epoch."""

    def __init__(self, uid: int, shard: int):
        super().__init__(
            f"identity {uid} holds no name after its epoch on shard {shard}"
        )
        self.uid = uid
        self.shard = shard


class ShardDegraded(ServeError):
    """The batch's epoch failed; the shard rolled back and serves on.

    ``kind`` is the failure taxonomy (:mod:`repro.serve.resilience`):
    ``"faults"`` when injected link faults issued verdicts during the
    epoch, ``"non_termination"`` / ``"rename_failed"`` for the
    protocol's own failure modes, ``"error"`` otherwise — so callers
    classify without string-matching ``type(cause).__name__``.  The
    original exception is chained as ``__cause__`` (and kept on
    ``.cause``), so tracebacks show the real protocol failure.
    """

    def __init__(self, shard: int, epoch: int, cause: BaseException,
                 kind: str = "error"):
        super().__init__(
            f"shard {shard} epoch {epoch} failed ({kind}): "
            f"{type(cause).__name__}: {cause}"
        )
        self.shard = shard
        self.epoch = epoch
        self.cause = cause
        self.kind = kind
        self.__cause__ = cause


class RequestShed(ServeError):
    """The request was shed: its shard's breaker is open and the
    deferred backlog is at capacity — failing fast beats queueing."""

    def __init__(self, shard: int, depth: int):
        super().__init__(
            f"shard {shard} shed request: breaker open, "
            f"{depth} ops already deferred"
        )
        self.shard = shard
        self.depth = depth


class DeadlineExceeded(ServeError):
    """The request's deadline passed before an epoch could cover it."""

    def __init__(self, uid: int, shard: int, deadline: float):
        super().__init__(
            f"identity {uid} exceeded its {deadline}s deadline on "
            f"shard {shard}"
        )
        self.uid = uid
        self.shard = shard
        self.deadline = deadline


class _ProfileTap:
    """Observer that only collects phase times, never events.

    ``enabled`` stays False so no event is emitted from protocol
    threads; the attached profiler still routes the network through its
    instrumented step.  One tap per shard — epochs of one shard are
    serialized, so each profiler is touched by one thread at a time.
    """

    enabled = False

    def __init__(self):
        self.profiler = PhaseProfiler()

    def emit(self, kind, **data):  # pragma: no cover - never called
        pass


#: Lane-queue sentinels (resilient mode): wake to process due retries
#: (live clock), and force the backlog empty at drain (virtual clock).
_RETRY_WAKE = object()
_DRAIN_FLUSH = object()


class _Lane:
    """One shard's serving state: batcher, queue, worker, resilience."""

    __slots__ = ("shard", "batcher", "queue", "task", "timer", "failures",
                 "tap", "breaker", "backlog", "retries", "shed",
                 "deadline_expired", "retry_timer", "vclock", "live")

    def __init__(self, shard: Shard, policy: BatchPolicy,
                 tap: Optional[_ProfileTap],
                 resilience: Optional[ResiliencePolicy]):
        self.shard = shard
        self.batcher = EpochBatcher(shard.index, policy)
        self.queue: Optional[asyncio.Queue] = None
        self.task: Optional[asyncio.Task] = None
        self.timer: Optional[asyncio.TimerHandle] = None
        self.failures = 0
        self.tap = tap
        self.breaker = (
            CircuitBreaker(resilience.breaker_threshold,
                           resilience.breaker_cooldown)
            if resilience is not None else None
        )
        self.backlog = RetryBacklog() if resilience is not None else None
        self.retries = 0
        self.shed = 0
        self.deadline_expired = 0
        self.retry_timer: Optional[asyncio.TimerHandle] = None
        # The lane's monotonic virtual clock: batches advance it to
        # their last arrival, backlog entries to their due time.
        self.vclock = 0.0
        # Set as soon as any request arrives unstamped: retry due times
        # are then on the loop clock and need call_later wakes.
        self.live = False

    @property
    def index(self) -> int:
        return self.shard.index


class RenamingService:
    """Sharded, batching renaming service over an asyncio event loop.

    Use as an async context manager (or call :meth:`start` /
    :meth:`aclose` explicitly) inside a running loop::

        async with RenamingService(shards=4, namespace=1 << 20) as svc:
            gid = await svc.rename(uid)
            assert svc.lookup(uid) == gid
            await svc.release(uid)
            await svc.drain()

    ``shard_faults`` maps a shard index to a :mod:`repro.faults.spec`
    spec injected into that shard's every epoch; ``shard_fault_windows``
    bounds a shard's injection to a ``(start, stop)`` window of
    protocol execution attempts (1-based, half-open) — a transient
    outage.  ``adversary_factory`` builds a per-``(shard, epoch)``
    crash adversary.  ``resilience`` (a
    :class:`~repro.serve.resilience.ResiliencePolicy`, a JSON spec, or
    a mapping) enables deadlines / retries / circuit breaking; ``None``
    keeps the fail-the-batch behaviour.  ``profile_shards`` attaches a
    per-shard phase tap so :meth:`phase_report` breaks each shard's
    epochs into the protocol's plan/charge/deliver/advance phases
    (slightly slower: the instrumented network step runs).
    """

    def __init__(
        self,
        *,
        shards: int = 4,
        namespace: int = 1 << 20,
        seed: int = 0,
        max_batch: int = 64,
        max_wait: Optional[float] = 0.1,
        config: Optional[CrashRenamingConfig] = None,
        shard_faults: Optional[Mapping[int, FaultSpec]] = None,
        shard_fault_windows: Optional[Mapping[int, tuple[int, int]]] = None,
        adversary_factory: Optional[ShardAdversaryFactory] = None,
        resilience: ResilienceSpec = None,
        observer: Optional[object] = None,
        executor: Optional[ThreadPoolExecutor] = None,
        profile_shards: bool = False,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if namespace < 1:
            raise ValueError(f"namespace must be positive, got {namespace}")
        if config is None:
            from repro.analysis.experiments import (
                EXPERIMENT_ELECTION_CONSTANT,
            )

            config = CrashRenamingConfig(
                election_constant=EXPERIMENT_ELECTION_CONSTANT,
            )
        self.shards = shards
        self.namespace = namespace
        self.seed = seed
        self.policy = BatchPolicy(max_batch=max_batch, max_wait=max_wait)
        self.observer = observer
        self.profiler = PhaseProfiler()
        self.resilience = ResiliencePolicy.from_spec(resilience)
        faults = dict(shard_faults or {})
        windows = dict(shard_fault_windows or {})
        unknown = [s for s in {*faults, *windows} if not 0 <= s < shards]
        if unknown:
            raise ValueError(
                f"shard_faults names shards {unknown} outside [0, {shards})"
            )
        self._lanes = []
        for index in range(shards):
            tap = _ProfileTap() if profile_shards else None
            self._lanes.append(_Lane(
                Shard(
                    index, shards, namespace=namespace, seed=seed,
                    config=config, fault_spec=faults.get(index),
                    fault_window=windows.get(index),
                    adversary_factory=adversary_factory,
                    observer=tap,
                ),
                self.policy,
                tap,
                self.resilience,
            ))
        self.epochs = 0
        self.empty_batches = 0
        self.failed_epochs = 0
        self._submitted = 0
        self._executor = executor
        self._own_executor = executor is None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    async def __aenter__(self) -> "RenamingService":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    def start(self) -> None:
        """Bind to the running loop, start executors and lane workers."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.shards, thread_name_prefix="repro-serve",
            )
        for lane in self._lanes:
            lane.queue = asyncio.Queue()
            lane.task = self._loop.create_task(
                self._run_lane(lane), name=f"repro-serve-shard{lane.index}",
            )
        self._emit("serve.start", shards=self.shards,
                   max_batch=self.policy.max_batch,
                   max_wait=self.policy.max_wait,
                   namespace=self.namespace, seed=self.seed)

    async def drain(self) -> None:
        """Flush open batches and wait until every queued epoch ran.

        In resilient mode this also *forces the retry backlog empty*:
        deferred work is executed immediately at its due stamp (virtual
        time jumps — no real sleeping), breaker cooldowns are fast-
        forwarded, and every request resolves one way or the other
        before drain returns.  Attempts are bounded, so this
        terminates.
        """
        self._check_running()
        flushed = 0
        for lane in self._lanes:
            if self._flush_lane(lane, CLOSE_DRAIN):
                flushed += 1
        await asyncio.gather(*(lane.queue.join() for lane in self._lanes))
        if self.resilience is not None:
            while any(lane.backlog for lane in self._lanes):
                for lane in self._lanes:
                    if lane.backlog:
                        lane.queue.put_nowait(_DRAIN_FLUSH)
                await asyncio.gather(
                    *(lane.queue.join() for lane in self._lanes)
                )
        self._emit("serve.drain", flushed=flushed)

    async def aclose(self) -> None:
        """Drain, then stop the lane workers and the owned executor."""
        if self._closed or not self._started:
            self._closed = True
            return
        await self.drain()
        self._closed = True
        for lane in self._lanes:
            if lane.timer is not None:
                lane.timer.cancel()
            if lane.retry_timer is not None:
                lane.retry_timer.cancel()
                lane.retry_timer = None
            lane.task.cancel()
        await asyncio.gather(*(lane.task for lane in self._lanes),
                             return_exceptions=True)
        if self._own_executor and self._executor is not None:
            self._executor.shutdown(wait=True)
        self._emit("serve.stop", epochs=self.epochs,
                   failed_epochs=self.failed_epochs,
                   batches=self.batches, requests=self._submitted)

    def _check_running(self) -> None:
        if not self._started:
            raise RuntimeError("service not started; use 'async with' or "
                               "call start() inside a running loop")
        if self._closed:
            raise RuntimeError("service is closed")

    # -- the front door -------------------------------------------------

    def submit(self, kind: str, uid: int,
               arrival: Optional[float] = None) -> "asyncio.Future":
        """Enqueue one state-changing request; returns its future.

        Synchronous (no await): the request joins its shard's open
        batch before control returns, so per-shard request order equals
        submission order — the determinism contract.  ``arrival`` is a
        virtual timestamp (deterministic mode); ``None`` stamps the
        request with the loop clock and arms the live-mode alarm.
        """
        self._check_running()
        if kind not in (RENAME, RELEASE):
            raise ValueError(f"cannot batch request kind {kind!r}")
        if not 1 <= uid <= self.namespace:
            raise ValueError(
                f"identity {uid} outside [1, {self.namespace}]"
            )
        lane = self._lanes[shard_of(uid, self.shards)]
        future = self._loop.create_future()
        live = arrival is None
        if live:
            arrival = self._loop.time()
            lane.live = True
        op = ShardOp(self._submitted, kind, uid, handle=future,
                     arrival=arrival)
        self._submitted += 1
        for batch in lane.batcher.offer(op, arrival):
            self._dispatch(lane, batch)
        if live:
            self._arm_timer(lane)
        elif lane.timer is not None and not len(lane.batcher):
            lane.timer.cancel()
            lane.timer = None
        return future

    async def rename(self, uid: int,
                     arrival: Optional[float] = None) -> int:
        """Acquire (or refresh) the global compact id of ``uid``.

        Resolves after the epoch that covers this request: the id is
        from the *new* assignment.  Raises :class:`NotRenamed` if the
        identity ends the epoch without a name, :class:`ShardDegraded`
        if the shard's epoch failed.
        """
        return await self.submit(RENAME, uid, arrival)

    async def release(self, uid: int,
                      arrival: Optional[float] = None) -> bool:
        """Give up ``uid``'s compact id (idempotent); True when applied."""
        return await self.submit(RELEASE, uid, arrival)

    def lookup(self, uid: int) -> Optional[int]:
        """Current global compact id of ``uid``, or ``None`` (miss).

        Served synchronously from the shard's installed table — reads
        never queue behind epochs and never block the loop.  Reads are
        *epoch-consistent* but may trail in-flight batches.
        """
        if not 1 <= uid <= self.namespace:
            raise ValueError(
                f"identity {uid} outside [1, {self.namespace}]"
            )
        return self._lanes[shard_of(uid, self.shards)].shard.lookup(uid)

    def original_of(self, global_id: int) -> Optional[int]:
        """Inverse lookup across shards, or ``None``."""
        from repro.serve.sharding import split_compact

        local, shard = split_compact(global_id, self.shards)
        directory = self._lanes[shard].shard.directory
        try:
            return directory.original_id(local)
        except KeyError:
            return None

    # -- batching / timers ---------------------------------------------

    def _dispatch(self, lane: _Lane, batch: Batch) -> None:
        self._emit("serve.batch.close", shard=lane.index, batch=batch.index,
                   size=len(batch), reason=batch.reason)
        lane.queue.put_nowait(batch)

    def _flush_lane(self, lane: _Lane, reason: str) -> bool:
        if lane.timer is not None:
            lane.timer.cancel()
            lane.timer = None
        batch = lane.batcher.flush(reason)
        if batch is None:
            return False
        self._dispatch(lane, batch)
        return True

    def _arm_timer(self, lane: _Lane) -> None:
        """Live mode: a lonely batch flushes after ``max_wait`` seconds."""
        if self.policy.max_wait is None:
            return
        if lane.timer is not None:
            if len(lane.batcher):
                return
            lane.timer.cancel()
            lane.timer = None
        if not len(lane.batcher):
            return
        lane.timer = self._loop.call_later(
            self.policy.max_wait, self._timer_fired, lane,
        )

    def _timer_fired(self, lane: _Lane) -> None:
        lane.timer = None
        if self._closed:
            return
        self._flush_lane(lane, CLOSE_TIMEOUT)

    # -- epoch execution ------------------------------------------------

    async def _run_lane(self, lane: _Lane) -> None:
        while True:
            item = await lane.queue.get()
            try:
                if item is _RETRY_WAKE:
                    await self._process_backlog(lane, self._loop.time())
                    self._arm_retry_timer(lane)
                elif item is _DRAIN_FLUSH:
                    await self._process_backlog(lane, None, force=True)
                else:
                    await self._execute_batch(lane, item)
            finally:
                lane.queue.task_done()

    async def _execute_batch(self, lane: _Lane, batch: Batch) -> None:
        if self.resilience is None:
            await self._execute_batch_simple(lane, batch)
            return
        now = self._loop.time() if lane.live else batch.last_arrival
        lane.vclock = max(lane.vclock, now)
        await self._process_backlog(lane, now)
        state = self._poll_breaker(lane, now)
        if state == BREAKER_OPEN:
            # The shard is quarantined: defer the whole batch to the
            # probe time (its ops have consumed no attempt yet).
            self._defer_or_shed(lane, batch.ops, batch.index, 0, now)
        else:
            await self._attempt(lane, list(batch.ops), now,
                                origin=batch.index, attempt=0,
                                probe=state == BREAKER_HALF_OPEN)
        self._arm_retry_timer(lane)

    async def _execute_batch_simple(self, lane: _Lane,
                                    batch: Batch) -> None:
        """The pre-resilience path (``resilience=None``): one attempt,
        fail the whole batch on error.  Byte-identical epoch seeds and
        counted results to PR 6 — the A/B baseline."""
        epoch = lane.shard.directory.epoch + 1
        self._emit("serve.epoch.begin", shard=lane.index, epoch=epoch,
                   ops=len(batch), attempt=0)
        started = time.perf_counter()
        try:
            outcome = await self._loop.run_in_executor(
                self._executor, lane.shard.execute, batch.ops,
            )
        except Exception as error:
            wall = time.perf_counter() - started
            kind = classify_failure(error, lane.shard.last_fault_issued)
            self._record_epoch_failure(lane, epoch, error, kind, 0, wall)
            failure = ShardDegraded(lane.index, epoch, error, kind)
            for op in batch.ops:
                if not op.handle.done():
                    op.handle.set_exception(failure)
            return
        wall = time.perf_counter() - started
        self._resolve_success(lane, batch.ops, outcome, wall)

    # -- resilient execution (deadlines, retries, breaker) --------------

    async def _process_backlog(self, lane: _Lane, now: Optional[float],
                               force: bool = False) -> None:
        """Execute deferred entries that are due by ``now``.

        ``force`` (drain) ignores ``now`` and fast-forwards the lane's
        virtual clock over backoff delays and breaker cooldowns until
        the backlog is empty — attempts are bounded, so every entry
        either resolves or exhausts its retries.
        """
        while lane.backlog:
            entry = lane.backlog.peek()
            if not force and entry.due > now:
                break
            vnow = max(entry.due, lane.vclock)
            state = self._poll_breaker(lane, vnow)
            if state == BREAKER_OPEN:
                if force:
                    # Fast-forward the cooldown; the entry becomes the
                    # half-open probe.
                    vnow = max(vnow, lane.breaker.probe_at)
                    state = self._poll_breaker(lane, vnow)
                else:
                    # Due but quarantined: push to the probe time.
                    lane.backlog.pop()
                    self._defer_or_shed(lane, entry.ops, entry.origin,
                                        entry.attempt, vnow)
                    continue
            lane.backlog.pop()
            lane.vclock = vnow
            await self._attempt(lane, list(entry.ops), vnow,
                                origin=entry.origin, attempt=entry.attempt,
                                probe=state == BREAKER_HALF_OPEN)

    async def _attempt(self, lane: _Lane, ops: list, vnow: float, *,
                       origin: int, attempt: int, probe: bool) -> None:
        """One protocol execution over ``ops`` at time ``vnow``.

        ``attempt`` counts executions these ops already consumed (the
        retry salt); ``probe`` marks a half-open breaker's trial epoch.
        """
        policy = self.resilience
        if policy.deadline is not None:
            ops = self._expire_deadlines(lane, ops, vnow, attempt)
        if not ops:
            return
        epoch = lane.shard.directory.epoch + 1
        self._emit("serve.epoch.begin", shard=lane.index, epoch=epoch,
                   ops=len(ops), attempt=attempt)
        started = time.perf_counter()
        try:
            outcome = await self._loop.run_in_executor(
                self._executor, lane.shard.execute, ops, attempt,
            )
        except Exception as error:
            wall = time.perf_counter() - started
            kind = classify_failure(error, lane.shard.last_fault_issued)
            self._record_epoch_failure(lane, epoch, error, kind, attempt,
                                       wall)
            if lane.breaker.record_failure(vnow):
                self._emit("serve.breaker.open", shard=lane.index,
                           failures=lane.breaker.consecutive)
            next_attempt = attempt + 1
            if next_attempt > policy.max_retries:
                failure = ShardDegraded(lane.index, epoch, error, kind)
                for op in ops:
                    if not op.handle.done():
                        op.handle.set_exception(failure)
                return
            delay = retry_delay(policy, self.seed, lane.index, origin,
                                next_attempt)
            due = vnow + delay
            if lane.breaker.state == BREAKER_OPEN:
                due = max(due, lane.breaker.probe_at)
            lane.backlog.push(ops, due, next_attempt, origin)
            lane.retries += 1
            self._emit("serve.retry", shard=lane.index, batch=origin,
                       attempt=next_attempt, ops=len(ops),
                       delay_s=round(delay, 9))
            return
        wall = time.perf_counter() - started
        if outcome.ran and lane.breaker.record_success() and probe:
            self._emit("serve.breaker.close", shard=lane.index)
        self._resolve_success(lane, ops, outcome, wall)

    def _expire_deadlines(self, lane: _Lane, ops: list, vnow: float,
                          attempt: int) -> list:
        deadline = self.resilience.deadline
        expired = [op for op in ops if vnow > op.arrival + deadline]
        if not expired:
            return ops
        lane.deadline_expired += len(expired)
        for op in expired:
            if not op.handle.done():
                op.handle.set_exception(
                    DeadlineExceeded(op.uid, lane.index, deadline)
                )
        self._emit("serve.deadline", shard=lane.index,
                   expired=len(expired), attempt=attempt)
        dead = {id(op) for op in expired}
        return [op for op in ops if id(op) not in dead]

    def _defer_or_shed(self, lane: _Lane, ops: Sequence, origin: int,
                       attempt: int, now: float) -> None:
        """Queue ops for the breaker's probe time, shedding overflow."""
        policy = self.resilience
        room = policy.shed_capacity - lane.backlog.ops_count
        keep = list(ops[:max(0, room)])
        drop = list(ops[len(keep):])
        if keep:
            due = max(lane.breaker.probe_at, now)
            lane.backlog.push(keep, due, attempt, origin)
        if drop:
            depth = lane.backlog.ops_count
            lane.shed += len(drop)
            for op in drop:
                if not op.handle.done():
                    op.handle.set_exception(RequestShed(lane.index, depth))
            self._emit("serve.shed", shard=lane.index, ops=len(drop),
                       depth=depth)

    def _record_epoch_failure(self, lane: _Lane, epoch: int,
                              error: BaseException, kind: str,
                              attempt: int, wall: float) -> None:
        lane.failures += 1
        self.failed_epochs += 1
        self.profiler.add(f"shard{lane.index}:failed_epoch", wall)
        # "failure", not "kind": the event envelope reserves ``kind``
        # for the event name itself.
        self._emit("serve.epoch.failed", shard=lane.index, epoch=epoch,
                   failure=kind, attempt=attempt,
                   error=f"{type(error).__name__}: {error}"[:200],
                   wall_s=round(wall, 6))
        self._emit("serve.shard.degraded", shard=lane.index,
                   failures=lane.failures, failure=kind)

    def _resolve_success(self, lane: _Lane, ops: Sequence, outcome,
                         wall: float) -> None:
        for op in ops:
            future = op.handle
            if future.done():
                continue
            if op.kind == RELEASE:
                future.set_result(True)
                continue
            value = lane.shard.resolve(outcome, op)
            if value is None:
                future.set_exception(NotRenamed(op.uid, lane.index))
            else:
                future.set_result(value)
        if not outcome.ran:
            self.empty_batches += 1
            self.profiler.add(f"shard{lane.index}:empty_batch", wall)
            self._emit("serve.epoch.empty", shard=lane.index, ops=len(ops))
            return
        self.epochs += 1
        self.profiler.add(f"shard{lane.index}:epoch", wall)
        report = outcome.report
        self._emit(
            "serve.epoch.end", shard=lane.index, epoch=report.epoch,
            members=report.members, renamed=report.renamed,
            departed=len(report.departed_during_epoch),
            rounds=report.rounds, messages=report.messages,
            bits=report.bits, wall_s=round(wall, 6),
        )

    def _poll_breaker(self, lane: _Lane, now: float) -> str:
        before = lane.breaker.state
        state = lane.breaker.poll(now)
        if state == BREAKER_HALF_OPEN and before == BREAKER_OPEN:
            self._emit("serve.breaker.half_open", shard=lane.index)
        return state

    def _arm_retry_timer(self, lane: _Lane) -> None:
        """Live mode: wake the lane when its earliest retry comes due."""
        if not lane.live or not lane.backlog or self._closed:
            return
        due = lane.backlog.earliest_due()
        if lane.retry_timer is not None:
            lane.retry_timer.cancel()
        delay = max(0.0, due - self._loop.time())
        lane.retry_timer = self._loop.call_later(
            delay, self._retry_wake, lane,
        )

    def _retry_wake(self, lane: _Lane) -> None:
        lane.retry_timer = None
        if self._closed:
            return
        lane.queue.put_nowait(_RETRY_WAKE)

    # -- introspection --------------------------------------------------

    @property
    def batches(self) -> int:
        return sum(lane.batcher.closed for lane in self._lanes)

    def boundaries(self) -> list[list[dict]]:
        """Per-shard batch boundary records (see ``Batch.boundary``)."""
        return [list(lane.batcher.boundaries) for lane in self._lanes]

    def histories(self) -> list[list]:
        """Per-shard :class:`EpochReport` histories."""
        return [list(lane.shard.directory.history) for lane in self._lanes]

    def assignment(self) -> dict[int, int]:
        """The merged ``original -> global compact`` table, all shards."""
        merged: dict[int, int] = {}
        for lane in self._lanes:
            merged.update(lane.shard.global_assignment())
        return merged

    def stats(self) -> dict:
        """Scalar service counters (JSON-friendly)."""
        totals = {"rounds": 0, "messages": 0, "bits": 0}
        for lane in self._lanes:
            for report in lane.shard.directory.history:
                totals["rounds"] += report.rounds
                totals["messages"] += report.messages
                totals["bits"] += report.bits
        stats = {
            "shards": self.shards,
            "requests": self._submitted,
            "batches": self.batches,
            "epochs": self.epochs,
            "empty_batches": self.empty_batches,
            "failed_epochs": self.failed_epochs,
            "failures": sum(lane.failures for lane in self._lanes),
            "retries": sum(lane.retries for lane in self._lanes),
            "shed": sum(lane.shed for lane in self._lanes),
            "deadline_expired": sum(lane.deadline_expired
                                    for lane in self._lanes),
            "members": sum(len(lane.shard.directory.members)
                           for lane in self._lanes),
            **totals,
        }
        if self.resilience is not None:
            stats["breaker_opens"] = sum(lane.breaker.opens
                                         for lane in self._lanes)
            stats["breaker_closes"] = sum(lane.breaker.closes
                                          for lane in self._lanes)
            stats["breakers_open"] = sum(
                1 for lane in self._lanes
                if lane.breaker.state != "closed"
            )
        return stats

    def per_shard_stats(self) -> list[dict]:
        rows = []
        for lane in self._lanes:
            directory = lane.shard.directory
            row = {
                "shard": lane.index,
                "members": len(directory.members),
                "epochs": directory.epoch,
                "attempts": lane.shard.attempts,
                "batches": lane.batcher.closed,
                "failures": lane.failures,
                "retries": lane.retries,
                "shed": lane.shed,
                "deadline_expired": lane.deadline_expired,
                "messages": sum(r.messages for r in directory.history),
                "bits": sum(r.bits for r in directory.history),
            }
            if lane.breaker is not None:
                row["breaker"] = lane.breaker.stats()
                row["backlog"] = lane.backlog.ops_count
            rows.append(row)
        return rows

    def phase_report(self) -> dict:
        """Per-shard phase breakdown (``repro.obs/profile@1``).

        Always contains the ``shard<k>:epoch`` wall time measured
        around each executor call; with ``profile_shards=True`` also
        the protocol-phase split (``shard<k>:plan`` ...) from each
        shard's tap.
        """
        merged = PhaseProfiler()
        merged.merge(self.profiler)
        report = merged.report()
        for lane in self._lanes:
            if lane.tap is None:
                continue
            tap_report = lane.tap.profiler.report()
            for phase, row in tap_report["phases"].items():
                report["phases"][f"shard{lane.index}:{phase}"] = row
        report["schema"] = PROFILE_FORMAT
        return report

    # -- events ---------------------------------------------------------

    def _emit(self, event_kind: str, **data) -> None:
        if observing(self.observer):
            self.observer.emit(event_kind, **data)
