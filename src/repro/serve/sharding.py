"""Namespace sharding: independent directory instances behind one door.

The original namespace ``[1, N]`` is hashed across ``shards``
independent :class:`~repro.apps.overlay_directory.OverlayDirectory`
instances.  Each shard runs its own protocol epochs over only the
members hashed to it, so epochs of different shards can execute
concurrently (the service runs them in a thread pool), and a fault
injected into one shard's epochs cannot touch another shard's state.

Compact identities stay globally unique through an interleaved
encoding: shard ``s`` of ``S`` maps its local compact id ``c`` to the
global id ``(c - 1) * S + s + 1``.  When the shards are balanced the
global namespace stays dense to within a factor of the imbalance —
the per-shard namespaces are tight ``[1, members]`` by Theorem 1.2,
so the global one is ``[1, ~S * max_shard_members]``.

Everything here is deterministic and thread-free: :func:`shard_of` is
a fixed multiplicative hash (never Python's salted ``hash``), and
:meth:`Shard.execute` is a plain blocking function the service calls
via ``run_in_executor`` — one epoch at a time per shard, enforced by
the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.apps.overlay_directory import EpochReport, OverlayDirectory
from repro.core.crash_renaming import CrashRenamingConfig
from repro.faults.degradation import FaultTap
from repro.faults.spec import FaultSpec, build_fault_model, normalize_spec

#: Knuth's multiplicative constant; any odd 32-bit constant with good
#: avalanche works, this one is conventional.
_HASH_MULTIPLIER = 2654435761
_HASH_MASK = 0xFFFFFFFF

#: ``rename``/``release`` are the state-changing operations a batch
#: carries; ``lookup`` never reaches a shard's epoch loop.
RENAME = "rename"
RELEASE = "release"
LOOKUP = "lookup"


def shard_of(uid: int, shards: int) -> int:
    """The shard owning original identity ``uid`` — stable everywhere.

    A fixed multiplicative hash, deliberately not Python's ``hash``:
    the mapping must agree across processes, interpreter versions, and
    ``PYTHONHASHSEED`` values, because it is baked into every stored
    global compact id.
    """
    return ((uid * _HASH_MULTIPLIER) & _HASH_MASK) % shards


def global_compact(local: int, shard: int, shards: int) -> int:
    """Interleave a shard-local compact id into the global namespace."""
    return (local - 1) * shards + shard + 1


def split_compact(global_id: int, shards: int) -> tuple[int, int]:
    """Inverse of :func:`global_compact`: ``(local, shard)``."""
    return (global_id - 1) // shards + 1, (global_id - 1) % shards


def shard_seed(seed: int, shard: int) -> int:
    """Per-shard protocol seed: independent shards, replayable whole."""
    return hash((seed, shard)) & 0x7FFFFFFF


def _check_window(window) -> Optional[tuple[int, int]]:
    """Validate a ``(start, stop)`` attempt window (1-based, half-open)."""
    if window is None:
        return None
    try:
        start, stop = window
    except (TypeError, ValueError):
        raise ValueError(
            f"fault_window must be a (start, stop) pair, got {window!r}"
        ) from None
    start, stop = int(start), int(stop)
    if start < 1 or stop < start:
        raise ValueError(
            f"fault_window needs 1 <= start <= stop, got ({start}, {stop})"
        )
    return (start, stop)


def net_delta(
    members: set[int], ops: Sequence["ShardOp"]
) -> tuple[list[int], list[int]]:
    """Collapse a batch of rename/release ops into ``(joins, leaves)``.

    Processed in arrival order against the shard's *current* members:
    a release cancels a same-batch pending join (the identity was
    given up before any epoch assigned it a name), a rename cancels a
    same-batch pending leave, repeated renames of a member are
    idempotent, and a release of a non-member is a no-op.  The result
    is the batch's net membership change — what one epoch applies.
    """
    joins: list[int] = []
    leaves: list[int] = []
    join_set: set[int] = set()
    leave_set: set[int] = set()
    for op in ops:
        uid = op.uid
        if op.kind == RENAME:
            if uid in join_set:
                continue
            if uid in leave_set:
                leave_set.discard(uid)
                leaves.remove(uid)
                continue
            if uid in members:
                continue
            join_set.add(uid)
            joins.append(uid)
        elif op.kind == RELEASE:
            if uid in join_set:
                join_set.discard(uid)
                joins.remove(uid)
                continue
            if uid in leave_set or uid not in members:
                continue
            leave_set.add(uid)
            leaves.append(uid)
        else:
            raise ValueError(f"batch op kind {op.kind!r} cannot reach a "
                             f"shard epoch")
    return joins, leaves


@dataclass(frozen=True)
class ShardOp:
    """One state-changing request routed to a shard.

    ``index`` is the request's global trace/submission index (used only
    for reporting); ``handle`` is an opaque slot the service uses to
    carry the asyncio future — the sharding layer never touches it.
    ``arrival`` is the request's arrival stamp (virtual or loop time);
    the resilience layer measures per-request deadlines from it.  Both
    are excluded from equality so counted-result comparisons see only
    ``(index, kind, uid)``.
    """

    index: int
    kind: str
    uid: int
    handle: object = field(default=None, compare=False, repr=False)
    arrival: float = field(default=0.0, compare=False)


@dataclass(frozen=True)
class EpochOutcome:
    """What one shard epoch produced, for response resolution.

    ``report`` is ``None`` when the batch's net delta emptied the shard
    (every member released): no epoch ran, the assignment is empty.
    """

    shard: int
    epoch: int
    report: Optional[EpochReport]
    assignment: Mapping[int, int]

    @property
    def ran(self) -> bool:
        return self.report is not None


#: Builds a per-epoch crash adversary: ``factory(shard, epoch)``.
ShardAdversaryFactory = Callable[[int, int], Optional[object]]


class Shard:
    """One directory partition plus its per-epoch execution policy.

    Wraps an :class:`OverlayDirectory` seeded independently per shard.
    ``fault_spec`` (a :mod:`repro.faults.spec` spec) rebuilds a fresh
    seeded fault model for every epoch, so injected faults replay
    bit-exactly; ``adversary_factory`` does the same for crash
    adversaries.  ``observer`` is forwarded into the protocol execution
    (round-level events); leave it ``None`` when shards run on
    concurrent threads and the recorder is not thread-safe — the
    service keeps its own serve-level events on the event loop.

    ``fault_window`` bounds the injection to a half-open interval of
    *protocol execution attempts* ``[start, stop)``, 1-based — the
    chaos harness uses it to model a transient outage.  Attempts, not
    epochs: a failed execution rolls back and leaves ``directory.epoch``
    unchanged, so windows keyed on the epoch number would never close
    under total fault.  ``None`` injects into every execution (PR 5/6
    behaviour).
    """

    def __init__(
        self,
        index: int,
        shards: int,
        *,
        namespace: int,
        seed: int = 0,
        config: Optional[CrashRenamingConfig] = None,
        fault_spec: FaultSpec = None,
        fault_window: Optional[tuple[int, int]] = None,
        adversary_factory: Optional[ShardAdversaryFactory] = None,
        observer: Optional[object] = None,
    ):
        self.index = index
        self.shards = shards
        self.seed = shard_seed(seed, index)
        self.fault_spec = normalize_spec(fault_spec)
        self.fault_window = _check_window(fault_window)
        self.adversary_factory = adversary_factory
        self.observer = observer
        self.directory = OverlayDirectory(
            namespace, config=config, seed=self.seed,
        )
        #: Protocol executions tried so far (failed ones included).
        self.attempts = 0
        #: Fault verdicts issued during the most recent execution
        #: (a ``FaultTap.issued`` snapshot) — empty when no fault model
        #: was active or the channel never lied.
        self.last_fault_issued: dict[str, int] = {}

    def owns(self, uid: int) -> bool:
        return shard_of(uid, self.shards) == self.index

    # -- reads (safe from the event-loop thread) -----------------------

    def lookup(self, uid: int) -> Optional[int]:
        """Current global compact id of ``uid``, or ``None``.

        Safe to call while :meth:`execute` runs on another thread: the
        directory rebinds its lookup tables atomically per epoch, so a
        concurrent reader sees one consistent epoch or the next.
        """
        local = self.directory.compact_id_or_none(uid)
        if local is None:
            return None
        return global_compact(local, self.index, self.shards)

    def global_assignment(self) -> dict[int, int]:
        """``original -> global compact`` for this shard's members."""
        return {
            uid: global_compact(local, self.index, self.shards)
            for uid, local in self.directory.assignment.items()
        }

    # -- epochs (one at a time, off the event loop) --------------------

    def execute(self, ops: Sequence[ShardOp], salt: int = 0) -> EpochOutcome:
        """Apply one batch: net membership delta, then one epoch.

        Blocking; the service calls it via ``run_in_executor`` and
        serializes calls per shard.  On *any* protocol failure the
        membership delta is rolled back and the exception propagates —
        the directory is left exactly as before the batch, so the
        service can fail these requests and keep serving.

        ``salt`` distinguishes retries: a rolled-back epoch leaves
        ``directory.epoch`` unchanged, so re-executing with ``salt=0``
        would rebuild the identical protocol seed and fault model and
        fail identically forever.  The resilience layer passes the
        attempt number; ``salt=0`` reproduces the pre-resilience seeds
        byte-for-byte (the A/B contract).
        """
        directory = self.directory
        joins, leaves = net_delta(directory.members, ops)
        for uid in joins:
            directory.join(uid)
        for uid in leaves:
            directory.leave(uid)
        if not directory.members:
            # Net effect emptied the shard: nothing to rename.  The
            # previous assignment is withdrawn (all holders released).
            directory.withdraw_assignment()
            return EpochOutcome(self.index, directory.epoch, None, {})
        epoch = directory.epoch + 1
        self.attempts += 1
        self.last_fault_issued = {}
        tap: Optional[FaultTap] = None
        if self.fault_spec and self._faults_active(self.attempts):
            if salt:
                fault_seed = hash((self.seed, epoch, salt)) & 0x7FFFFFFF
            else:
                fault_seed = hash((self.seed, epoch)) & 0x7FFFFFFF
            tap = FaultTap(build_fault_model(
                self.fault_spec, len(directory.members), seed=fault_seed,
            ))
        adversary = (self.adversary_factory(self.index, epoch)
                     if self.adversary_factory is not None else None)
        try:
            report = directory.run_epoch(
                adversary, fault_model=tap, observer=self.observer,
                seed_salt=salt,
            )
        except Exception:
            # run_epoch installs atomically, so only the join/leave
            # delta needs undoing.
            if tap is not None:
                self.last_fault_issued = dict(tap.issued)
            for uid in joins:
                directory.leave(uid)
            for uid in leaves:
                directory.join(uid)
            raise
        if tap is not None:
            self.last_fault_issued = dict(tap.issued)
        return EpochOutcome(
            self.index, report.epoch, report, report.assignment,
        )

    def _faults_active(self, attempt: int) -> bool:
        """Whether the fault window covers this (1-based) attempt."""
        if self.fault_window is None:
            return True
        start, stop = self.fault_window
        return start <= attempt < stop

    def resolve(self, outcome: EpochOutcome, op: ShardOp) -> Optional[int]:
        """The response value for ``op`` after its batch's epoch.

        A rename resolves to the uid's *global* compact id in the new
        assignment, or ``None`` when the uid holds no name (released in
        the same batch, or crashed out of the epoch).  A release always
        resolves (idempotent).
        """
        if op.kind == RELEASE:
            return None
        local = outcome.assignment.get(op.uid)
        if local is None:
            return None
        return global_compact(local, self.index, self.shards)
