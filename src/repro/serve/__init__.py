"""Renaming as a service: asyncio front door over sharded epochs.

The serving layer promotes the epoch-based
:class:`~repro.apps.overlay_directory.OverlayDirectory` into a
long-lived concurrent service:

* :mod:`repro.serve.service` — the asyncio :class:`RenamingService`
  accepting rename / lookup / release from many clients;
* :mod:`repro.serve.batching` — deterministic epoch batching
  (``max_batch`` / ``max_wait``);
* :mod:`repro.serve.sharding` — namespace partitioning into
  independent directories with globally unique interleaved ids;
* :mod:`repro.serve.resilience` — deadlines, seeded retry backoff, and
  the per-shard circuit breaker;
* :mod:`repro.serve.chaos` — the serve-level degradation frontier
  (resilient vs baseline, classified per fault rung);
* :mod:`repro.serve.loadgen` — seeded load profiles, trace generation,
  latency histograms, and the benchmark harness;
* :mod:`repro.serve.obs` — the ``repro.obs/serve@2`` event contract;
* :mod:`repro.serve.driver` — the ``serve`` sweep-engine driver.
"""

from repro.serve.batching import (
    Batch,
    BatchPolicy,
    EpochBatcher,
    plan_batches,
)
from repro.serve.chaos import (
    CHAOS_FORMAT,
    DEFAULT_CHAOS_RESILIENCE,
    ChaosRung,
    classify_serve_run,
    default_chaos_ladder,
    format_frontier,
    run_chaos,
    run_rung,
)
from repro.serve.loadgen import (
    DEFAULT_PROFILE,
    QUICK_PROFILE,
    LatencyHistogram,
    LoadProfile,
    LoadReport,
    Request,
    execute_profile,
    generate_trace,
    run_load,
    trace_digest,
)
from repro.serve.obs import (
    SERVE_EVENT_FORMAT,
    SERVE_EVENT_KINDS,
    validate_serve_events,
)
from repro.serve.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    RetryBacklog,
    classify_failure,
    retry_delay,
)
from repro.serve.service import (
    DeadlineExceeded,
    NotRenamed,
    RenamingService,
    RequestShed,
    ServeError,
    ShardDegraded,
)
from repro.serve.sharding import (
    EpochOutcome,
    Shard,
    ShardOp,
    global_compact,
    net_delta,
    shard_of,
    split_compact,
)

__all__ = [
    "Batch",
    "BatchPolicy",
    "CHAOS_FORMAT",
    "ChaosRung",
    "CircuitBreaker",
    "DEFAULT_CHAOS_RESILIENCE",
    "DEFAULT_PROFILE",
    "DeadlineExceeded",
    "EpochBatcher",
    "EpochOutcome",
    "LatencyHistogram",
    "LoadProfile",
    "LoadReport",
    "NotRenamed",
    "QUICK_PROFILE",
    "RenamingService",
    "Request",
    "RequestShed",
    "ResiliencePolicy",
    "RetryBacklog",
    "SERVE_EVENT_FORMAT",
    "SERVE_EVENT_KINDS",
    "ServeError",
    "Shard",
    "ShardDegraded",
    "ShardOp",
    "classify_failure",
    "classify_serve_run",
    "default_chaos_ladder",
    "execute_profile",
    "format_frontier",
    "generate_trace",
    "global_compact",
    "net_delta",
    "plan_batches",
    "retry_delay",
    "run_chaos",
    "run_load",
    "run_rung",
    "shard_of",
    "split_compact",
    "trace_digest",
]
