"""Renaming as a service: asyncio front door over sharded epochs.

The serving layer promotes the epoch-based
:class:`~repro.apps.overlay_directory.OverlayDirectory` into a
long-lived concurrent service:

* :mod:`repro.serve.service` — the asyncio :class:`RenamingService`
  accepting rename / lookup / release from many clients;
* :mod:`repro.serve.batching` — deterministic epoch batching
  (``max_batch`` / ``max_wait``);
* :mod:`repro.serve.sharding` — namespace partitioning into
  independent directories with globally unique interleaved ids;
* :mod:`repro.serve.loadgen` — seeded load profiles, trace generation,
  latency histograms, and the benchmark harness;
* :mod:`repro.serve.obs` — the ``repro.obs/serve@1`` event contract;
* :mod:`repro.serve.driver` — the ``serve`` sweep-engine driver.
"""

from repro.serve.batching import (
    Batch,
    BatchPolicy,
    EpochBatcher,
    plan_batches,
)
from repro.serve.loadgen import (
    DEFAULT_PROFILE,
    QUICK_PROFILE,
    LatencyHistogram,
    LoadProfile,
    LoadReport,
    Request,
    execute_profile,
    generate_trace,
    run_load,
    trace_digest,
)
from repro.serve.obs import (
    SERVE_EVENT_FORMAT,
    SERVE_EVENT_KINDS,
    validate_serve_events,
)
from repro.serve.service import (
    NotRenamed,
    RenamingService,
    ServeError,
    ShardDegraded,
)
from repro.serve.sharding import (
    EpochOutcome,
    Shard,
    ShardOp,
    global_compact,
    net_delta,
    shard_of,
    split_compact,
)

__all__ = [
    "Batch",
    "BatchPolicy",
    "DEFAULT_PROFILE",
    "EpochBatcher",
    "EpochOutcome",
    "LatencyHistogram",
    "LoadProfile",
    "LoadReport",
    "NotRenamed",
    "QUICK_PROFILE",
    "RenamingService",
    "Request",
    "SERVE_EVENT_FORMAT",
    "SERVE_EVENT_KINDS",
    "ServeError",
    "Shard",
    "ShardDegraded",
    "ShardOp",
    "execute_profile",
    "generate_trace",
    "global_compact",
    "net_delta",
    "plan_batches",
    "run_load",
    "shard_of",
    "split_compact",
    "trace_digest",
    "validate_serve_events",
]
