"""The ``repro.obs/serve@1`` event surface of the serving layer.

Serve events ride the existing :mod:`repro.obs` recorder — they are
ordinary ``repro.obs/events@1`` events whose ``kind`` is dotted under
``serve.`` — so `python -m repro obs tail` validates and prints them
like any other stream.  This module pins the *serve-specific* contract
on top: which kinds exist and which ``data`` fields each must carry,
so CI and tests can schema-validate a service run, not just the
generic envelope.

Events are emitted only from the event-loop thread (batch lifecycle,
epoch results, degradation), never from inside a shard's protocol
execution — per-request emission would melt the ring buffer at
100k+ requests per run, and the protocol's own round events stay
available by attaching an observer to a single shard.
"""

from __future__ import annotations

from typing import Iterable

#: Format tag for the serve event family (stamped into benchmark
#: output and checked by CI's serve-smoke job).
SERVE_EVENT_FORMAT = "repro.obs/serve@1"

#: Required ``data`` fields per serve event kind.
SERVE_EVENT_KINDS: dict[str, tuple[str, ...]] = {
    # Service lifecycle.
    "serve.start": ("shards", "max_batch"),
    "serve.drain": ("flushed",),
    "serve.stop": ("epochs", "failed_epochs"),
    # Batch lifecycle (one per closed batch).
    "serve.batch.close": ("shard", "batch", "size", "reason"),
    # Epoch execution (bracket one shard epoch off the event loop).
    "serve.epoch.begin": ("shard", "epoch", "ops"),
    "serve.epoch.end": ("shard", "epoch", "members", "renamed",
                        "departed", "rounds", "messages", "bits",
                        "wall_s"),
    "serve.epoch.empty": ("shard", "ops"),
    "serve.epoch.failed": ("shard", "epoch", "error", "wall_s"),
    # A shard served a batch it could not complete; the service keeps
    # serving every other shard.
    "serve.shard.degraded": ("shard", "failures"),
}


def validate_serve_events(events: Iterable[dict]) -> list[str]:
    """Serve-contract validation on top of the generic event schema.

    Checks every ``serve.*`` event against :data:`SERVE_EVENT_KINDS`:
    known kind, all required ``data`` fields present.  Returns
    human-readable problems; empty means valid.  Non-serve events are
    ignored (streams may interleave engine or round events).
    """
    problems: list[str] = []
    for index, event in enumerate(events):
        kind = event.get("kind", "")
        if not kind.startswith("serve."):
            continue
        required = SERVE_EVENT_KINDS.get(kind)
        if required is None:
            problems.append(f"event {index}: unknown serve kind {kind!r}")
            continue
        data = event.get("data", {})
        for field in required:
            if field not in data:
                problems.append(
                    f"event {index}: {kind} missing data field {field!r}"
                )
    return problems
