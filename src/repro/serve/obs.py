"""The ``repro.obs/serve@2`` event surface of the serving layer.

Version 2 (the resilience PR) adds the retry/breaker/shed/deadline
kinds and requires a failure taxonomy ``failure`` on
``serve.epoch.failed`` / ``serve.shard.degraded``.  Every @1 event is
still emitted with all its @1 fields, so @1 consumers keep working.

Serve events ride the existing :mod:`repro.obs` recorder — they are
ordinary ``repro.obs/events@1`` events whose ``kind`` is dotted under
``serve.`` — so `python -m repro obs tail` validates and prints them
like any other stream.  This module pins the *serve-specific* contract
on top: which kinds exist and which ``data`` fields each must carry,
so CI and tests can schema-validate a service run, not just the
generic envelope.

Events are emitted only from the event-loop thread (batch lifecycle,
epoch results, degradation), never from inside a shard's protocol
execution — per-request emission would melt the ring buffer at
100k+ requests per run, and the protocol's own round events stay
available by attaching an observer to a single shard.
"""

from __future__ import annotations

from typing import Iterable

#: Format tag for the serve event family (stamped into benchmark
#: output and checked by CI's serve-smoke job).
SERVE_EVENT_FORMAT = "repro.obs/serve@2"

#: Required ``data`` fields per serve event kind.
SERVE_EVENT_KINDS: dict[str, tuple[str, ...]] = {
    # Service lifecycle.
    "serve.start": ("shards", "max_batch"),
    "serve.drain": ("flushed",),
    "serve.stop": ("epochs", "failed_epochs"),
    # Batch lifecycle (one per closed batch).
    "serve.batch.close": ("shard", "batch", "size", "reason"),
    # Epoch execution (bracket one shard epoch off the event loop).
    # ``attempt`` is 0 for a batch's first execution, k for its k-th
    # retry (the retry seed salt).
    "serve.epoch.begin": ("shard", "epoch", "ops", "attempt"),
    "serve.epoch.end": ("shard", "epoch", "members", "renamed",
                        "departed", "rounds", "messages", "bits",
                        "wall_s"),
    "serve.epoch.empty": ("shard", "ops"),
    # ``failure`` is the taxonomy ("faults" / "non_termination" /
    # "rename_failed" / "error"); the field is not named ``kind``
    # because the event envelope reserves that for the event name.
    "serve.epoch.failed": ("shard", "epoch", "failure", "attempt", "error",
                           "wall_s"),
    # A shard served a batch it could not complete; the service keeps
    # serving every other shard.
    "serve.shard.degraded": ("shard", "failures", "failure"),
    # Resilience (emitted only with a resilience policy attached).
    # A failed batch's survivors were scheduled for re-execution.
    "serve.retry": ("shard", "batch", "attempt", "ops", "delay_s"),
    # The shard's breaker opened (threshold consecutive failures, or a
    # failed half-open probe), went half-open (cooldown elapsed; next
    # execution is the probe), or closed (the probe succeeded).
    "serve.breaker.open": ("shard", "failures"),
    "serve.breaker.half_open": ("shard",),
    "serve.breaker.close": ("shard",),
    # Ops failed fast because the open shard's backlog was full.
    "serve.shed": ("shard", "ops", "depth"),
    # Ops cancelled because their per-request deadline passed.
    "serve.deadline": ("shard", "expired", "attempt"),
}


def validate_serve_events(events: Iterable[dict]) -> list[str]:
    """Serve-contract validation on top of the generic event schema.

    Checks every ``serve.*`` event against :data:`SERVE_EVENT_KINDS`:
    known kind, all required ``data`` fields present.  Returns
    human-readable problems; empty means valid.  Non-serve events are
    ignored (streams may interleave engine or round events).
    """
    problems: list[str] = []
    for index, event in enumerate(events):
        kind = event.get("kind", "")
        if not kind.startswith("serve."):
            continue
        required = SERVE_EVENT_KINDS.get(kind)
        if required is None:
            problems.append(f"event {index}: unknown serve kind {kind!r}")
            continue
        data = event.get("data", {})
        for field in required:
            if field not in data:
                problems.append(
                    f"event {index}: {kind} missing data field {field!r}"
                )
    return problems
