"""Epoch batching: coalesce pending renames into protocol executions.

One renaming epoch re-runs the protocol over a shard's whole
membership, so its cost is paid per *epoch*, not per request — the
service amortizes it by coalescing requests into batches and running
one epoch per batch.  :class:`EpochBatcher` implements the policy:

* a batch closes as soon as it holds ``max_batch`` operations
  (``"full"``), or
* when a new operation arrives after the open batch's deadline
  (``first_arrival + max_wait``) has passed (``"deadline"`` — the
  late arrival starts the next batch), or
* when the owner flushes explicitly (``"drain"`` at shutdown,
  ``"timeout"`` from the service's wall-clock timer in live mode).

Decisions use only the submitted operations' *arrival stamps* and
counts — the batcher never reads a clock.  Fed virtual timestamps from
a generated trace, batch boundaries are a pure function of the trace
and the policy: byte-identical across runs, event-loop schedules, and
processes, which is what makes the serial A/B reference in
``tests/test_serve_ab.py`` exact and the load benchmark replayable.
In live mode the *service* supplies wall-clock stamps and an alarm
(``loop.call_later``) that calls :meth:`EpochBatcher.flush`; the
policy stays the same, only the clock is real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.serve.sharding import ShardOp

#: Why a batch closed, in the order the rules are checked.
CLOSE_FULL = "full"
CLOSE_DEADLINE = "deadline"
CLOSE_DRAIN = "drain"
CLOSE_TIMEOUT = "timeout"


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing knobs: size trigger and waiting-time trigger.

    ``max_wait`` is in the unit of the arrival stamps (virtual seconds
    for a generated trace, real seconds in live mode); ``None``
    disables the deadline rule, leaving only size and explicit flush.
    """

    max_batch: int = 64
    max_wait: Optional[float] = 0.1

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait is not None and self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")


@dataclass(frozen=True)
class Batch:
    """One closed batch: the epoch's work order."""

    shard: int
    index: int
    ops: tuple[ShardOp, ...]
    first_arrival: float
    last_arrival: float
    reason: str

    def __len__(self) -> int:
        return len(self.ops)

    def boundary(self) -> dict:
        """The batch's identity for determinism comparisons — every
        field that defines *which* requests landed in it and why it
        closed, none that depend on wall clock."""
        return {
            "shard": self.shard,
            "batch": self.index,
            "size": len(self.ops),
            "reason": self.reason,
            "first": self.ops[0].index,
            "last": self.ops[-1].index,
        }


class EpochBatcher:
    """Accumulates one shard's pending operations into batches.

    Not thread-safe by design: the service only touches it from the
    event loop, the serial reference from one thread.
    """

    def __init__(self, shard: int, policy: BatchPolicy):
        self.shard = shard
        self.policy = policy
        self.closed = 0
        #: Boundary records of every closed batch, in close order.
        self.boundaries: list[dict] = []
        self._pending: list[ShardOp] = []
        self._arrivals: list[float] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def deadline(self) -> Optional[float]:
        """When the open batch expires, or ``None`` (empty/no rule)."""
        if not self._pending or self.policy.max_wait is None:
            return None
        return self._arrivals[0] + self.policy.max_wait

    def offer(self, op: ShardOp, arrival: float) -> list[Batch]:
        """Submit one operation; returns the batches this closed.

        Usually empty or one batch; two when ``max_batch == 1`` races a
        passed deadline.  ``arrival`` stamps must be non-decreasing per
        batcher (trace order / submission order).
        """
        closed: list[Batch] = []
        deadline = self.deadline
        if deadline is not None and arrival > deadline:
            closed.append(self._close(CLOSE_DEADLINE))
        self._pending.append(op)
        self._arrivals.append(arrival)
        if len(self._pending) >= self.policy.max_batch:
            closed.append(self._close(CLOSE_FULL))
        return closed

    def flush(self, reason: str = CLOSE_DRAIN) -> Optional[Batch]:
        """Close the open batch regardless of size; ``None`` if empty."""
        if not self._pending:
            return None
        return self._close(reason)

    def _close(self, reason: str) -> Batch:
        batch = Batch(
            shard=self.shard,
            index=self.closed,
            ops=tuple(self._pending),
            first_arrival=self._arrivals[0],
            last_arrival=self._arrivals[-1],
            reason=reason,
        )
        self.closed += 1
        self.boundaries.append(batch.boundary())
        self._pending.clear()
        self._arrivals.clear()
        return batch


def plan_batches(
    shard: int, ops: Sequence[tuple[ShardOp, float]], policy: BatchPolicy
) -> list[Batch]:
    """Pure batch plan for one shard's ``(op, arrival)`` stream.

    Exactly the batches a service produces for the same stream in
    deterministic mode — the serial reference uses this to mirror the
    concurrent execution batch for batch.
    """
    batcher = EpochBatcher(shard, policy)
    batches: list[Batch] = []
    for op, arrival in ops:
        batches.extend(batcher.offer(op, arrival))
    tail = batcher.flush(CLOSE_DRAIN)
    if tail is not None:
        batches.append(tail)
    return batches
