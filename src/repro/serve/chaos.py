"""Chaos harness: the serving layer's degradation frontier.

PR 5 measured how the *protocol* degrades under an escalating ladder
of link faults; this module measures how the *service* degrades — the
level users actually see.  Each rung injects a :mod:`repro.faults`
channel model into one or more shards of a live
:class:`~repro.serve.service.RenamingService` (usually bounded to a
transient window of protocol attempts), plays the same seeded load
trace, and classifies the run with the
:mod:`repro.faults.degradation` vocabulary:

``SAFE_TERMINATED``
    Every accepted request was answered and the final global
    assignment is duplicate-free — the service absorbed the rung.
``SAFE_STALLED``
    Some requests failed (degraded / shed / deadline-expired) but
    every future resolved and uniqueness held: liveness partially
    lost, safety intact — graceful degradation.
``SAFETY_VIOLATED``
    The final assignment contains a duplicate global id.
``CRASHED``
    The harness raised, or futures were left unresolved — the
    serving layer itself fell over rather than degrading.

Each rung runs twice: *resilient* (retries + circuit breaker, see
:mod:`repro.serve.resilience`) and *baseline* (``resilience=None`` —
PR 6's fail-the-batch behaviour), so the frontier is an A/B statement
about what the resilience layer buys.  Everything is virtual-time
deterministic: same profile, same seed, same rows.

``python -m repro chaos`` (see ``benchmarks/chaos.py``) writes the
frontier as ``BENCH_chaos.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.faults.degradation import (
    CRASHED,
    SAFE_STALLED,
    SAFE_TERMINATED,
    SAFETY_VIOLATED,
    outcome_rank,
    summarize_frontier,
)
from repro.faults.spec import spec_to_json
from repro.serve.loadgen import LoadProfile, execute_profile
from repro.serve.resilience import ResiliencePolicy

#: Schema tag stamped into ``BENCH_chaos.json``.
CHAOS_FORMAT = "repro.serve/chaos@1"

#: The two serve scenarios every rung is classified under.
SCENARIO_RESILIENT = "serve-resilient"
SCENARIO_BASELINE = "serve-baseline"

#: Default policy for the resilient arm: enough retries to outlast the
#: default fault window, a breaker that trips fast (the faulted shard
#: fails several consecutive attempts inside one window) and probes on
#: a cooldown short relative to the virtual trace span (~requests /
#: arrival_rate seconds).
DEFAULT_CHAOS_RESILIENCE = ResiliencePolicy(
    max_retries=4,
    backoff_base=0.005,
    backoff_factor=2.0,
    backoff_jitter=0.5,
    deadline=None,
    breaker_threshold=3,
    breaker_cooldown=0.05,
    shed_capacity=1024,
)

#: Default transient-outage window: protocol attempts 1-8 of each
#: faulted shard are under fault pressure, later attempts run clean.
DEFAULT_WINDOW = (1, 9)


@dataclass(frozen=True)
class ChaosRung:
    """One rung of the serve-level ladder.

    ``spec`` is a :mod:`repro.faults.spec` entry tuple; ``window``
    bounds the injection to protocol attempts ``[start, stop)`` of
    each faulted shard (``None`` = persistent); ``faulted_shards`` is
    how many shards (indices ``0..k-1``) take the fault.
    """

    label: str
    spec: tuple
    window: Optional[tuple[int, int]] = None
    faulted_shards: int = 1

    @property
    def spec_json(self) -> str:
        return spec_to_json(list(self.spec))


def _rung(label, spec, window=None, faulted_shards=1) -> ChaosRung:
    return ChaosRung(label, tuple(dict(entry) for entry in spec),
                     window, faulted_shards)


def default_chaos_ladder(window: tuple[int, int] = DEFAULT_WINDOW,
                         quick: bool = False) -> list[ChaosRung]:
    """The serve ladder: control, windowed outages of rising pressure,
    then persistent faults.  Windowed rungs model a transient incident
    (the acceptance scenario: requests should ride across it);
    persistent rungs show the service's behaviour when the outage
    never ends (retries exhaust, the breaker stays open — degraded but
    safe).  ``quick`` keeps the rungs CI cares about."""
    ladder = [
        _rung("none", []),
        _rung("omission-10%-window",
              [{"kind": "omission", "p": 0.10}], window),
        _rung("omission-50%-window",
              [{"kind": "omission", "p": 0.50}], window),
        _rung("omission-100%-window",
              [{"kind": "omission", "p": 1.0}], window),
        _rung("corrupt-20%-window",
              [{"kind": "corrupt", "p": 0.20}], window),
        _rung("duplicate-20%",
              [{"kind": "duplicate", "p": 0.20}]),
        _rung("partition-3r-window",
              [{"kind": "partition", "start": 2, "end": 5}], window),
        _rung("omission-100%-persistent",
              [{"kind": "omission", "p": 1.0}]),
    ]
    if quick:
        keep = {"none", "omission-10%-window", "omission-100%-window",
                "omission-100%-persistent"}
        ladder = [rung for rung in ladder if rung.label in keep]
    return ladder


def classify_serve_run(report: dict) -> tuple[str, dict]:
    """Fold one ``execute_profile`` report into an outcome + detail."""
    if not report.get("unique", False):
        return SAFETY_VIOLATED, {"invariant": "unique-names"}
    if report.get("unresolved", 0):
        return CRASHED, {"error": "unresolved-futures",
                         "unresolved": report["unresolved"]}
    failed = (report["degraded"] + report["shed"]
              + report["deadline_expired"] + report["errors"])
    if failed:
        return SAFE_STALLED, {
            "degraded": report["degraded"],
            "shed": report["shed"],
            "deadline_expired": report["deadline_expired"],
            "errors": report["errors"],
        }
    return SAFE_TERMINATED, {}


def goodput(report: dict) -> float:
    """Eventual rename goodput: renames that got a name over renames
    that *could* have (a :class:`NotRenamed` miss — released in the
    same batch — is an answered request, not lost goodput)."""
    eligible = report["renames"] - report["rename_misses"]
    return report["renamed"] / max(1, eligible)


def run_rung(
    profile: LoadProfile,
    rung: ChaosRung,
    *,
    resilience: Optional[ResiliencePolicy],
    observer=None,
) -> dict:
    """Execute one (rung, mode) cell; returns a flat frontier row."""
    scenario = (SCENARIO_BASELINE if resilience is None
                else SCENARIO_RESILIENT)
    faulted = range(min(rung.faulted_shards, profile.shards))
    shard_faults = ({s: list(rung.spec) for s in faulted}
                    if rung.spec else None)
    windows = ({s: rung.window for s in faulted}
               if rung.spec and rung.window is not None else None)
    try:
        report = execute_profile(
            profile,
            shard_faults=shard_faults,
            shard_fault_windows=windows,
            resilience=resilience,
            observer=observer,
        )
    except Exception as error:  # the harness itself fell over
        return {
            "scenario": scenario,
            "rung": rung.label,
            "faults": rung.spec_json,
            "window": list(rung.window) if rung.window else None,
            "outcome": CRASHED,
            "detail": f"{type(error).__name__}: {error}"[:200],
            "goodput": 0.0,
        }
    outcome, detail = classify_serve_run(report)
    service = report["service"]
    shard0 = report["per_shard"][0]
    return {
        "scenario": scenario,
        "rung": rung.label,
        "faults": rung.spec_json,
        "window": list(rung.window) if rung.window else None,
        "outcome": outcome,
        "outcome_rank": outcome_rank(outcome),
        "detail": detail or None,
        "goodput": round(goodput(report), 6),
        "requests": report["requests"],
        "renames": report["renames"],
        "renamed": report["renamed"],
        "rename_misses": report["rename_misses"],
        "degraded": report["degraded"],
        "shed": report["shed"],
        "deadline_expired": report["deadline_expired"],
        "errors": report["errors"],
        "unresolved": report["unresolved"],
        "unique": report["unique"],
        "epochs": service["epochs"],
        "failed_epochs": service["failed_epochs"],
        "retries": service["retries"],
        "breaker_opens": service.get("breaker_opens", 0),
        "breaker_closes": service.get("breaker_closes", 0),
        "breaker_state": (shard0.get("breaker", {}).get("state")
                          if "breaker" in shard0 else None),
        "trace_sha256": report["trace_sha256"],
    }


def run_chaos(
    profile: LoadProfile,
    *,
    ladder: Optional[Sequence[ChaosRung]] = None,
    resilience: Optional[ResiliencePolicy] = None,
    observer=None,
) -> dict:
    """The full serve-level frontier: every rung, both arms.

    Returns ``{rows, summary, profile, resilience}``; ``rows`` carry
    one dict per (rung, scenario) in ladder order with the resilient
    arm first, and ``summary`` is the per-scenario
    :func:`~repro.faults.degradation.summarize_frontier` digest.
    """
    if ladder is None:
        ladder = default_chaos_ladder()
    if resilience is None:
        resilience = DEFAULT_CHAOS_RESILIENCE
    rows: list[dict] = []
    for rung in ladder:
        rows.append(run_rung(profile, rung, resilience=resilience,
                             observer=observer))
        rows.append(run_rung(profile, rung, resilience=None,
                             observer=observer))
    return {
        "profile": profile,
        "resilience": resilience,
        "rows": rows,
        "summary": summarize_frontier(rows),
    }


def format_frontier(rows: Sequence[dict]) -> str:
    """A fixed-width text table of the frontier (CLI output)."""
    header = (f"{'rung':<26} {'scenario':<16} {'outcome':<16} "
              f"{'goodput':>8} {'failed':>7} {'retries':>7} "
              f"{'breaker':>8}")
    lines = [header, "-" * len(header)]
    for row in rows:
        failed = (row.get("degraded", 0) + row.get("shed", 0)
                  + row.get("deadline_expired", 0) + row.get("errors", 0))
        lines.append(
            f"{row['rung']:<26} {row['scenario']:<16} "
            f"{row['outcome']:<16} {row.get('goodput', 0.0):>8.3f} "
            f"{failed:>7} {row.get('retries', 0):>7} "
            f"{row.get('breaker_state') or '-':>8}"
        )
    return "\n".join(lines)
