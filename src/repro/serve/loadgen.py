"""Load generation and latency measurement for the renaming service.

A :class:`LoadProfile` describes a workload as a small frozen value:
how many client identities, how many requests, the rename / lookup /
release mix, the (virtual) arrival rate, and the service shape the
benchmark should stand up.  :func:`generate_trace` expands a profile
into a concrete request *trace* — a pure function of the profile (one
seeded :class:`random.Random`, no wall clock anywhere), so the same
profile always produces the identical trace, and with deterministic
batching (virtual arrival stamps) the identical batch boundaries.
That property is asserted by ``tests/test_serve_ab.py`` and is what
lets a serial reference loop reproduce the concurrent service's
counted results bit for bit.

:func:`run_load` plays a trace against a started
:class:`~repro.serve.service.RenamingService`: open-loop dispatch in
trace order (optionally paced against the wall clock), per-request
latency measured from submission to future resolution, lookups served
inline.  :func:`execute_profile` is the one-call harness — build
service, play trace, collect stats/histograms/phases — used by the
``serve`` engine driver and ``benchmarks/serve.py``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import asdict, dataclass, replace
from random import Random
from typing import Mapping, Optional, Sequence

from repro.serve.resilience import ResiliencePolicy, ResilienceSpec
from repro.serve.service import (
    DeadlineExceeded,
    NotRenamed,
    RenamingService,
    RequestShed,
    ShardDegraded,
)
from repro.serve.sharding import LOOKUP, RELEASE, RENAME

#: Histogram bucket for requests that failed (degraded / shed /
#: deadline / error): kept out of the per-kind p50/p95/p99, which
#: measure only requests the service actually answered.
FAILED = "failed"


@dataclass(frozen=True)
class LoadProfile:
    """One serving workload, small enough to be a cache key.

    ``arrival_rate`` and ``max_wait`` are in *virtual* seconds —
    together with the weights they determine the batch shapes; the
    dispatcher replays arrivals as fast as it can unless paced.
    """

    clients: int = 256
    requests: int = 120_000
    shards: int = 4
    max_batch: int = 64
    max_wait: float = 0.1
    arrival_rate: float = 20_000.0
    rename_weight: float = 6.0
    lookup_weight: float = 90.0
    release_weight: float = 4.0
    namespace: int = 1 << 20
    seed: int = 0

    def __post_init__(self):
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.namespace < self.clients:
            raise ValueError(
                f"namespace {self.namespace} smaller than "
                f"clients={self.clients}"
            )
        if self.rename_weight <= 0:
            raise ValueError("rename_weight must be positive (the first "
                             "request has nothing to look up)")
        if min(self.lookup_weight, self.release_weight) < 0:
            raise ValueError("mix weights must be non-negative")
        if self.arrival_rate <= 0:
            raise ValueError(
                f"arrival_rate must be positive, got {self.arrival_rate}"
            )

    def scaled(self, **overrides) -> "LoadProfile":
        """A copy with fields replaced (``dataclasses.replace``)."""
        return replace(self, **overrides)


#: The benchmark's default workload: 120k requests — mostly lookups,
#: with enough rename/release churn to keep every shard's epoch loop
#: busy — against 4 shards of ~64 members each.
DEFAULT_PROFILE = LoadProfile()

#: CI smoke: small and fast, same shape.
QUICK_PROFILE = LoadProfile(clients=48, requests=4_000, shards=2,
                            max_batch=32)


@dataclass(frozen=True)
class Request:
    """One trace entry.  ``arrival`` is virtual seconds from start."""

    index: int
    arrival: float
    kind: str
    uid: int


def generate_trace(profile: LoadProfile) -> list[Request]:
    """Expand a profile into its request trace — pure and seeded.

    Arrivals are a Poisson process at ``arrival_rate``; kinds are drawn
    from the mix weights with feasibility fallbacks (can't look up
    before anything is named, can't release with nobody active, can't
    rename with every client active).  Renames pick an inactive client,
    releases an active one, lookups any identity ever named — so a
    lookup can miss (identity released), which the service must answer,
    not error on.
    """
    rng = Random(profile.seed)
    uids = sorted(rng.sample(
        range(1, profile.namespace + 1), profile.clients,
    ))
    inactive = list(uids)
    active: list[int] = []
    named: list[int] = []
    named_set: set[int] = set()
    rename_cut = profile.rename_weight
    lookup_cut = rename_cut + profile.lookup_weight
    total = lookup_cut + profile.release_weight
    trace: list[Request] = []
    arrival = 0.0
    for index in range(profile.requests):
        arrival += rng.expovariate(profile.arrival_rate)
        draw = rng.random() * total
        if draw < rename_cut:
            kind = RENAME
        elif draw < lookup_cut:
            kind = LOOKUP
        else:
            kind = RELEASE
        # Feasibility fallbacks, in dependency order.
        if kind == LOOKUP and not named:
            kind = RENAME
        if kind == RELEASE and not active:
            kind = RENAME
        if kind == RENAME and not inactive:
            kind = LOOKUP
        if kind == RENAME:
            slot = rng.randrange(len(inactive))
            inactive[slot], inactive[-1] = inactive[-1], inactive[slot]
            uid = inactive.pop()
            active.append(uid)
            if uid not in named_set:
                named_set.add(uid)
                named.append(uid)
        elif kind == RELEASE:
            slot = rng.randrange(len(active))
            active[slot], active[-1] = active[-1], active[slot]
            uid = active.pop()
            inactive.append(uid)
        else:
            uid = named[rng.randrange(len(named))]
        trace.append(Request(index, arrival, kind, uid))
    return trace


def trace_digest(trace: Sequence[Request]) -> str:
    """Stable content hash of a trace (for determinism assertions)."""
    hasher = hashlib.sha256()
    for op in trace:
        hasher.update(
            f"{op.index} {op.arrival:.9f} {op.kind} {op.uid}\n".encode()
        )
    return hasher.hexdigest()


class LatencyHistogram:
    """Accumulates request latencies; summarizes p50/p95/p99."""

    __slots__ = ("_samples",)

    def __init__(self):
        self._samples: list[float] = []

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)

    def __len__(self) -> int:
        return len(self._samples)

    def summary(self) -> dict:
        """``{count, mean_ms, p50_ms, p95_ms, p99_ms, max_ms}``.

        Quantiles are nearest-rank over the exact sample set (no
        binning): ``p99`` of 10k samples is the 9900th smallest.
        """
        count = len(self._samples)
        if not count:
            return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
                    "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
        ordered = sorted(self._samples)

        def at(q: float) -> float:
            # nearest-rank: ceil(q * count) clamped into [1, count]
            index = max(1, min(count, int(-(-(q * count) // 1))))
            return ordered[index - 1]

        to_ms = lambda s: round(s * 1000.0, 4)  # noqa: E731
        return {
            "count": count,
            "mean_ms": to_ms(sum(ordered) / count),
            "p50_ms": to_ms(at(0.50)),
            "p95_ms": to_ms(at(0.95)),
            "p99_ms": to_ms(at(0.99)),
            "max_ms": to_ms(ordered[-1]),
        }


@dataclass
class LoadReport:
    """What one trace execution measured."""

    requests: int
    wall_s: float
    throughput_rps: float
    renames: int
    releases: int
    lookups: int
    renamed: int
    released: int
    rename_misses: int
    degraded: int
    shed: int
    deadline_expired: int
    errors: int
    unresolved: int
    lookup_hits: int
    lookup_misses: int
    latency: dict

    def as_dict(self) -> dict:
        return asdict(self)


async def run_load(
    service: RenamingService,
    trace: Sequence[Request],
    *,
    deterministic: bool = True,
    pace: Optional[float] = None,
    yield_every: int = 256,
) -> LoadReport:
    """Play ``trace`` against a started service; measure everything.

    Open loop, in trace order: state-changing requests are submitted
    without waiting for completion (latency is measured from submission
    to future resolution by a done-callback), lookups are answered
    inline.  Latency accounting is *end-to-end*: a retried request's
    single future resolves only after its final attempt, so its sample
    spans first submit → final resolution.  Failed requests (degraded /
    shed / deadline / error) land in the ``failed`` histogram, keeping
    the per-kind p50/p95/p99 a statement about answered requests.  ``deterministic=True`` stamps requests with their virtual
    arrivals so batch boundaries are a pure function of the trace;
    ``False`` exercises the live wall-clock batching path.  ``pace``
    replays arrivals against the wall clock at that speed multiple
    (``1.0`` = real time); ``None`` dispatches as fast as possible,
    yielding to the loop every ``yield_every`` requests so epochs
    overlap with dispatch.
    """
    hists = {RENAME: LatencyHistogram(), RELEASE: LatencyHistogram(),
             LOOKUP: LatencyHistogram(), FAILED: LatencyHistogram()}
    counts = {
        "renames": 0, "releases": 0, "lookups": 0,
        "renamed": 0, "released": 0, "rename_misses": 0,
        "degraded": 0, "shed": 0, "deadline_expired": 0, "errors": 0,
        "lookup_hits": 0, "lookup_misses": 0,
    }
    futures: list[asyncio.Future] = []
    started = time.perf_counter()
    for op in trace:
        if pace is not None:
            delay = (started + op.arrival / pace) - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
        elif yield_every and op.index % yield_every == 0:
            await asyncio.sleep(0)
        if op.kind == LOOKUP:
            counts["lookups"] += 1
            t0 = time.perf_counter()
            value = service.lookup(op.uid)
            hists[LOOKUP].record(time.perf_counter() - t0)
            counts["lookup_hits" if value is not None
                   else "lookup_misses"] += 1
            continue
        counts["renames" if op.kind == RENAME else "releases"] += 1
        t0 = time.perf_counter()
        future = service.submit(
            op.kind, op.uid, op.arrival if deterministic else None,
        )

        def _settled(fut: asyncio.Future, kind: str = op.kind,
                     submit_ts: float = t0) -> None:
            if fut.cancelled():
                return  # counted as unresolved at the drain site
            elapsed = time.perf_counter() - submit_ts
            error = fut.exception()
            if error is None:
                hists[kind].record(elapsed)
                counts["renamed" if kind == RENAME else "released"] += 1
            elif isinstance(error, NotRenamed):
                # Answered, just with "no name": an epoch covered it.
                hists[kind].record(elapsed)
                counts["rename_misses"] += 1
            else:
                hists[FAILED].record(elapsed)
                if isinstance(error, RequestShed):
                    counts["shed"] += 1
                elif isinstance(error, DeadlineExceeded):
                    counts["deadline_expired"] += 1
                elif isinstance(error, ShardDegraded):
                    counts["degraded"] += 1
                else:
                    counts["errors"] += 1

        future.add_done_callback(_settled)
        futures.append(future)
    await service.drain()
    # drain() resolves every accepted request; a future still pending
    # here is a service bug (or an aborted run) — cancel it and count
    # it, never hang on it.
    unresolved = [f for f in futures if not f.done()]
    for future in unresolved:
        future.cancel()
    if futures:
        await asyncio.gather(*futures, return_exceptions=True)
    wall = time.perf_counter() - started
    return LoadReport(
        requests=len(trace),
        wall_s=round(wall, 6),
        throughput_rps=round(len(trace) / wall, 1) if wall else 0.0,
        latency={kind: hist.summary() for kind, hist in hists.items()},
        unresolved=len(unresolved),
        **counts,
    )


def execute_profile(
    profile: LoadProfile,
    *,
    shard_faults: Optional[Mapping[int, object]] = None,
    shard_fault_windows: Optional[Mapping[int, tuple]] = None,
    adversary_factory=None,
    resilience: ResilienceSpec = None,
    config=None,
    observer=None,
    profile_shards: bool = False,
    deterministic: bool = True,
    pace: Optional[float] = None,
) -> dict:
    """Stand up a service, play the profile's trace, report everything.

    The one-call harness behind ``python -m repro serve`` and the
    ``serve`` engine driver.  Returns a JSON-able report: the profile,
    the trace digest, the :class:`LoadReport` fields, service counters,
    per-shard rows, batch boundaries, the per-shard phase breakdown,
    and a global-uniqueness verdict over the final assignment.
    """
    trace = generate_trace(profile)
    policy = ResiliencePolicy.from_spec(resilience)

    async def _run() -> dict:
        service = RenamingService(
            shards=profile.shards,
            namespace=profile.namespace,
            seed=profile.seed,
            max_batch=profile.max_batch,
            max_wait=profile.max_wait,
            config=config,
            shard_faults=shard_faults,
            shard_fault_windows=shard_fault_windows,
            adversary_factory=adversary_factory,
            resilience=policy,
            observer=observer,
            profile_shards=profile_shards,
        )
        async with service:
            load = await run_load(
                service, trace, deterministic=deterministic, pace=pace,
            )
            assignment = service.assignment()
            globals_ = list(assignment.values())
            histories = service.histories()
            report = {
                "profile": asdict(profile),
                "resilience": (None if policy is None
                               else json.loads(policy.to_json())),
                "trace_sha256": trace_digest(trace),
                **load.as_dict(),
                "service": service.stats(),
                "per_shard": service.per_shard_stats(),
                "boundaries": service.boundaries(),
                "phases": service.phase_report(),
                "assignment_size": len(assignment),
                "unique": len(set(globals_)) == len(globals_),
                "epoch_messages": [
                    report.messages
                    for shard_history in histories
                    for report in shard_history
                ],
                "epoch_bits": [
                    report.bits
                    for shard_history in histories
                    for report in shard_history
                ],
            }
        return report

    return asyncio.run(_run())
