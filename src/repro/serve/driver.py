"""The ``serve`` sweep-engine driver: one load execution per row.

Lets ``python -m repro sweep --driver serve`` scale the *service* the
way the other drivers scale a single protocol execution: ``n`` is the
number of client identities, ``f`` the number of shards degraded by an
injected fault spec, and the extra scalar params pick the service
shape (shards, batch policy) and the workload (requests, rate, mix).
Every knob is a JSON scalar, so rows stay content-addressable in the
engine's run store and replay bit-exactly: the trace, the batch
boundaries, and each shard's protocol randomness all derive from
``seed`` alone.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.serve.loadgen import LoadProfile, execute_profile

#: Spec injected into each of the first ``f`` shards when the caller
#: does not pass one: total omission, which makes every epoch on those
#: shards fail — the worst case the degradation frontier measures.
DEFAULT_FAULT_SPEC = '[{"kind": "omission", "p": 1.0}]'


def serve_run_summary(
    n: int,
    f: int,
    seed: int,
    *,
    requests: Optional[int] = None,
    shards: int = 4,
    max_batch: int = 64,
    max_wait: float = 0.1,
    arrival_rate: float = 20_000.0,
    rename_weight: float = 6.0,
    lookup_weight: float = 90.0,
    release_weight: float = 4.0,
    namespace: Optional[int] = None,
    faults: str = DEFAULT_FAULT_SPEC,
    fault_window: Optional[str] = None,
    resilience: Optional[str] = None,
    include_rounds: bool = False,
) -> dict:
    """One service load execution as a flat engine row.

    ``n`` = client identities, ``f`` = shards (indices ``0..f-1``)
    running every epoch under the ``faults`` spec (a JSON string, like
    the ``faults`` driver's).  ``fault_window`` (JSON ``[start, stop]``,
    1-based attempts, half-open) bounds the injection to a transient
    outage on those shards; ``resilience`` is a JSON
    :class:`~repro.serve.resilience.ResiliencePolicy` spec (``"{}"``
    for all defaults) enabling retries / breaker / deadlines — both
    plain JSON strings so rows stay content-addressable.  ``requests``
    defaults to ``40 * n`` so sweeps over ``n`` keep per-client load
    constant.  With ``include_rounds`` the ledger columns carry
    *per-epoch* totals (ordered by shard, then epoch) rather than
    per-round ones — an epoch is the service's unit of protocol work.
    """
    if not 0 <= f <= shards:
        raise ValueError(f"f={f} must be within [0, shards={shards}]")
    profile = LoadProfile(
        clients=n,
        requests=40 * n if requests is None else requests,
        shards=shards,
        max_batch=max_batch,
        max_wait=max_wait,
        arrival_rate=arrival_rate,
        rename_weight=rename_weight,
        lookup_weight=lookup_weight,
        release_weight=release_weight,
        namespace=namespace if namespace is not None else max(1 << 20, n),
        seed=seed,
    )
    spec = json.loads(faults)
    shard_faults = {shard: spec for shard in range(f)} if f else None
    windows = None
    if fault_window is not None and f:
        start, stop = json.loads(fault_window)
        windows = {shard: (start, stop) for shard in range(f)}
    report = execute_profile(profile, shard_faults=shard_faults,
                             shard_fault_windows=windows,
                             resilience=resilience)
    service = report["service"]
    rename_latency = report["latency"]["rename"]
    row = {
        "driver": "serve",
        "n": n,
        "f_budget": f,
        "requests": report["requests"],
        "shards": shards,
        "throughput_rps": report["throughput_rps"],
        "wall_s": report["wall_s"],
        "renamed": report["renamed"],
        "released": report["released"],
        "rename_misses": report["rename_misses"],
        "degraded": report["degraded"],
        "shed": report["shed"],
        "deadline_expired": report["deadline_expired"],
        "unresolved": report["unresolved"],
        "lookup_hits": report["lookup_hits"],
        "lookup_misses": report["lookup_misses"],
        "batches": service["batches"],
        "epochs": service["epochs"],
        "failed_epochs": service["failed_epochs"],
        "retries": service["retries"],
        "breaker_opens": service.get("breaker_opens", 0),
        "breaker_closes": service.get("breaker_closes", 0),
        "members": service["members"],
        "rounds": service["rounds"],
        "messages": service["messages"],
        "bits": service["bits"],
        "rename_p50_ms": rename_latency["p50_ms"],
        "rename_p99_ms": rename_latency["p99_ms"],
        "unique": report["unique"],
        "trace_sha256": report["trace_sha256"],
    }
    if include_rounds:
        row["messages_per_round"] = report["epoch_messages"]
        row["bits_per_round"] = report["epoch_bits"]
    return row
