"""Request-level resilience: deadlines, seeded retries, circuit breaking.

PR 6's service is one-shot on failure: a failed epoch rolls back and
rejects its whole batch.  This module supplies the mechanisms the
service threads through its lanes to survive *sustained* fault windows
the way the paper's protocol survives crashes — requests ride across
the outage instead of dying inside it:

* :class:`ResiliencePolicy` — the knobs, a small frozen value the
  service (and the ``serve`` driver, as a JSON spec) accepts.
* :func:`retry_delay` — seeded jittered exponential backoff.  The
  delay is a pure function of ``(seed, shard, origin batch, attempt)``,
  never of a clock or of Python's salted ``hash`` on strings, so the
  retry schedule in virtual-time mode is a pure function of the
  submitted ``(op, arrival)`` stream — the same determinism contract
  the batcher already honours, pinned by the A/B tests.
* :class:`CircuitBreaker` — per-shard state machine: *closed* →
  (``threshold`` consecutive failed epoch executions) → *open* →
  (``cooldown`` elapses on the lane's clock) → *half-open*, where the
  next execution is a probe → *closed* on success, *open* again on
  failure.  While open, the lane defers work to the probe time and
  sheds beyond :attr:`ResiliencePolicy.shed_capacity`.
* :class:`RetryBacklog` — the lane's deferred work, ordered by
  ``(due, push order)``.  In virtual-time mode entries are executed
  when the lane reaches their due stamp (pulled along by later
  batches, or flushed at drain); in live mode a ``call_later`` alarm
  wakes the lane.  Either way the *per-lane* execution sequence is the
  same pure function of the stream.
* :func:`classify_failure` — the failure taxonomy ``ShardDegraded``
  carries (``"faults"`` / ``"non_termination"`` / ``"rename_failed"``),
  so load generators and the chaos classifier distinguish injected
  faults from protocol bugs without string-matching exception names.

Everything here is clock-free and service-agnostic: the service passes
``now`` in (virtual stamps in deterministic mode, ``loop.time()`` in
live mode) and emits the ``repro.obs/serve@2`` events itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from random import Random
from typing import Mapping, Optional, Sequence, Union

from repro.core.crash_renaming import RenamingFailure
from repro.sim.network import NonTerminationError

#: Accepted policy shapes: a policy, JSON text, a mapping, or None.
ResilienceSpec = Union["ResiliencePolicy", str, Mapping, None]

#: Circuit-breaker states, as they appear in stats and events.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Failure taxonomy carried by ``ShardDegraded.kind``.
FAIL_FAULTS = "faults"
FAIL_NON_TERMINATION = "non_termination"
FAIL_RENAME = "rename_failed"
FAIL_ERROR = "error"


@dataclass(frozen=True)
class ResiliencePolicy:
    """The service's request-level resilience knobs.

    ``max_retries`` bounds *re*-executions per request beyond the first
    attempt; ``deadline`` (in the unit of the arrival stamps — virtual
    seconds in deterministic mode, real seconds live) cancels a request
    whose next execution would start later than ``arrival + deadline``;
    ``None`` disables deadlines.  Backoff delays and the breaker
    cooldown are in the same time unit.  ``shed_capacity`` bounds how
    many operations a lane defers while its breaker is open — overflow
    is shed (fails fast with ``RequestShed``).
    """

    max_retries: int = 3
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    deadline: Optional[float] = None
    breaker_threshold: int = 5
    breaker_cooldown: float = 0.25
    shed_capacity: int = 512

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_jitter < 0:
            raise ValueError(
                f"backoff_jitter must be >= 0, got {self.backoff_jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got "
                f"{self.breaker_threshold}")
        if self.breaker_cooldown < 0:
            raise ValueError(
                f"breaker_cooldown must be >= 0, got {self.breaker_cooldown}")
        if self.shed_capacity < 0:
            raise ValueError(
                f"shed_capacity must be >= 0, got {self.shed_capacity}")

    def scaled(self, **overrides) -> "ResiliencePolicy":
        """A copy with fields replaced (``dataclasses.replace``)."""
        return replace(self, **overrides)

    @classmethod
    def from_spec(cls, spec: ResilienceSpec) -> Optional["ResiliencePolicy"]:
        """Decode a policy from JSON text / a mapping; ``None`` stays
        ``None`` (resilience disabled — PR 6 fail-the-batch behaviour).
        An empty mapping or ``"{}"`` means "all defaults"."""
        if spec is None:
            return None
        if isinstance(spec, ResiliencePolicy):
            return spec
        if isinstance(spec, str):
            text = spec.strip()
            if not text:
                return None
            try:
                spec = json.loads(text)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"resilience spec is not JSON: {error}") from None
        if not isinstance(spec, Mapping):
            raise ValueError(
                f"resilience spec must be an object, got {type(spec).__name__}"
            )
        known = cls.__dataclass_fields__
        unknown = [key for key in spec if key not in known]
        if unknown:
            raise ValueError(
                f"unknown resilience fields {unknown}; "
                f"expected {sorted(known)}"
            )
        return cls(**spec)

    def to_json(self) -> str:
        """Canonical JSON of the policy (stable key order)."""
        from dataclasses import asdict

        return json.dumps(asdict(self), sort_keys=True)


def retry_delay(
    policy: ResiliencePolicy, seed: int, shard: int, origin: int,
    attempt: int,
) -> float:
    """Backoff before retry ``attempt`` (1-based) of a failed batch.

    Exponential in the attempt number with a seeded multiplicative
    jitter in ``[1, 1 + backoff_jitter)``.  The jitter stream derives
    from ``hash((seed, shard, origin, attempt))`` — integer tuples hash
    identically across processes and ``PYTHONHASHSEED`` values, the
    same idiom the sharding layer uses for per-shard seeds — so two
    executions of the same stream schedule byte-identical retries.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    base = policy.backoff_base * policy.backoff_factor ** (attempt - 1)
    if policy.backoff_jitter == 0:
        return base
    rng = Random(hash((seed, shard, origin, attempt)) & 0x7FFFFFFF)
    return base * (1.0 + policy.backoff_jitter * rng.random())


class CircuitBreaker:
    """Closed → open → half-open → closed, on the caller's clock.

    Counts *consecutive* failed epoch executions (a success resets the
    run).  After ``threshold`` of them the breaker opens at the failure
    time; once ``cooldown`` has elapsed — the caller reports time via
    :meth:`poll` — it goes half-open and the next execution is a
    *probe*: success closes the breaker, failure reopens it (restarting
    the cooldown).  All transitions are counted for stats.
    """

    __slots__ = ("threshold", "cooldown", "state", "consecutive",
                 "opened_at", "opens", "closes", "probes")

    def __init__(self, threshold: int, cooldown: float):
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = BREAKER_CLOSED
        self.consecutive = 0
        self.opened_at = 0.0
        self.opens = 0
        self.closes = 0
        self.probes = 0

    @property
    def probe_at(self) -> float:
        """When the open breaker will accept a probe."""
        return self.opened_at + self.cooldown

    def poll(self, now: float) -> str:
        """Advance open → half-open when the cooldown has elapsed;
        returns the (possibly new) state."""
        if self.state == BREAKER_OPEN and now >= self.probe_at:
            self.state = BREAKER_HALF_OPEN
            self.probes += 1
        return self.state

    def record_failure(self, now: float) -> bool:
        """One failed epoch execution at ``now``; True when this
        failure opened (or reopened) the breaker."""
        self.consecutive += 1
        if self.state == BREAKER_HALF_OPEN:
            # The probe failed: straight back to open, fresh cooldown.
            self.state = BREAKER_OPEN
            self.opened_at = now
            self.opens += 1
            return True
        if (self.state == BREAKER_CLOSED
                and self.consecutive >= self.threshold):
            self.state = BREAKER_OPEN
            self.opened_at = now
            self.opens += 1
            return True
        return False

    def record_success(self) -> bool:
        """One installed epoch; True when this closed a half-open
        breaker (the probe succeeded — the shard recovered)."""
        recovered = self.state == BREAKER_HALF_OPEN
        if recovered:
            self.closes += 1
        self.state = BREAKER_CLOSED
        self.consecutive = 0
        return recovered

    def stats(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive,
            "opens": self.opens,
            "closes": self.closes,
            "probes": self.probes,
        }


@dataclass(frozen=True)
class RetryEntry:
    """Deferred work for one lane: ops to re-execute at ``due``.

    ``attempt`` is how many executions these ops already consumed (0
    for work deferred before its first try, while the breaker was
    open); ``origin`` is the closed batch the ops came from, which
    keys the deterministic backoff jitter.
    """

    ops: tuple
    due: float
    attempt: int
    origin: int
    seq: int = 0


class RetryBacklog:
    """One lane's deferred entries, ordered by ``(due, push order)``.

    Plain sorted insertion — backlogs hold a handful of entries, and a
    deterministic total order matters more than asymptotics.
    """

    __slots__ = ("_entries", "_seq")

    def __init__(self):
        self._entries: list[RetryEntry] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def ops_count(self) -> int:
        """Total deferred operations (the shed-capacity measure)."""
        return sum(len(entry.ops) for entry in self._entries)

    def push(self, ops: Sequence, due: float, attempt: int,
             origin: int) -> RetryEntry:
        self._seq += 1
        entry = RetryEntry(tuple(ops), due, attempt, origin, self._seq)
        index = 0
        for index, existing in enumerate(self._entries):  # noqa: B007
            if (existing.due, existing.seq) > (due, entry.seq):
                self._entries.insert(index, entry)
                return entry
        self._entries.append(entry)
        return entry

    def peek(self) -> RetryEntry:
        return self._entries[0]

    def pop(self) -> RetryEntry:
        return self._entries.pop(0)

    def earliest_due(self) -> Optional[float]:
        return self._entries[0].due if self._entries else None


def classify_failure(error: BaseException,
                     fault_issued: Mapping[str, int]) -> str:
    """The ``ShardDegraded.kind`` taxonomy for one failed epoch.

    An epoch that ran under a fault model which actually issued
    verdicts failed because of *injected faults* — whatever exception
    the protocol surfaced is downstream of the channel lying.  Without
    fault pressure, the exception type tells protocol stalls apart
    from renaming failures; anything else is an implementation error.
    """
    if fault_issued:
        return FAIL_FAULTS
    if isinstance(error, NonTerminationError):
        return FAIL_NON_TERMINATION
    if isinstance(error, RenamingFailure):
        return FAIL_RENAME
    return FAIL_ERROR
