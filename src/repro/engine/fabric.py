"""Crash-resumable distributed sweep fabric: lease, execute, settle.

The paper's protocol renames correctly while up to half its processors
crash; this module holds the harness to the same standard.  A sweep
becomes a *campaign*: its requests are enqueued once as content-hashed
tasks (:mod:`repro.engine.queue`), and any number of independent
worker processes — started together, started later, restarted after a
``kill -9`` — drain the queue cooperatively:

* **Lease** — a worker claims one task atomically and owns it until
  its lease deadline; a heartbeat thread renews the lease on a
  seeded-jitter cadence while the task executes, so a slow run is not
  mistaken for a dead worker.
* **Reap** — each worker periodically returns expired leases to
  ``pending`` (crashed workers renew nothing), so work lost to a
  SIGKILL is reclaimed by whoever is still alive.
* **Settle** — the run row is written to the content-addressed store
  *first*, then the task is settled under the lease owner guard.  A
  crash between the two leaves a pending task whose run row already
  exists; recovery serves it from the store without re-executing.
  Settlement is therefore at-most-once: a competing worker that lost
  its lease gets a detected no-op verdict, never a duplicate row.

Determinism contract: every run row is keyed by its content hash and
produced by the same :func:`~repro.engine.sweeps.execute_request` path
the serial engine uses, so the final run set of a campaign — however
many workers, crashes, and resumes it took — is byte-identical to one
serial ``run_requests`` execution (timing metadata aside).

Workers drain gracefully on SIGTERM (finish the task in hand, settle
it, stop claiming) and survive SIGKILL via lease expiry; both paths
are pinned by the chaos tests in ``tests/test_fabric.py``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass
from random import Random
from typing import Optional, Sequence

from repro.engine.backends import resolve_store_url
from repro.engine.backends.base import (
    SETTLE_LOST,
    SETTLE_OK,
    TASK_LEASED,
    QueuedTask,
)
from repro.engine.pool import RunResult, execute_leased
from repro.engine.queue import TaskQueue, task_request
from repro.engine.store import RunStore, code_version
from repro.engine.sweeps import RunRequest
from repro.obs.events import EventRecorder

__all__ = [
    "FabricConfig",
    "FabricWorker",
    "campaign_status",
    "enqueue_campaign",
    "resume_campaign",
    "run_workers",
    "spawn_workers",
    "worker_name",
]

#: Default campaign name when none is given.
DEFAULT_CAMPAIGN = "default"


@dataclass(frozen=True)
class FabricConfig:
    """One campaign's worker knobs — a plain value, picklable for
    spawned worker processes.

    ``store`` is resolved to an absolute ``scheme://path`` URL at
    construction so every worker opens the same file whatever its CWD.
    ``lease_ttl`` must comfortably exceed ``heartbeat_interval``
    (default: a third of the TTL) — a worker that misses two beats is
    presumed dead and loses its lease to the reaper.
    """

    store: str
    campaign: str = DEFAULT_CAMPAIGN
    lease_ttl: float = 30.0
    heartbeat_interval: Optional[float] = None
    poll_interval: float = 0.5
    reap_interval: Optional[float] = None
    task_timeout: Optional[float] = None
    retry_backoff: float = 0.25
    #: Lease generations before a task is poisoned: a task that has
    #: been claimed this many times and never settled is recorded as a
    #: failed run instead of crashing every worker that touches it.
    max_task_attempts: int = 5
    isolate: bool = True
    #: Keep polling after the queue drains (a standing worker fleet)
    #: instead of exiting when no work remains.
    forever: bool = False
    events_dir: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "store", resolve_store_url(self.store))
        if self.lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {self.lease_ttl}")
        if self.max_task_attempts < 1:
            raise ValueError(
                f"max_task_attempts must be >= 1, got "
                f"{self.max_task_attempts}")
        beat = self.beat_interval
        if beat >= self.lease_ttl:
            raise ValueError(
                f"heartbeat_interval {beat} must be < lease_ttl "
                f"{self.lease_ttl}; a lease must outlive its renewal")

    @property
    def beat_interval(self) -> float:
        return (self.heartbeat_interval if self.heartbeat_interval is not None
                else self.lease_ttl / 3.0)

    @property
    def reap_every(self) -> float:
        return (self.reap_interval if self.reap_interval is not None
                else self.lease_ttl)


def worker_name(suffix: Optional[str] = None) -> str:
    """A lease-owner id unique across hosts and processes."""
    base = f"{socket.gethostname()}-{os.getpid()}"
    return f"{base}-{suffix}" if suffix else base


def heartbeat_jitter(interval: float, task: QueuedTask, beat: int) -> float:
    """Seconds until heartbeat ``beat`` (1-based) of one lease.

    Seeded-jitter in ``[0.75, 1.25) * interval``: the stream derives
    from ``hash((seq, attempts, beat))`` — an integer tuple, stable
    across processes and ``PYTHONHASHSEED`` — so renewal schedules are
    reproducible, yet workers that leased in the same instant do not
    hammer the store in lockstep.
    """
    rng = Random(hash((task.seq, task.attempts, beat)) & 0x7FFFFFFF)
    return interval * (0.75 + 0.5 * rng.random())


class FabricWorker:
    """One worker process' claim-execute-settle loop.

    Opens its own store connection (``config.store`` is a URL), runs
    until the campaign drains (or until SIGTERM / ``stop()``), and
    returns a summary dict.  Safe to run in-process for tests
    (``isolate=False`` keeps execution in this interpreter).
    """

    def __init__(self, config: FabricConfig, name: Optional[str] = None):
        self.config = config
        self.name = name or worker_name()
        self.events = EventRecorder(capacity=None)
        self._emit_lock = threading.Lock()
        self._stop = threading.Event()
        self._stop_reason = "drained"
        self.settled = 0
        self.failed = 0
        self.cached = 0
        self.leases_lost = 0

    # -- control ------------------------------------------------------

    def stop(self, reason: str = "stopped") -> None:
        """Request a graceful drain: finish the task in hand, settle
        it, then exit the loop without claiming more work."""
        self._stop_reason = reason
        self._stop.set()

    def _install_sigterm(self) -> object:
        previous = signal.getsignal(signal.SIGTERM)
        signal.signal(signal.SIGTERM,
                      lambda signum, frame: self.stop("sigterm"))
        return previous

    def _emit(self, kind: str, **data) -> None:
        # The heartbeat thread emits concurrently with the main loop;
        # EventRecorder is not thread-safe on its own.
        with self._emit_lock:
            self.events.emit(kind, **data)

    # -- the loop -----------------------------------------------------

    def run(self) -> dict:
        config = self.config
        previous_sigterm: object = None
        if threading.current_thread() is threading.main_thread():
            previous_sigterm = self._install_sigterm()
        self._emit("fabric.worker.start", worker=self.name,
                   store=config.store, campaign=config.campaign)
        store = RunStore(config.store)
        try:
            queue = TaskQueue(store)
            next_reap = 0.0
            while not self._stop.is_set():
                now = time.time()
                if now >= next_reap:
                    self._reap(queue, now)
                    next_reap = now + config.reap_every
                task = queue.claim(self.name, config.lease_ttl,
                                   campaign=config.campaign)
                if task is None:
                    if (not config.forever
                            and queue.outstanding(config.campaign) == 0):
                        break
                    self._stop.wait(config.poll_interval)
                    continue
                self._execute(store, queue, task)
        except BaseException:
            self._stop_reason = "error"
            raise
        finally:
            self._emit("fabric.worker.stop", worker=self.name,
                       reason=self._stop_reason, settled=self.settled,
                       failed=self.failed, leases_lost=self.leases_lost)
            store.close()
            if previous_sigterm is not None:
                signal.signal(signal.SIGTERM, previous_sigterm)
        return self.summary()

    def summary(self) -> dict:
        return {
            "worker": self.name,
            "reason": self._stop_reason,
            "settled": self.settled,
            "failed": self.failed,
            "cached": self.cached,
            "leases_lost": self.leases_lost,
            "events": self.write_events(),
        }

    def write_events(self) -> Optional[str]:
        if self.config.events_dir is None:
            return None
        path = os.path.join(self.config.events_dir,
                            f"{self.config.campaign}-{self.name}.jsonl")
        return str(self.events.write_jsonl(path))

    # -- per-task path ------------------------------------------------

    def _reap(self, queue: TaskQueue, now: float) -> None:
        for task in queue.reap(self.config.campaign, now=now):
            self._emit("fabric.task.reap", campaign=task.campaign,
                       task=task.task_hash, owner=task.lease_owner,
                       attempt=task.attempts)

    def _execute(self, store: RunStore, queue: TaskQueue,
                 task: QueuedTask) -> None:
        config = self.config
        request = task_request(task)
        self._emit("fabric.task.lease", campaign=task.campaign,
                   task=task.task_hash, worker=self.name,
                   attempt=task.attempts, deadline=task.lease_deadline)
        started = time.perf_counter()

        # Cache fast path: the run row may already exist — a hit from a
        # previous sweep, or a worker that crashed *after* writing the
        # row but *before* settling.  Either way the work is done.
        stored = store.get(task.task_hash)
        if stored is not None and stored.ok:
            outcome = queue.settle(task, self.name, result_status="ok")
            self._settled(task, "settled", outcome, cached=True,
                          run_attempts=stored.attempts, started=started)
            return

        # Poison guard: claiming is what increments ``attempts``, so a
        # task seen this many times took down every worker that ran it
        # (or kept timing out).  Record the failure and stop the bleed.
        if task.attempts > config.max_task_attempts:
            error = (f"poisoned: task exceeded {config.max_task_attempts} "
                     f"lease attempts without settling")
            store.put(
                task.task_hash, driver=request.driver, n=request.n,
                f=request.f, seed=request.seed, params=request.params_dict(),
                version=code_version(), status="failed", error=error,
                attempts=task.attempts,
            )
            outcome = queue.settle(task, self.name, result_status="failed")
            self._settled(task, "failed", outcome, cached=False,
                          run_attempts=task.attempts, started=started)
            return

        beat_stop = threading.Event()
        beats = threading.Thread(
            target=self._heartbeat_loop, args=(queue, task, beat_stop),
            daemon=True, name=f"heartbeat-{task.task_hash[:8]}",
        )
        beats.start()
        try:
            result = execute_leased(
                request, timeout=config.task_timeout,
                retry_backoff=config.retry_backoff, isolate=config.isolate,
            )
        finally:
            beat_stop.set()
            beats.join()
        self._settle_result(store, queue, task, request, result, started)

    def _settle_result(self, store: RunStore, queue: TaskQueue,
                       task: QueuedTask, request: RunRequest,
                       result: RunResult, started: float) -> None:
        # Run row first, settlement second: a crash in between leaves
        # a re-claimable task whose recovery is a pure store read.  The
        # reverse order could settle a task whose result is lost.
        store.put(
            task.task_hash, driver=request.driver, n=request.n,
            f=request.f, seed=request.seed, params=request.params_dict(),
            version=code_version(), status=result.status, row=result.row,
            error=result.error, elapsed=result.elapsed,
            messages_per_round=result.messages_per_round,
            bits_per_round=result.bits_per_round, attempts=result.attempts,
        )
        outcome = queue.settle(task, self.name, result_status=result.status)
        state = "settled" if result.ok else "failed"
        self._settled(task, state, outcome, cached=False,
                      run_attempts=result.attempts, started=started)

    def _settled(self, task: QueuedTask, state: str, outcome: str,
                 *, cached: bool, run_attempts: int, started: float) -> None:
        if outcome == SETTLE_OK:
            if state == "settled":
                self.settled += 1
            else:
                self.failed += 1
            if cached:
                self.cached += 1
        elif outcome == SETTLE_LOST:
            self.leases_lost += 1
        self._emit("fabric.task.settle", campaign=task.campaign,
                   task=task.task_hash, worker=self.name, state=state,
                   outcome=outcome, cached=cached, run_attempts=run_attempts,
                   elapsed_s=round(time.perf_counter() - started, 6))

    def _heartbeat_loop(self, queue: TaskQueue, task: QueuedTask,
                        stop: threading.Event) -> None:
        beat = 0
        while True:
            beat += 1
            if stop.wait(heartbeat_jitter(self.config.beat_interval,
                                          task, beat)):
                return
            renewed = queue.heartbeat(task, self.name, self.config.lease_ttl)
            deadline = time.time() + self.config.lease_ttl
            self._emit("fabric.task.heartbeat", campaign=task.campaign,
                       task=task.task_hash, worker=self.name,
                       renewed=renewed, deadline=deadline)
            if not renewed:
                # The lease is gone — reaped after a stall, or the task
                # was settled from the store by a recovery worker.  The
                # execution continues (its result is idempotent under
                # the content hash) but settlement will be a no-op.
                return


# -- campaign operations ----------------------------------------------


def enqueue_campaign(store_url: str, campaign: str,
                     requests: Sequence[RunRequest],
                     events_dir: Optional[str] = None) -> tuple[int, int]:
    """Fan ``requests`` out as tasks; returns ``(total, new)``."""
    with RunStore(resolve_store_url(store_url)) as store:
        total, new = TaskQueue(store).enqueue(campaign, requests)
    if events_dir is not None:
        recorder = EventRecorder(capacity=None)
        recorder.emit("fabric.campaign.enqueue", campaign=campaign,
                      tasks=total, new=new)
        recorder.write_jsonl(
            os.path.join(events_dir, f"{campaign}-enqueue.jsonl"))
    return total, new


def reap_stale(store_url: str, campaign: Optional[str] = None, *,
               force: bool = False) -> list[QueuedTask]:
    """Return expired (or, with ``force``, all) leases to pending."""
    with RunStore(resolve_store_url(store_url)) as store:
        return TaskQueue(store).reap(campaign, force=force)


def _worker_entry(config: FabricConfig, suffix: str, connection) -> None:
    """Child-process entry point for :func:`spawn_workers`."""
    worker = FabricWorker(config, name=worker_name(suffix))
    try:
        summary = worker.run()
    except BaseException:  # noqa: BLE001 - report, then die loudly
        try:
            connection.send(worker.summary())
        finally:
            connection.close()
        raise
    connection.send(summary)
    connection.close()


def spawn_workers(config: FabricConfig, count: int,
                  ) -> list[tuple[multiprocessing.Process, object]]:
    """Start ``count`` worker processes; returns ``(process, pipe)``
    pairs whose pipes each yield one summary dict.

    Fork is preferred where available so drivers registered by the
    parent (tests, notebooks) exist in the children; the spawn fallback
    still resolves every built-in driver by name.  Workers are *not*
    daemons — a campaign should outlive a coordinator that exits early.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if count > 1:
        from repro.engine.backends import open_backend

        backend = open_backend(config.store)
        try:
            concurrent = backend.supports_concurrent_instances
        finally:
            backend.close()
        if not concurrent:
            raise RuntimeError(
                f"store {config.store} does not support concurrent "
                "worker processes (single-process engine); run with "
                "one worker or use a sqlite:// store")
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])
    pairs = []
    for index in range(count):
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_entry, args=(config, f"w{index}", sender),
            daemon=False, name=f"fabric-{config.campaign}-w{index}",
        )
        process.start()
        sender.close()
        pairs.append((process, receiver))
    return pairs


def run_workers(config: FabricConfig, count: int = 1) -> list[dict]:
    """Run ``count`` workers to completion; returns their summaries.

    ``count=1`` runs in-process (no fork, direct tracebacks); more
    workers run as independent processes, exactly as they would across
    hosts — each opens the store by URL and coordinates only through
    the queue.
    """
    if count == 1:
        return [FabricWorker(config).run()]
    summaries = []
    for process, receiver in spawn_workers(config, count):
        try:
            summaries.append(receiver.recv())
        except EOFError:
            summaries.append({
                "worker": process.name, "reason": "crashed",
                "settled": 0, "failed": 0, "cached": 0,
                "leases_lost": 0, "events": None,
            })
        finally:
            receiver.close()
            process.join()
    return summaries


def resume_campaign(config: FabricConfig, count: int = 1, *,
                    force_reap: bool = True) -> list[dict]:
    """Reap leases left by dead workers, then drain what remains.

    ``force_reap`` (the default) reclaims *all* leases, not just
    expired ones — safe because settlement is owner-guarded: if a
    leaseholder is in fact still alive, it simply loses the settle
    race and records a detected no-op.
    """
    reap_stale(config.store, config.campaign, force=force_reap)
    return run_workers(config, count)


def campaign_status(store_url: str,
                    campaign: Optional[str] = None) -> dict:
    """Queue counts plus live leases, for the status CLI and tests."""
    url = resolve_store_url(store_url)
    with RunStore(url) as store:
        queue = TaskQueue(store)
        counts = queue.counts(campaign)
        now = time.time()
        leases = [
            {
                "campaign": task.campaign,
                "task": task.task_hash,
                "owner": task.lease_owner,
                "attempts": task.attempts,
                "expires_in": (round(task.lease_deadline - now, 3)
                               if task.lease_deadline is not None else None),
            }
            for task in queue.tasks(campaign=campaign, state=TASK_LEASED)
        ]
    return {
        "store": url,
        "campaigns": counts,
        "leases": leases,
        "outstanding": sum(
            per["pending"] + per["leased"] for per in counts.values()),
    }
