"""Parallel sweep execution: process pool, crash isolation, caching.

:func:`run_requests` is the engine's single entry point.  Guarantees:

* **Deterministic order** — results come back in request order whatever
  the worker count, so parallel output is byte-identical to serial.
* **Crash isolation** — a driver that raises produces a ``failed``
  result (with the traceback) instead of aborting the sweep.  A wedged
  or crashed worker chunk is not written off wholesale: its tasks are
  resubmitted individually (one bounded retry, each in a fresh
  single-worker pool so one poisoned task cannot take down its chunk
  mates) and only the tasks that fail again are recorded as failed.
* **Caching** — with a :class:`~repro.engine.store.RunStore`, every
  ``ok`` run is persisted under its content hash and served from the
  store on the next invocation with zero executions; failed runs are
  recorded but retried.
* **Deduplication** — identical requests inside one call execute once.

``jobs=1`` runs everything in-process (no pool, no pickling); ``jobs>1``
uses a ``ProcessPoolExecutor`` with chunked task submission to amortize
dispatch overhead on the many-small-runs workloads typical of sweeps.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.engine.store import RunStore, code_version, run_hash
from repro.engine.sweeps import RunRequest, execute_request


@dataclass
class RunResult:
    """Outcome of one request: a fresh execution or a store hit."""

    request: RunRequest
    status: str  # "ok" | "failed"
    row: Optional[dict] = None
    error: Optional[str] = None
    elapsed: float = 0.0
    cached: bool = False
    messages_per_round: Optional[list[int]] = None
    bits_per_round: Optional[list[int]] = None
    #: Executions this result took: 0 for a store hit, 1 for a direct
    #: success/failure, 2 when the task went through the retry path.
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _run_one(request: RunRequest) -> RunResult:
    """Execute one request, converting any driver exception to ``failed``."""
    start = time.perf_counter()
    try:
        row, messages_per_round, bits_per_round = execute_request(request)
        return RunResult(
            request=request, status="ok", row=row,
            elapsed=time.perf_counter() - start,
            messages_per_round=messages_per_round,
            bits_per_round=bits_per_round,
        )
    except Exception:
        return RunResult(
            request=request, status="failed",
            error=traceback.format_exc(limit=16),
            elapsed=time.perf_counter() - start,
        )


def _worker(batch: list[tuple[int, RunRequest]]) -> list[tuple[int, RunResult]]:
    """Pool entry point: run one chunk of ``(index, request)`` tasks."""
    return [(index, _run_one(request)) for index, request in batch]


def _run_isolated(request: RunRequest,
                  timeout: Optional[float]) -> RunResult:
    """Retry one task in a fresh single-worker pool.

    Isolation is the point: if *this* task is the one that wedged or
    killed its original chunk's worker, only its own retry pool breaks.
    A hung retry is terminated at ``timeout`` so the sweep carries on.
    """
    pool = ProcessPoolExecutor(max_workers=1)
    try:
        future = pool.submit(_worker, [(0, request)])
        outcomes = dict(future.result(timeout=timeout))
        return outcomes[0]
    except FutureTimeoutError:
        for process in list(pool._processes.values()):
            process.terminate()
        return RunResult(
            request=request, status="failed",
            error=f"timed out: task exceeded {timeout:.1f}s on retry",
        )
    except Exception:  # BrokenProcessPool and kin
        return RunResult(
            request=request, status="failed",
            error=traceback.format_exc(limit=8),
        )
    finally:
        pool.shutdown(wait=True)


def _chunk(tasks: list, size: int) -> list[list]:
    return [tasks[start:start + size] for start in range(0, len(tasks), size)]


def default_chunksize(pending: int, jobs: int) -> int:
    """Roughly four chunks per worker: amortizes dispatch, keeps the
    pool load-balanced when per-run cost varies across ``n``."""
    return max(1, pending // max(1, jobs * 4))


def run_requests(
    requests: Sequence[RunRequest],
    *,
    jobs: int = 1,
    store: Optional[RunStore] = None,
    timeout: Optional[float] = None,
    chunksize: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    retry_backoff: float = 0.25,
) -> list[RunResult]:
    """Execute ``requests``; return results in request order.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` executes serially in-process.
    store:
        Optional run store.  ``ok`` hits are served without executing;
        fresh results (including failures) are written back.
    timeout:
        Per-task budget in seconds (parallel path only).  A chunk is
        allowed ``timeout * len(chunk)``; on expiry its unfinished tasks
        go to the individual retry pass with ``timeout`` each.
    chunksize:
        Tasks per pool submission; default :func:`default_chunksize`.
    progress:
        Optional ``progress(done, total)`` callback, called after the
        cache scan and after each completed chunk.
    retry_backoff:
        Seconds to wait before resubmitting the tasks of a timed-out or
        broken chunk individually (transient failures — OOM kills, a
        wedged sibling — often need a beat to clear).  Each task gets
        exactly one retry; a task that fails twice is recorded failed
        with both errors.
    """
    requests = list(requests)
    results: list[Optional[RunResult]] = [None] * len(requests)
    version = code_version()
    hashes = [
        run_hash(r.driver, r.n, r.f, r.seed, r.params, version)
        for r in requests
    ]

    # Cache scan: serve ok rows straight from the store.
    if store is not None:
        for index, hash_ in enumerate(hashes):
            stored = store.get(hash_)
            if stored is not None and stored.ok:
                messages_per_round, bits_per_round = store.ledger(hash_)
                results[index] = RunResult(
                    request=requests[index], status="ok", row=stored.row,
                    elapsed=stored.elapsed or 0.0, cached=True,
                    messages_per_round=messages_per_round or None,
                    bits_per_round=bits_per_round or None,
                    attempts=0,
                )

    pending = [i for i, result in enumerate(results) if result is None]

    # Dedup: identical requests (same content hash) execute once.
    leaders: dict[str, int] = {}
    followers: dict[int, list[int]] = {}
    unique_pending = []
    for index in pending:
        leader = leaders.setdefault(hashes[index], index)
        if leader == index:
            unique_pending.append(index)
        else:
            followers.setdefault(leader, []).append(index)

    total = len(requests)
    done = total - len(pending)
    if progress is not None:
        progress(done, total)

    def settle(index: int, result: RunResult) -> None:
        nonlocal done
        for target in (index, *followers.get(index, ())):
            results[target] = RunResult(
                request=requests[target], status=result.status,
                row=result.row, error=result.error, elapsed=result.elapsed,
                cached=False,
                messages_per_round=result.messages_per_round,
                bits_per_round=result.bits_per_round,
                attempts=result.attempts,
            )
            if store is not None:
                request = requests[target]
                store.put(
                    hashes[target],
                    driver=request.driver, n=request.n, f=request.f,
                    seed=request.seed, params=request.params_dict(),
                    version=version, status=result.status, row=result.row,
                    error=result.error, elapsed=result.elapsed,
                    messages_per_round=result.messages_per_round,
                    bits_per_round=result.bits_per_round,
                )
            done += 1

    if jobs <= 1 or len(unique_pending) <= 1:
        for index in unique_pending:
            settle(index, _run_one(requests[index]))
            if progress is not None:
                progress(done, total)
    elif unique_pending:
        size = chunksize or default_chunksize(len(unique_pending), jobs)
        chunks = _chunk([(i, requests[i]) for i in unique_pending], size)
        retry: list[tuple[int, RunRequest, str]] = []
        hung = False
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(chunks)))
        try:
            futures = [pool.submit(_worker, chunk) for chunk in chunks]
            for chunk, future in zip(chunks, futures):
                budget = None if timeout is None else timeout * len(chunk)
                try:
                    outcomes = dict(future.result(timeout=budget))
                except FutureTimeoutError:
                    future.cancel()
                    hung = True
                    first_error = (f"timed out: chunk exceeded {budget:.1f}s"
                                   f" ({len(chunk)} tasks)")
                    retry.extend((i, r, first_error) for i, r in chunk)
                    continue
                except Exception:  # BrokenProcessPool and kin
                    first_error = traceback.format_exc(limit=8)
                    retry.extend((i, r, first_error) for i, r in chunk)
                    continue
                for index, _request in chunk:
                    settle(index, outcomes[index])
                if progress is not None:
                    progress(done, total)
        finally:
            if hung:
                # A timed-out chunk may still be running; don't let
                # shutdown block on it.
                for process in list(pool._processes.values()):
                    process.terminate()
            pool.shutdown(wait=True)
        if retry and retry_backoff > 0:
            time.sleep(retry_backoff)
        for index, request, first_error in retry:
            result = _run_isolated(request, timeout)
            result.request = request
            result.attempts = 2
            if not result.ok:
                result.error = (
                    f"{result.error}\n--- first attempt ---\n{first_error}"
                )
            settle(index, result)
            if progress is not None:
                progress(done, total)

    return results  # type: ignore[return-value]
