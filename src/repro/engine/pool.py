"""Parallel sweep execution: process pool, crash isolation, caching.

:func:`run_requests` is the engine's single entry point.  Guarantees:

* **Deterministic order** — results come back in request order whatever
  the worker count, so parallel output is byte-identical to serial.
* **Crash isolation** — a driver that raises produces a ``failed``
  result (with the traceback) instead of aborting the sweep.  A wedged
  or crashed worker chunk is not written off wholesale: its tasks are
  resubmitted individually (one bounded retry, each in a fresh
  single-worker pool so one poisoned task cannot take down its chunk
  mates) and only the tasks that fail again are recorded as failed.
* **Caching** — with a :class:`~repro.engine.store.RunStore`, every
  ``ok`` run is persisted under its content hash and served from the
  store on the next invocation with zero executions; failed runs are
  recorded but retried.
* **Deduplication** — identical requests inside one call execute once.

``jobs=1`` runs everything in-process (no pool, no pickling); ``jobs>1``
uses a ``ProcessPoolExecutor`` with chunked task submission to amortize
dispatch overhead on the many-small-runs workloads typical of sweeps.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.engine.store import RunStore, code_version, run_hash
from repro.engine.sweeps import RunRequest, execute_request


@dataclass
class RunResult:
    """Outcome of one request: a fresh execution or a store hit."""

    request: RunRequest
    status: str  # "ok" | "failed"
    row: Optional[dict] = None
    error: Optional[str] = None
    elapsed: float = 0.0
    cached: bool = False
    messages_per_round: Optional[list[int]] = None
    bits_per_round: Optional[list[int]] = None
    #: Executions this result took: 0 for a store hit, 1 for a direct
    #: success/failure, 2 when the task went through the retry path.
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _run_one(request: RunRequest) -> RunResult:
    """Execute one request, converting any driver exception to ``failed``."""
    start = time.perf_counter()
    try:
        row, messages_per_round, bits_per_round = execute_request(request)
        return RunResult(
            request=request, status="ok", row=row,
            elapsed=time.perf_counter() - start,
            messages_per_round=messages_per_round,
            bits_per_round=bits_per_round,
        )
    except Exception:
        return RunResult(
            request=request, status="failed",
            error=traceback.format_exc(limit=16),
            elapsed=time.perf_counter() - start,
        )


def _worker(batch: list[tuple[int, RunRequest]]) -> list[tuple[int, RunResult]]:
    """Pool entry point: run one chunk of ``(index, request)`` tasks."""
    return [(index, _run_one(request)) for index, request in batch]


def _isolated_entry(connection, request: RunRequest) -> None:
    """Child-process entry point for :func:`_run_isolated`."""
    try:
        connection.send(_run_one(request))
    finally:
        connection.close()


def _run_isolated(request: RunRequest,
                  timeout: Optional[float]) -> RunResult:
    """Retry one task in a dedicated, killable worker process.

    Isolation is the point: if *this* task is the one that wedged or
    killed its original chunk's worker, only its own retry worker
    breaks.  The worker is a :class:`multiprocessing.Process` we own
    directly — unlike a ``ProcessPoolExecutor``, whose workers are
    reachable only through the private ``_processes`` attribute — so a
    hung retry is terminated at ``timeout`` through the public
    ``Process.terminate()``/``kill()`` API and the sweep carries on.
    """
    receiver, sender = multiprocessing.Pipe(duplex=False)
    worker = multiprocessing.Process(
        target=_isolated_entry, args=(sender, request), daemon=True,
    )
    worker.start()
    sender.close()
    try:
        if not receiver.poll(timeout):
            worker.terminate()
            worker.join(5.0)
            if worker.is_alive():  # pragma: no cover - SIGTERM ignored
                worker.kill()
                worker.join()
            return RunResult(
                request=request, status="failed",
                error=f"timed out: task exceeded {timeout:.1f}s on retry",
            )
        try:
            return receiver.recv()
        except EOFError:
            # The worker died before sending a result (OOM kill, hard
            # crash) — poll() saw the pipe close, not a payload.
            worker.join(5.0)
            return RunResult(
                request=request, status="failed",
                error=f"retry worker died with exit code {worker.exitcode}",
            )
    except Exception:
        return RunResult(
            request=request, status="failed",
            error=traceback.format_exc(limit=8),
        )
    finally:
        receiver.close()
        worker.join(5.0)
        if worker.is_alive():  # pragma: no cover - defensive teardown
            worker.kill()
            worker.join()


def retry_jitter_delay(base: float, request: RunRequest,
                       attempt: int = 1) -> float:
    """Seeded-jitter backoff before retrying ``request``.

    Reuses the serving layer's deterministic scheme
    (:func:`repro.serve.resilience.retry_delay`): exponential in the
    attempt with a multiplicative jitter drawn from
    ``hash((seed, n, f, attempt))`` — an integer tuple, so the stream
    is identical across processes and ``PYTHONHASHSEED`` values.  The
    jitter is the point: a fixed sleep marches every retrying worker
    back in lockstep onto whatever resource contention broke the first
    attempt, while a seeded spread decorrelates them *reproducibly*.
    """
    if base <= 0:
        return 0.0
    from repro.serve.resilience import ResiliencePolicy, retry_delay

    policy = ResiliencePolicy(backoff_base=base, backoff_factor=2.0,
                              backoff_jitter=0.5)
    return retry_delay(policy, request.seed, request.n, request.f, attempt)


def _chunk(tasks: list, size: int) -> list[list]:
    return [tasks[start:start + size] for start in range(0, len(tasks), size)]


def default_chunksize(pending: int, jobs: int) -> int:
    """Roughly four chunks per worker: amortizes dispatch, keeps the
    pool load-balanced when per-run cost varies across ``n``."""
    return max(1, pending // max(1, jobs * 4))


def run_requests(
    requests: Sequence[RunRequest],
    *,
    jobs: int = 1,
    store: Optional[RunStore] = None,
    timeout: Optional[float] = None,
    chunksize: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    retry_backoff: float = 0.25,
    observer: Optional[object] = None,
) -> list[RunResult]:
    """Execute ``requests``; return results in request order.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` executes serially in-process.
    store:
        Optional run store.  ``ok`` hits are served without executing;
        fresh results (including failures) are written back.
    timeout:
        Per-task budget in seconds (parallel path only).  A chunk is
        allowed ``timeout * len(chunk)``; on expiry its unfinished tasks
        go to the individual retry pass with ``timeout`` each.
    chunksize:
        Tasks per pool submission; default :func:`default_chunksize`.
    progress:
        Optional ``progress(done, total)`` callback, called after the
        cache scan and after each completed chunk.
    retry_backoff:
        Base seconds of the seeded-jitter backoff
        (:func:`retry_jitter_delay`) applied before resubmitting each
        task of a timed-out or broken chunk individually (transient
        failures — OOM kills, a wedged sibling — often need a beat to
        clear, and jitter keeps the retries from re-colliding).  Each
        task gets exactly one retry; a task that fails twice is
        recorded failed with both errors.
    observer:
        Optional :class:`repro.obs.Observer`.  When enabled, emits
        ``engine.*`` events (store hit/miss, chunk dispatch/timeout/
        broken, task retry/settle), accumulates per-driver wall time
        into ``observer.profiler`` as ``driver:<name>`` phases, and —
        when a ``store`` is also given — persists a telemetry row per
        freshly-executed request under its run hash.
    """
    requests = list(requests)
    obs = observer if (observer is not None
                       and getattr(observer, "enabled", False)) else None
    prof = getattr(observer, "profiler", None) if observer is not None else None
    results: list[Optional[RunResult]] = [None] * len(requests)
    version = code_version()
    hashes = [
        run_hash(r.driver, r.n, r.f, r.seed, r.params, version)
        for r in requests
    ]

    # Cache scan: serve ok rows straight from the store.
    if store is not None:
        for index, hash_ in enumerate(hashes):
            stored = store.get(hash_)
            if stored is not None and stored.ok:
                # ledger() is None for a run stored without ledgers and
                # ([], []) for a legitimately zero-round run — the two
                # must stay distinguishable across a cache round trip.
                ledger = store.ledger(hash_)
                messages_per_round, bits_per_round = (
                    ledger if ledger is not None else (None, None))
                results[index] = RunResult(
                    request=requests[index], status="ok", row=stored.row,
                    elapsed=stored.elapsed or 0.0, cached=True,
                    messages_per_round=messages_per_round,
                    bits_per_round=bits_per_round,
                    attempts=0,
                )
                if obs is not None:
                    obs.emit("engine.store.hit", driver=requests[index].driver,
                             run_hash=hash_)
            elif obs is not None:
                obs.emit("engine.store.miss", driver=requests[index].driver,
                         run_hash=hash_)

    pending = [i for i, result in enumerate(results) if result is None]

    # Dedup: identical requests (same content hash) execute once.
    leaders: dict[str, int] = {}
    followers: dict[int, list[int]] = {}
    unique_pending = []
    for index in pending:
        leader = leaders.setdefault(hashes[index], index)
        if leader == index:
            unique_pending.append(index)
        else:
            followers.setdefault(leader, []).append(index)

    total = len(requests)
    done = total - len(pending)
    if progress is not None:
        progress(done, total)

    def settle(index: int, result: RunResult) -> None:
        nonlocal done
        if prof is not None:
            prof.add(f"driver:{requests[index].driver}", result.elapsed)
        if obs is not None:
            obs.emit(
                "engine.task.settle", driver=requests[index].driver,
                status=result.status, attempts=result.attempts,
                elapsed_s=result.elapsed,
            )
        if store is not None:
            # One write per unique content hash: followers were
            # deduplicated *by* that hash, so re-putting per follower
            # would issue N identical row writes plus N redundant
            # ledger DELETE round trips.
            request = requests[index]
            store.put(
                hashes[index],
                driver=request.driver, n=request.n, f=request.f,
                seed=request.seed, params=request.params_dict(),
                version=version, status=result.status, row=result.row,
                error=result.error, elapsed=result.elapsed,
                messages_per_round=result.messages_per_round,
                bits_per_round=result.bits_per_round,
                attempts=result.attempts,
            )
            if obs is not None:
                store.put_telemetry(hashes[index], "run", {
                    "driver": request.driver, "n": request.n,
                    "f": request.f, "seed": request.seed,
                    "status": result.status,
                    "elapsed_s": result.elapsed,
                    "attempts": result.attempts,
                    "rounds": (len(result.messages_per_round)
                               if result.messages_per_round is not None
                               else None),
                })
        for target in (index, *followers.get(index, ())):
            results[target] = RunResult(
                request=requests[target], status=result.status,
                row=result.row, error=result.error, elapsed=result.elapsed,
                cached=False,
                messages_per_round=result.messages_per_round,
                bits_per_round=result.bits_per_round,
                attempts=result.attempts,
            )
            done += 1

    if jobs <= 1 or len(unique_pending) <= 1:
        for index in unique_pending:
            settle(index, _run_one(requests[index]))
            if progress is not None:
                progress(done, total)
    elif unique_pending:
        size = chunksize or default_chunksize(len(unique_pending), jobs)
        chunks = _chunk([(i, requests[i]) for i in unique_pending], size)
        retry: list[tuple[int, RunRequest, str]] = []
        hung = False
        # Snapshot our pre-existing children so the hung-pool cleanup
        # below can tell the executor's workers apart from unrelated
        # processes (e.g. a caller's own multiprocessing children)
        # without reaching into the executor's private ``_processes``.
        preexisting = {child.pid for child in multiprocessing.active_children()}
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(chunks)))
        try:
            futures = [pool.submit(_worker, chunk) for chunk in chunks]
            if obs is not None:
                obs.emit("engine.chunk.dispatch", chunks=len(chunks),
                         chunksize=size, jobs=min(jobs, len(chunks)))
            for chunk, future in zip(chunks, futures):
                budget = None if timeout is None else timeout * len(chunk)
                try:
                    outcomes = dict(future.result(timeout=budget))
                except FutureTimeoutError:
                    future.cancel()
                    hung = True
                    first_error = (f"timed out: chunk exceeded {budget:.1f}s"
                                   f" ({len(chunk)} tasks)")
                    retry.extend((i, r, first_error) for i, r in chunk)
                    if obs is not None:
                        obs.emit("engine.chunk.timeout", tasks=len(chunk),
                                 budget_s=budget)
                    continue
                except Exception:  # BrokenProcessPool and kin
                    first_error = traceback.format_exc(limit=8)
                    retry.extend((i, r, first_error) for i, r in chunk)
                    if obs is not None:
                        obs.emit("engine.chunk.broken", tasks=len(chunk))
                    continue
                for index, _request in chunk:
                    settle(index, outcomes[index])
                if progress is not None:
                    progress(done, total)
        finally:
            if hung:
                # A timed-out chunk may still be running; don't let
                # shutdown block on it.  cancel_futures drops queued
                # work, then terminating the executor's surviving
                # workers (the active children we did not have before
                # creating the pool) unsticks the wedged chunk.
                pool.shutdown(wait=False, cancel_futures=True)
                for child in multiprocessing.active_children():
                    if child.pid not in preexisting:
                        child.terminate()
            else:
                pool.shutdown(wait=True)
        for index, request, first_error in retry:
            delay = retry_jitter_delay(retry_backoff, request)
            if delay > 0:
                time.sleep(delay)
            if obs is not None:
                obs.emit("engine.task.retry", driver=request.driver,
                         n=request.n, seed=request.seed)
            result = _run_isolated(request, timeout)
            result.request = request
            result.attempts = 2
            if not result.ok:
                result.error = (
                    f"{result.error}\n--- first attempt ---\n{first_error}"
                )
            settle(index, result)
            if progress is not None:
                progress(done, total)

    return results  # type: ignore[return-value]


def execute_leased(
    request: RunRequest,
    *,
    timeout: Optional[float] = None,
    retry_backoff: float = 0.25,
    isolate: bool = True,
) -> RunResult:
    """Execute one *leased* request for a fabric worker.

    The single-task analogue of :func:`run_requests`' execute path,
    with the same taxonomy: crash isolation in an owned, killable
    child process (``isolate=True``), one seeded-jitter retry, and a
    concatenated error trail when both attempts fail.  ``isolate=False``
    runs in-process — for tests and for workers that are themselves
    already expendable processes.
    """
    runner = ((lambda: _run_isolated(request, timeout)) if isolate
              else (lambda: _run_one(request)))
    result = runner()
    result.request = request
    if result.ok:
        return result
    first_error = result.error
    delay = retry_jitter_delay(retry_backoff, request)
    if delay > 0:
        time.sleep(delay)
    result = runner()
    result.request = request
    result.attempts = 2
    if not result.ok:
        result.error = (
            f"{result.error}\n--- first attempt ---\n{first_error}"
        )
    return result
