"""Parallel sweep engine with a persistent, content-addressed run store.

Three layers, each usable on its own:

``repro.engine.store`` / ``repro.engine.backends``
    A content-addressed store (canonical hash of ``(driver, n, f,
    seed, params, code_version)``) persisting the summary row plus the
    per-round message/bit ledgers, behind a pluggable backend
    interface: stdlib SQLite (WAL, per-thread pooled connections) by
    default, DuckDB via ``duckdb://`` URLs for analytics.  Re-running
    a sweep whose runs are already stored performs zero executions,
    and ``repro.engine.export`` dumps runs/ledgers/telemetry as
    columnar Parquet/JSONL files for SQL-native frontier queries.

``repro.engine.sweeps``
    Declarative :class:`SweepSpec` / :class:`RunRequest` descriptions of
    sweeps and the named-driver registry that maps ``"crash"``,
    ``"byzantine"``, ``"obg"``, ``"gossip"``, ``"balls"``,
    ``"reelection"`` to the summary functions in
    :mod:`repro.analysis.experiments`.

``repro.engine.pool``
    :func:`run_requests` — the executor.  Serial in-process for
    ``jobs=1``; a ``ProcessPoolExecutor`` with chunked submission,
    per-task timeouts, and crash isolation for ``jobs>1``.  Results come
    back in request order, so parallel output is byte-identical to
    serial.

``repro.engine.queue`` / ``repro.engine.fabric``
    The crash-resumable distributed layer: sweeps enqueued as leasable
    tasks in the store's ``tasks`` table, drained by independent
    worker processes with heartbeat renewal, a stale-lease reaper, and
    at-most-once settlement into the ``runs`` table.  ``python -m
    repro fabric enqueue|work|status|resume`` is the CLI.

The CLI front ends are ``python -m repro sweep`` and
``python -m repro runs``; ``benchmarks/report.py`` routes every
protocol execution through this engine.
"""

from repro.engine.backends import (
    QueuedTask,
    StoreBackend,
    available_backend_schemes,
    open_backend,
    parse_store_url,
    resolve_store_url,
)
from repro.engine.export import export_store
from repro.engine.fabric import (
    FabricConfig,
    FabricWorker,
    campaign_status,
    enqueue_campaign,
    resume_campaign,
    run_workers,
)
from repro.engine.pool import RunResult, execute_leased, run_requests
from repro.engine.queue import TaskQueue
from repro.engine.store import (
    RunStore,
    StoredRun,
    code_version,
    default_store_path,
    run_hash,
)
from repro.engine.sweeps import (
    DRIVERS,
    RunRequest,
    SweepSpec,
    driver_names,
    evaluate_f,
    execute_request,
    register_driver,
    table1_requests,
)

__all__ = [
    "DRIVERS",
    "FabricConfig",
    "FabricWorker",
    "QueuedTask",
    "RunRequest",
    "RunResult",
    "RunStore",
    "StoreBackend",
    "StoredRun",
    "SweepSpec",
    "TaskQueue",
    "available_backend_schemes",
    "campaign_status",
    "code_version",
    "default_store_path",
    "driver_names",
    "enqueue_campaign",
    "evaluate_f",
    "execute_leased",
    "execute_request",
    "export_store",
    "open_backend",
    "parse_store_url",
    "register_driver",
    "resolve_store_url",
    "resume_campaign",
    "run_hash",
    "run_requests",
    "run_workers",
    "table1_requests",
]
