"""Parallel sweep engine with a persistent, content-addressed run store.

Three layers, each usable on its own:

``repro.engine.store``
    A SQLite-backed (stdlib ``sqlite3``, WAL mode) store that
    content-addresses every protocol execution by a canonical hash of
    ``(driver, n, f, seed, params, code_version)`` and persists the
    summary row plus the per-round message/bit ledgers.  Re-running a
    sweep whose runs are already stored performs zero executions.

``repro.engine.sweeps``
    Declarative :class:`SweepSpec` / :class:`RunRequest` descriptions of
    sweeps and the named-driver registry that maps ``"crash"``,
    ``"byzantine"``, ``"obg"``, ``"gossip"``, ``"balls"``,
    ``"reelection"`` to the summary functions in
    :mod:`repro.analysis.experiments`.

``repro.engine.pool``
    :func:`run_requests` — the executor.  Serial in-process for
    ``jobs=1``; a ``ProcessPoolExecutor`` with chunked submission,
    per-task timeouts, and crash isolation for ``jobs>1``.  Results come
    back in request order, so parallel output is byte-identical to
    serial.

The CLI front ends are ``python -m repro sweep`` and
``python -m repro runs``; ``benchmarks/report.py`` routes every
protocol execution through this engine.
"""

from repro.engine.pool import RunResult, run_requests
from repro.engine.store import RunStore, code_version, default_store_path, run_hash
from repro.engine.sweeps import (
    DRIVERS,
    RunRequest,
    SweepSpec,
    driver_names,
    evaluate_f,
    execute_request,
    register_driver,
    table1_requests,
)

__all__ = [
    "DRIVERS",
    "RunRequest",
    "RunResult",
    "RunStore",
    "SweepSpec",
    "code_version",
    "default_store_path",
    "driver_names",
    "evaluate_f",
    "execute_request",
    "register_driver",
    "run_hash",
    "run_requests",
    "table1_requests",
]
