"""The fabric's work queue: run requests as leasable, settleable tasks.

:class:`TaskQueue` is a thin, typed facade over the ``tasks`` table of
a run store backend (see :mod:`repro.engine.backends.base` for the
portable SQL and the atomicity contract).  It owns the translation
between engine values and queue rows:

* **Enqueue** — a :class:`~repro.engine.sweeps.RunRequest` becomes a
  task keyed by its *content hash* (the same hash the ``runs`` table
  uses), with the request serialized as a JSON spec.  Using the run
  hash as the task key makes settlement at-most-once structurally:
  however many workers race on a task, they all resolve to the same
  single ``runs`` row, and re-enqueueing a campaign is a no-op for
  every task already known.
* **Lease** — ``claim`` atomically takes the first claimable task
  (``pending``, or ``leased`` past its deadline — its worker crashed)
  and stamps owner + deadline; ``heartbeat`` extends a live lease and
  reports honestly when the lease was lost to the reaper.
* **Settle** — only the live lease owner transitions the task to
  ``settled``/``failed``; everyone else gets a detected no-op verdict
  (see the ``SETTLE_*`` constants).

The queue deliberately knows nothing about *executing* tasks — that is
:mod:`repro.engine.fabric` — so it can be driven directly by tests and
by the status CLI.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.engine.backends.base import (
    TASK_FAILED,
    TASK_LEASED,
    TASK_PENDING,
    TASK_SETTLED,
    QueuedTask,
)
from repro.engine.store import RunStore, code_version, run_hash
from repro.engine.sweeps import RunRequest, request_from_spec, request_to_spec

__all__ = ["TaskQueue", "task_request"]


def task_request(task: QueuedTask) -> RunRequest:
    """Rebuild the run request a queued task stands for."""
    return request_from_spec(task.spec)


class TaskQueue:
    """Typed queue operations over one run store's ``tasks`` table."""

    def __init__(self, store: RunStore):
        self.store = store
        self._backend = store.backend

    # -- enqueue ------------------------------------------------------

    def enqueue(self, campaign: str,
                requests: Sequence[RunRequest]) -> tuple[int, int]:
        """Fan requests out as pending tasks; returns ``(total, new)``.

        Task hashes are content hashes under the *current* code
        version, so editing any source enqueues fresh work instead of
        colliding with stale tasks.  Duplicate requests inside one
        call collapse to one task; re-enqueueing is idempotent.
        """
        version = code_version()
        rows: list[tuple[str, int, dict]] = []
        seen: set[str] = set()
        for request in requests:
            hash_ = run_hash(request.driver, request.n, request.f,
                             request.seed, request.params, version)
            if hash_ in seen:
                continue
            seen.add(hash_)
            rows.append((hash_, len(rows), request_to_spec(request)))
        new = self._backend.enqueue_tasks(campaign, rows)
        return len(rows), new

    # -- lease / settle ----------------------------------------------

    def claim(self, owner: str, lease_ttl: float,
              campaign: Optional[str] = None,
              now: Optional[float] = None) -> Optional[QueuedTask]:
        now = time.time() if now is None else now
        return self._backend.claim_task(
            owner, now, now + lease_ttl, campaign=campaign)

    def heartbeat(self, task: QueuedTask, owner: str, lease_ttl: float,
                  now: Optional[float] = None) -> bool:
        now = time.time() if now is None else now
        return self._backend.heartbeat_task(
            task.campaign, task.task_hash, owner, now + lease_ttl)

    def settle(self, task: QueuedTask, owner: str, *,
               result_status: Optional[str],
               now: Optional[float] = None) -> str:
        """Settle the caller's lease from the run outcome.

        ``result_status == "ok"`` settles the task; anything else
        (including ``None`` for a run that never produced a result)
        fails it.  Returns the backend's ``SETTLE_*`` verdict.
        """
        state = TASK_SETTLED if result_status == "ok" else TASK_FAILED
        return self._backend.settle_task(
            task.campaign, task.task_hash, owner, state, result_status,
            time.time() if now is None else now)

    def reap(self, campaign: Optional[str] = None, *, force: bool = False,
             now: Optional[float] = None) -> list[QueuedTask]:
        return self._backend.reap_tasks(
            time.time() if now is None else now, campaign=campaign,
            force=force)

    # -- introspection ------------------------------------------------

    def get(self, campaign: str, task_hash: str) -> Optional[QueuedTask]:
        return self._backend.get_task(campaign, task_hash)

    def tasks(self, *, campaign: Optional[str] = None,
              state: Optional[str] = None,
              limit: Optional[int] = None) -> list[QueuedTask]:
        return self._backend.list_tasks(
            campaign=campaign, state=state, limit=limit)

    def counts(self, campaign: Optional[str] = None,
               ) -> dict[str, dict[str, int]]:
        return self._backend.task_counts(campaign)

    def campaigns(self) -> list[str]:
        return sorted(self.counts())

    def outstanding(self, campaign: Optional[str] = None) -> int:
        """Tasks not yet settled or failed (pending + leased)."""
        return sum(
            per[TASK_PENDING] + per[TASK_LEASED]
            for per in self.counts(campaign).values()
        )
