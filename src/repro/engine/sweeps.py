"""Declarative sweep specifications and the named-driver registry.

A *driver* is a named summary function ``fn(n, f, seed, **params)``
returning one flat dict row — exactly the contract of the
``*_run_summary`` functions in :mod:`repro.analysis.experiments`.
Naming drivers (rather than passing callables) keeps every run request
picklable for the process pool and hashable for the run store.

A :class:`RunRequest` is one execution; a :class:`SweepSpec` is the
cross product ``n_values x seeds`` with a fault budget given as an
expression in ``n`` (``"0"``, ``"n//8"``, ``"max(1, n//4)"``), so a
whole sweep is a small, serializable value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional

#: Registered drivers: name -> summary function.  Populated lazily from
#: :mod:`repro.analysis.experiments` to avoid an import cycle; extend
#: with :func:`register_driver`.
DRIVERS: dict[str, Callable[..., dict]] = {}

_SCALARS = (str, int, float, bool, type(None))


def register_driver(name: str, fn: Callable[..., dict]) -> Callable[..., dict]:
    """Register (or override) a named driver.  Returns ``fn``."""
    DRIVERS[name] = fn
    return fn


def _load_default_drivers() -> None:
    if "crash" in DRIVERS:
        return
    from repro.analysis import experiments

    DRIVERS.setdefault("crash", experiments.crash_run_summary)
    DRIVERS.setdefault("byzantine", experiments.byzantine_run_summary)
    DRIVERS.setdefault("obg", experiments.obg_run_summary)
    DRIVERS.setdefault("gossip", experiments.gossip_run_summary)
    DRIVERS.setdefault("balls", experiments.balls_run_summary)
    DRIVERS.setdefault("reelection", experiments.reelection_run_summary)

    from repro.falsify import campaign

    DRIVERS.setdefault("falsify", campaign.falsify_run_summary)

    from repro.faults import driver as faults_driver

    DRIVERS.setdefault("faults", faults_driver.faults_run_summary)

    from repro.serve import driver as serve_driver

    DRIVERS.setdefault("serve", serve_driver.serve_run_summary)


def driver_names() -> list[str]:
    _load_default_drivers()
    return sorted(DRIVERS)


def resolve_driver(name: str) -> Callable[..., dict]:
    _load_default_drivers()
    try:
        return DRIVERS[name]
    except KeyError:
        raise KeyError(
            f"unknown driver {name!r}; known: {', '.join(sorted(DRIVERS))}"
        ) from None


def canonical_params(params: Mapping[str, object]) -> tuple:
    """Sorted ``(key, value)`` pairs, JSON scalars only.

    Restricting values to scalars is what makes a request hashable,
    picklable, and byte-stable across sessions; richer configuration
    belongs in a dedicated driver.
    """
    for key, value in params.items():
        if not isinstance(value, _SCALARS):
            raise TypeError(
                f"sweep parameter {key}={value!r} is not a JSON scalar; "
                "register a dedicated driver for structured configuration"
            )
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class RunRequest:
    """One content-addressable protocol execution."""

    driver: str
    n: int
    f: int
    seed: int
    params: tuple = ()

    @classmethod
    def make(cls, driver: str, n: int, f: int, seed: int,
             **params) -> "RunRequest":
        return cls(driver, n, f, seed, canonical_params(params))

    def params_dict(self) -> dict:
        return dict(self.params)

    def describe(self) -> str:
        extra = "".join(f", {k}={v!r}" for k, v in self.params)
        return f"{self.driver}(n={self.n}, f={self.f}, seed={self.seed}{extra})"


def request_to_spec(request: RunRequest) -> dict:
    """One request as a plain JSON-ready dict (the fabric task spec)."""
    return {
        "driver": request.driver,
        "n": request.n,
        "f": request.f,
        "seed": request.seed,
        "params": request.params_dict(),
    }


def request_from_spec(spec: Mapping[str, object]) -> RunRequest:
    """Rebuild a :class:`RunRequest` from :func:`request_to_spec` output.

    Round-trips through ``make`` so the params are re-canonicalized —
    a hand-written spec with unsorted keys still produces the same
    content hash as the original request.
    """
    return RunRequest.make(
        str(spec["driver"]), int(spec["n"]), int(spec["f"]),
        int(spec["seed"]), **dict(spec.get("params") or {}),
    )


#: Names usable inside ``--f`` expressions, besides ``n`` itself.
F_EXPRESSION_NAMES = {
    "ceil": math.ceil,
    "floor": math.floor,
    "log2": math.log2,
    "sqrt": math.sqrt,
    "min": min,
    "max": max,
    "int": int,
}


def evaluate_f(expression: str, n: int) -> int:
    """Evaluate a fault-budget expression such as ``"n//8"`` at one ``n``."""
    try:
        value = eval(  # noqa: S307 - restricted namespace, no builtins
            compile(expression, "<f-expression>", "eval"),
            {"__builtins__": {}},
            {"n": n, **F_EXPRESSION_NAMES},
        )
    except Exception as error:
        raise ValueError(
            f"bad fault-budget expression {expression!r}: {error}"
        ) from error
    return int(value)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: ``driver`` over ``n_values x seeds``.

    ``f`` is an expression in ``n`` so the whole spec stays a plain
    serializable value; ``params`` are extra driver keywords (JSON
    scalars, canonicalized).
    """

    driver: str
    n_values: tuple[int, ...]
    seeds: tuple[int, ...]
    f: str = "0"
    params: tuple = ()

    @classmethod
    def make(cls, driver: str, n_values: Iterable[int], seeds: Iterable[int],
             f: str = "0", **params) -> "SweepSpec":
        return cls(driver, tuple(n_values), tuple(seeds), f,
                   canonical_params(params))

    def requests(self) -> list[RunRequest]:
        return [
            RunRequest(self.driver, n, evaluate_f(self.f, n), seed,
                       self.params)
            for n in self.n_values
            for seed in self.seeds
        ]


def table1_requests(n: int, f: int, seed: int = 0) -> list[RunRequest]:
    """The six measured rows of Table 1 as engine requests.

    The Byzantine rows use ``f_byz = min(f, 2)`` corrupted nodes: each
    withholder inflates the divide-and-conquer work by ``log2 N``
    segments (Lemma 3.10), so a small ``f`` keeps the table affordable
    while still exercising the adversarial path; the dedicated F5/F9
    sweeps measure the growth in ``f`` itself.
    """
    f_byz = min(f, 2, max((n - 1) // 3, 0))
    return [
        RunRequest.make("crash", n, f, seed),
        RunRequest.make("obg", n, f, seed),
        RunRequest.make("balls", n, f, seed),
        RunRequest.make("gossip", n, f, seed),
        RunRequest.make("byzantine", n, f_byz, seed, strategy="withholder"),
        RunRequest.make("byzantine", n, f_byz, seed, strategy="withholder",
                        full_committee=True),
    ]


#: Keys the engine strips off a driver row into the ledgers table.
LEDGER_KEYS = ("messages_per_round", "bits_per_round")


def execute_request(
    request: RunRequest,
) -> tuple[dict, Optional[list[int]], Optional[list[int]]]:
    """Run one request in-process.

    Returns ``(row, messages_per_round, bits_per_round)``; the ledger
    lists are popped off the row so table columns stay scalar.
    """
    driver = resolve_driver(request.driver)
    row = driver(request.n, request.f, request.seed, include_rounds=True,
                 **request.params_dict())
    messages_per_round = row.pop("messages_per_round", None)
    bits_per_round = row.pop("bits_per_round", None)
    return row, messages_per_round, bits_per_round
