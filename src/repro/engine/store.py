"""Persistent, content-addressed run store on stdlib SQLite.

Every protocol execution is identified by a canonical SHA-256 hash of
``(driver, n, f, seed, params, code_version)``.  ``params`` is the
driver's keyword configuration restricted to JSON scalars so the key is
reproducible across processes and sessions; ``code_version`` is a hash
of the ``repro`` package sources, so editing any algorithm or the cost
model automatically invalidates old measurements instead of silently
serving stale rows.

Two tables:

``runs``
    One row per execution: the identity fields, status (``ok`` or
    ``failed``), the JSON summary row, the error text for failed runs,
    and wall-clock timing.

``ledgers``
    The per-round ``(messages, bits)`` ledger of each stored run —
    the raw material for round-resolved plots without re-executing.

``telemetry``
    Opt-in observability rows keyed by run hash: one ``(key, JSON
    value)`` pair per aspect (execution timing, retry counts, phase
    profiles).  Written only when a sweep runs with an observer
    attached (see :mod:`repro.obs`); ``python -m repro obs report``
    aggregates it.

The store is written only by the coordinating process (workers return
results over the pool), so WAL mode is plenty for concurrent *readers*
such as a ``python -m repro runs`` session watching a sweep fill in.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Optional, Sequence

#: Environment variable overriding the default store location.
STORE_ENV = "REPRO_STORE"

#: Default store path, relative to the current working directory.
DEFAULT_STORE = ".repro/runs.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    hash         TEXT PRIMARY KEY,
    driver       TEXT NOT NULL,
    n            INTEGER NOT NULL,
    f            INTEGER NOT NULL,
    seed         INTEGER NOT NULL,
    params       TEXT NOT NULL,
    code_version TEXT NOT NULL,
    status       TEXT NOT NULL CHECK (status IN ('ok', 'failed')),
    row          TEXT,
    error        TEXT,
    elapsed      REAL,
    created      REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_driver ON runs (driver, n, f, seed);
CREATE INDEX IF NOT EXISTS idx_runs_created ON runs (created);
CREATE TABLE IF NOT EXISTS ledgers (
    run_hash TEXT NOT NULL REFERENCES runs (hash) ON DELETE CASCADE,
    round    INTEGER NOT NULL,
    messages INTEGER NOT NULL,
    bits     INTEGER NOT NULL,
    PRIMARY KEY (run_hash, round)
);
CREATE TABLE IF NOT EXISTS telemetry (
    run_hash TEXT NOT NULL,
    key      TEXT NOT NULL,
    value    TEXT NOT NULL,
    created  REAL NOT NULL,
    PRIMARY KEY (run_hash, key)
);
"""


def default_store_path() -> Path:
    """``$REPRO_STORE`` if set, else ``.repro/runs.sqlite`` under cwd."""
    return Path(os.environ.get(STORE_ENV, DEFAULT_STORE))


@lru_cache(maxsize=1)
def code_version() -> str:
    """A short hash of every ``.py`` source in the ``repro`` package.

    Any change to the algorithms, the cost model, or the drivers yields
    a new version, so cached measurements never outlive the code that
    produced them.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def canonical_json(value: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def run_hash(
    driver: str,
    n: int,
    f: int,
    seed: int,
    params: object = (),
    version: Optional[str] = None,
) -> str:
    """The content address of one execution."""
    key = canonical_json(
        {
            "driver": driver,
            "n": n,
            "f": f,
            "seed": seed,
            "params": dict(params) if not isinstance(params, dict) else params,
            "code_version": version if version is not None else code_version(),
        }
    )
    return hashlib.sha256(key.encode()).hexdigest()


@dataclass
class StoredRun:
    """One persisted execution, decoded from the ``runs`` table."""

    hash: str
    driver: str
    n: int
    f: int
    seed: int
    params: dict
    code_version: str
    status: str
    row: Optional[dict]
    error: Optional[str]
    elapsed: Optional[float]
    created: float

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class RunStore:
    """SQLite-backed run cache.  Open with a path; close when done.

    Usable as a context manager::

        with RunStore(".repro/runs.sqlite") as store:
            store.get(some_hash)
    """

    def __init__(self, path: os.PathLike | str):
        self.path = Path(path)
        if str(self.path) != ":memory:":
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writes -------------------------------------------------------

    def put(
        self,
        hash_: str,
        *,
        driver: str,
        n: int,
        f: int,
        seed: int,
        params: object,
        version: str,
        status: str,
        row: Optional[dict] = None,
        error: Optional[str] = None,
        elapsed: Optional[float] = None,
        messages_per_round: Optional[Sequence[int]] = None,
        bits_per_round: Optional[Sequence[int]] = None,
    ) -> None:
        """Insert or replace one run (and its per-round ledgers)."""
        params_map = dict(params) if not isinstance(params, dict) else params
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO runs"
                " (hash, driver, n, f, seed, params, code_version,"
                "  status, row, error, elapsed, created)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    hash_, driver, n, f, seed,
                    canonical_json(params_map), version, status,
                    # Row keys keep insertion order (not canonical_json):
                    # table columns come from the first row, so a cached
                    # row must render byte-identically to a fresh one.
                    json.dumps(row) if row is not None else None,
                    error, elapsed, time.time(),
                ),
            )
            self._conn.execute("DELETE FROM ledgers WHERE run_hash = ?",
                               (hash_,))
            if messages_per_round is not None and bits_per_round is not None:
                self._conn.executemany(
                    "INSERT INTO ledgers (run_hash, round, messages, bits)"
                    " VALUES (?, ?, ?, ?)",
                    [
                        (hash_, round_no + 1, messages, bits)
                        for round_no, (messages, bits) in enumerate(
                            zip(messages_per_round, bits_per_round)
                        )
                    ],
                )

    def put_telemetry(self, hash_: str, key: str, value: object) -> None:
        """Attach one observability row to a run hash.

        ``value`` is any JSON-serializable object; re-putting the same
        ``(hash, key)`` replaces the previous value.
        """
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO telemetry"
                " (run_hash, key, value, created) VALUES (?, ?, ?, ?)",
                (hash_, key, canonical_json(value), time.time()),
            )

    def delete(self, hash_: str) -> None:
        with self._conn:
            self._conn.execute("DELETE FROM ledgers WHERE run_hash = ?",
                               (hash_,))
            self._conn.execute("DELETE FROM telemetry WHERE run_hash = ?",
                               (hash_,))
            self._conn.execute("DELETE FROM runs WHERE hash = ?", (hash_,))

    def clear(self) -> None:
        with self._conn:
            self._conn.execute("DELETE FROM ledgers")
            self._conn.execute("DELETE FROM telemetry")
            self._conn.execute("DELETE FROM runs")

    # -- reads --------------------------------------------------------

    @staticmethod
    def _decode(record: tuple) -> StoredRun:
        (hash_, driver, n, f, seed, params, version, status, row, error,
         elapsed, created) = record
        return StoredRun(
            hash=hash_, driver=driver, n=n, f=f, seed=seed,
            params=json.loads(params), code_version=version, status=status,
            row=json.loads(row) if row is not None else None,
            error=error, elapsed=elapsed, created=created,
        )

    _COLUMNS = ("hash, driver, n, f, seed, params, code_version, status,"
                " row, error, elapsed, created")

    def get(self, hash_: str) -> Optional[StoredRun]:
        cursor = self._conn.execute(
            f"SELECT {self._COLUMNS} FROM runs WHERE hash = ?", (hash_,)
        )
        record = cursor.fetchone()
        return self._decode(record) if record else None

    def ledger(self, hash_: str) -> tuple[list[int], list[int]]:
        """``(messages_per_round, bits_per_round)`` of one stored run."""
        cursor = self._conn.execute(
            "SELECT messages, bits FROM ledgers WHERE run_hash = ?"
            " ORDER BY round", (hash_,)
        )
        records = cursor.fetchall()
        return ([m for m, _ in records], [b for _, b in records])

    def query(
        self,
        *,
        driver: Optional[str] = None,
        n: Optional[int] = None,
        f: Optional[int] = None,
        seed: Optional[int] = None,
        status: Optional[str] = None,
        current_version_only: bool = False,
        limit: Optional[int] = None,
    ) -> list[StoredRun]:
        """Stored runs matching the given filters, oldest first."""
        clauses, values = [], []
        for column, value in (("driver", driver), ("n", n), ("f", f),
                              ("seed", seed), ("status", status)):
            if value is not None:
                clauses.append(f"{column} = ?")
                values.append(value)
        if current_version_only:
            clauses.append("code_version = ?")
            values.append(code_version())
        sql = f"SELECT {self._COLUMNS} FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created, hash"
        if limit is not None:
            sql += " LIMIT ?"
            values.append(limit)
        return [self._decode(r) for r in self._conn.execute(sql, values)]

    def telemetry(self, hash_: str) -> dict:
        """All telemetry rows of one run, as ``{key: decoded value}``."""
        return {
            key: json.loads(value)
            for key, value in self._conn.execute(
                "SELECT key, value FROM telemetry WHERE run_hash = ?"
                " ORDER BY key", (hash_,)
            )
        }

    def telemetry_rows(
        self, *, key: Optional[str] = None, driver: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[str, str, dict]]:
        """``(run_hash, key, value)`` telemetry rows, oldest first.

        ``driver`` filters through the ``runs`` table; telemetry whose
        run row is gone still matches when ``driver`` is ``None``.
        """
        clauses, values = [], []
        sql = ("SELECT t.run_hash, t.key, t.value FROM telemetry t")
        if driver is not None:
            sql += " JOIN runs r ON r.hash = t.run_hash"
            clauses.append("r.driver = ?")
            values.append(driver)
        if key is not None:
            clauses.append("t.key = ?")
            values.append(key)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY t.created, t.run_hash, t.key"
        if limit is not None:
            sql += " LIMIT ?"
            values.append(limit)
        return [
            (hash_, key_, json.loads(value))
            for hash_, key_, value in self._conn.execute(sql, values)
        ]

    def stats(self) -> dict:
        """Aggregate counts for the CLI footer."""
        total, ok, failed = self._conn.execute(
            "SELECT COUNT(*),"
            " SUM(CASE WHEN status = 'ok' THEN 1 ELSE 0 END),"
            " SUM(CASE WHEN status = 'failed' THEN 1 ELSE 0 END)"
            " FROM runs"
        ).fetchone()
        drivers = [d for (d,) in self._conn.execute(
            "SELECT DISTINCT driver FROM runs ORDER BY driver")]
        return {
            "total": total or 0,
            "ok": ok or 0,
            "failed": failed or 0,
            "drivers": drivers,
            "path": str(self.path),
        }
