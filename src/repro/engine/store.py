"""Persistent, content-addressed run store — the backend facade.

Every protocol execution is identified by a canonical SHA-256 hash of
``(driver, n, f, seed, params, code_version)``.  ``params`` is the
driver's keyword configuration restricted to JSON scalars so the key is
reproducible across processes and sessions; ``code_version`` is a hash
of the ``repro`` package sources, so editing any algorithm or the cost
model automatically invalidates old measurements instead of silently
serving stale rows.

Three tables (identical across backends):

``runs``
    One row per execution: the identity fields, status (``ok`` or
    ``failed``), the JSON summary row, the error text for failed runs,
    wall-clock timing, and whether a per-round ledger was stored.

``ledgers``
    The per-round ``(messages, bits)`` ledger of each stored run —
    the raw material for round-resolved plots without re-executing.

``telemetry``
    Opt-in observability rows keyed by run hash: one ``(key, JSON
    value)`` pair per aspect (execution timing, retry counts, phase
    profiles).  Written only when a sweep runs with an observer
    attached (see :mod:`repro.obs`); ``python -m repro obs report``
    aggregates it.

Storage engines live in :mod:`repro.engine.backends`; this module
keeps the hashing/identity helpers and :class:`RunStore`, a thin
facade that resolves a path or ``scheme://path`` URL (``sqlite://``
default, ``duckdb://`` for analytics) to a backend and delegates the
whole :class:`~repro.engine.backends.base.StoreBackend` contract to
it.  The store is written only by the coordinating process (workers
return results over the pool); concurrent readers — another thread
via the per-thread connection pool, or for SQLite/WAL a whole other
process such as a ``python -m repro runs`` session watching a sweep
fill in — are first-class.
"""

from __future__ import annotations

import hashlib
import os
from functools import lru_cache
from pathlib import Path
from typing import Optional, Sequence

from repro.engine.backends import (
    StoreBackend,
    open_backend,
    parse_store_url,
    resolve_store_url,
)
from repro.engine.backends.base import StoredRun, canonical_json

__all__ = [
    "DEFAULT_STORE",
    "STORE_ENV",
    "RunStore",
    "StoredRun",
    "canonical_json",
    "code_version",
    "default_store_path",
    "run_hash",
]

#: Environment variable overriding the default store location; accepts
#: a bare path or a ``scheme://path`` URL.
STORE_ENV = "REPRO_STORE"

#: Default store path, relative to the current working directory.
DEFAULT_STORE = ".repro/runs.sqlite"


def default_store_path() -> str:
    """``$REPRO_STORE`` if set, else ``.repro/runs.sqlite`` under cwd.

    The value may be a ``scheme://path`` URL, so it is returned as a
    string — wrapping it in :class:`~pathlib.Path` would collapse the
    ``//``.
    """
    return os.environ.get(STORE_ENV, DEFAULT_STORE)


@lru_cache(maxsize=1)
def code_version() -> str:
    """A short hash of every ``.py`` source in the ``repro`` package.

    Any change to the algorithms, the cost model, or the drivers yields
    a new version, so cached measurements never outlive the code that
    produced them.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def run_hash(
    driver: str,
    n: int,
    f: int,
    seed: int,
    params: object = (),
    version: Optional[str] = None,
) -> str:
    """The content address of one execution."""
    key = canonical_json(
        {
            "driver": driver,
            "n": n,
            "f": f,
            "seed": seed,
            "params": dict(params) if not isinstance(params, dict) else params,
            "code_version": version if version is not None else code_version(),
        }
    )
    return hashlib.sha256(key.encode()).hexdigest()


class RunStore:
    """Run cache facade: open with a path or URL; close when done.

    ``RunStore(".repro/runs.sqlite")`` keeps the historical behaviour
    (SQLite, WAL); ``RunStore("duckdb://runs.duckdb")`` selects the
    analytics backend.  Usable as a context manager::

        with RunStore(".repro/runs.sqlite") as store:
            store.get(some_hash)

    An already-open :class:`~repro.engine.backends.StoreBackend` can be
    wrapped directly via ``backend=``.
    """

    def __init__(self, path: os.PathLike | str = DEFAULT_STORE,
                 backend: Optional[StoreBackend] = None):
        self._backend = open_backend(path) if backend is None else backend

    @property
    def path(self) -> Path:
        return self._backend.path

    @property
    def backend(self) -> StoreBackend:
        return self._backend

    @property
    def scheme(self) -> str:
        return self._backend.scheme

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- delegated contract -------------------------------------------

    def put(self, hash_: str, *, driver: str, n: int, f: int, seed: int,
            params: object, version: str, status: str,
            row: Optional[dict] = None, error: Optional[str] = None,
            elapsed: Optional[float] = None,
            messages_per_round: Optional[Sequence[int]] = None,
            bits_per_round: Optional[Sequence[int]] = None,
            attempts: int = 1) -> None:
        self._backend.put(
            hash_, driver=driver, n=n, f=f, seed=seed, params=params,
            version=version, status=status, row=row, error=error,
            elapsed=elapsed, messages_per_round=messages_per_round,
            bits_per_round=bits_per_round, attempts=attempts,
        )

    def put_telemetry(self, hash_: str, key: str, value: object) -> None:
        self._backend.put_telemetry(hash_, key, value)

    def delete(self, hash_: str) -> None:
        self._backend.delete(hash_)

    def clear(self) -> None:
        self._backend.clear()

    def get(self, hash_: str) -> Optional[StoredRun]:
        return self._backend.get(hash_)

    def ledger(self, hash_: str) -> Optional[tuple[list[int], list[int]]]:
        return self._backend.ledger(hash_)

    def query(self, **filters) -> list[StoredRun]:
        return self._backend.query(**filters)

    def telemetry(self, hash_: str) -> dict:
        return self._backend.telemetry(hash_)

    def telemetry_rows(self, **filters) -> list[tuple[str, str, dict]]:
        return self._backend.telemetry_rows(**filters)

    def stats(self) -> dict:
        return self._backend.stats()


# Re-exported for callers that treat the module as the one-stop store
# API (the CLI, tests, and the export path all resolve URLs through it).
__all__ += ["open_backend", "parse_store_url", "resolve_store_url"]
