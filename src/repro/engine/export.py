"""Columnar export: dump a run store for analytics-grade SQL.

``export_store`` writes the three store tables — ``runs``, ``ledgers``,
``telemetry`` — as columnar files so frontier queries and scaling fits
run directly in SQL (DuckDB over Parquet, or any engine over JSONL)
without re-executing anything:

* ``runs``: the identity/status columns, the full summary ``row`` as a
  JSON text column, **and** every scalar summary field flattened into
  a ``row_<key>`` column (``row_outcome``, ``row_messages``, ...) so
  queries never need JSON extraction.
* ``ledgers``: ``(run_hash, round, messages, bits)`` — one row per
  stored round.
* ``telemetry``: ``(run_hash, key, value)`` with ``value`` as JSON
  text.

Formats:

``jsonl``
    Always available (stdlib only): one JSON object per line, stable
    key order.
``parquet``
    Written through ``pyarrow`` when importable, else through
    ``duckdb``'s native Parquet ``COPY``; requesting it with neither
    installed raises a clear error naming both options.

Example frontier query over the Parquet export (DuckDB)::

    SELECT row_scenario AS scenario, row_faults AS faults,
           row_outcome AS outcome
    FROM 'export/runs.parquet'
    WHERE driver = 'faults' AND status = 'ok'
    ORDER BY created, hash
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

_SCALARS = (str, int, float, bool, type(None))

#: Fixed identity columns of the ``runs`` export, in order.
RUN_COLUMNS = ("hash", "driver", "n", "f", "seed", "params", "code_version",
               "status", "error", "elapsed", "created", "has_ledger", "row")


def _runs_records(runs) -> tuple[list[str], list[dict]]:
    """Flatten stored runs into export records with a unified schema."""
    row_keys: set[str] = set()
    for run in runs:
        if run.row:
            row_keys.update(
                key for key, value in run.row.items()
                if isinstance(value, _SCALARS)
            )
    columns = list(RUN_COLUMNS) + [f"row_{key}" for key in sorted(row_keys)]
    records = []
    for run in runs:
        record = {
            "hash": run.hash, "driver": run.driver, "n": run.n,
            "f": run.f, "seed": run.seed,
            "params": json.dumps(run.params, sort_keys=True),
            "code_version": run.code_version, "status": run.status,
            "error": run.error, "elapsed": run.elapsed,
            "created": run.created, "has_ledger": run.has_ledger,
            "row": json.dumps(run.row) if run.row is not None else None,
        }
        row = run.row or {}
        for key in sorted(row_keys):
            value = row.get(key)
            record[f"row_{key}"] = (value if isinstance(value, _SCALARS)
                                    else None)
        records.append(record)
    return columns, records


def _write_jsonl(path: Path, columns: list[str],
                 records: list[dict]) -> Path:
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(
                {column: record.get(column) for column in columns}))
            handle.write("\n")
    return path


def parquet_writer_available() -> bool:
    """Whether any Parquet writer (pyarrow or duckdb) is importable."""
    for module in ("pyarrow", "duckdb"):
        try:
            __import__(module)
            return True
        except ImportError:
            continue
    return False


def _duckdb_type(values: list) -> str:
    present = [value for value in values if value is not None]
    if not present:
        return "VARCHAR"
    if all(isinstance(value, bool) for value in present):
        return "BOOLEAN"
    if all(isinstance(value, int) and not isinstance(value, bool)
           for value in present):
        return "BIGINT"
    if all(isinstance(value, (int, float)) and not isinstance(value, bool)
           for value in present):
        return "DOUBLE"
    return "VARCHAR"


def _write_parquet(path: Path, columns: list[str],
                   records: list[dict]) -> Path:
    try:
        import pyarrow as pa
        import pyarrow.parquet as pq
    except ImportError:
        pass
    else:
        table = pa.table({
            column: [record.get(column) for record in records]
            for column in columns
        })
        pq.write_table(table, str(path))
        return path
    try:
        import duckdb
    except ImportError:
        raise RuntimeError(
            "parquet export needs a writer: install 'pyarrow' or 'duckdb' "
            "(pip install duckdb), or export --jsonl instead"
        ) from None
    types = {
        column: _duckdb_type([record.get(column) for record in records])
        for column in columns
    }
    connection = duckdb.connect(":memory:")
    try:
        ddl = ", ".join(f'"{column}" {types[column]}' for column in columns)
        connection.execute(f"CREATE TABLE export ({ddl})")
        placeholders = ", ".join("?" for _ in columns)
        rows = [
            tuple(
                value if isinstance(value, _SCALARS) else json.dumps(value)
                for value in (record.get(column) for column in columns)
            )
            for record in records
        ]
        if rows:
            connection.executemany(
                f"INSERT INTO export VALUES ({placeholders})", rows)
        target = str(path).replace("'", "''")
        connection.execute(
            f"COPY export TO '{target}' (FORMAT PARQUET)")
    finally:
        connection.close()
    return path


_WRITERS = {"jsonl": _write_jsonl, "parquet": _write_parquet}


def export_store(
    store,
    out_dir,
    *,
    formats: Sequence[str] = ("jsonl",),
    driver: Optional[str] = None,
    status: Optional[str] = None,
) -> dict[str, list[Path]]:
    """Dump ``store`` (an open RunStore/backend) under ``out_dir``.

    Returns ``{table: [written paths]}`` with one file per requested
    format (``runs.jsonl``, ``runs.parquet``, ...).  ``driver`` /
    ``status`` filter the exported runs; ledgers and telemetry follow
    the selected runs.
    """
    for fmt in formats:
        if fmt not in _WRITERS:
            raise ValueError(
                f"unknown export format {fmt!r}; "
                f"known: {', '.join(sorted(_WRITERS))}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    runs = store.query(driver=driver, status=status)
    tables: dict[str, tuple[list[str], list[dict]]] = {}
    tables["runs"] = _runs_records(runs)

    ledger_columns = ["run_hash", "round", "messages", "bits"]
    ledger_records = []
    for run in runs:
        if not run.has_ledger:
            continue
        ledger = store.ledger(run.hash)
        if ledger is None:  # pragma: no cover - raced deletion
            continue
        messages, bits = ledger
        ledger_records.extend(
            {"run_hash": run.hash, "round": round_no + 1,
             "messages": message_count, "bits": bit_count}
            for round_no, (message_count, bit_count)
            in enumerate(zip(messages, bits))
        )
    tables["ledgers"] = (ledger_columns, ledger_records)

    exported_hashes = {run.hash for run in runs}
    telemetry_records = [
        {"run_hash": hash_, "key": key,
         "value": json.dumps(value, sort_keys=True)}
        for hash_, key, value in store.telemetry_rows()
        if hash_ in exported_hashes or (driver is None and status is None)
    ]
    tables["telemetry"] = (["run_hash", "key", "value"], telemetry_records)

    written: dict[str, list[Path]] = {}
    for table, (columns, records) in tables.items():
        written[table] = [
            _WRITERS[fmt](out / f"{table}.{fmt}", columns, records)
            for fmt in formats
        ]
    return written
