"""The run-store backend contract and the shared SQL implementation.

A *backend* persists content-addressed protocol executions.  The
contract — the methods of :class:`StoreBackend` — is deliberately small
so new engines (asyncpg, ...) are one-file additions:

``put`` / ``get`` / ``query`` / ``ledger`` / ``put_telemetry`` /
``telemetry`` / ``telemetry_rows`` / ``stats`` / ``delete`` / ``clear``

plus the *work-queue* surface the distributed sweep fabric leases from
(:mod:`repro.engine.fabric`):

``enqueue_tasks`` / ``claim_task`` / ``heartbeat_task`` /
``settle_task`` / ``reap_tasks`` / ``get_task`` / ``list_tasks`` /
``task_counts``

Semantics every backend must honour (pinned by the conformance suite in
``tests/test_store_backends.py``):

* ``put`` replaces the row under its content hash and rewrites its
  ledgers atomically; ``messages_per_round`` and ``bits_per_round``
  must be given together with equal lengths (``ValueError`` naming the
  run hash otherwise).
* ``ledger`` distinguishes **no ledger stored** (``None``) from a
  legitimately **empty ledger** (``([], [])``) — a zero-round run must
  survive a store round trip.
* ``put_telemetry`` replaces on the same ``(run_hash, key)``.
* ``query`` orders by ``(created, hash)``; ``stats`` reports totals.
* Readers in other threads (and, where the engine allows it, other
  processes) see committed writes — concurrent readers are first-class.
* Queue mutations are atomic claim-or-nothing: ``claim_task`` leases
  exactly one claimable task (``pending``, or ``leased`` past its
  deadline) or returns ``None``; ``settle_task`` transitions only the
  caller's own live lease, so settling an already-settled task (or a
  lease lost to the reaper) is a *detected no-op* — never a second
  settlement.  ``enqueue_tasks`` ignores already-enqueued hashes, so
  re-enqueueing a campaign is idempotent.

:class:`SqlStoreBackend` implements the whole contract over DB-API
style connections using only portable SQL (``?`` placeholders, quoted
identifiers, explicit ``BEGIN``/``COMMIT``), so the SQLite and DuckDB
backends are thin subclasses that supply connections and DDL.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence


def canonical_json(value: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass
class StoredRun:
    """One persisted execution, decoded from the ``runs`` table."""

    hash: str
    driver: str
    n: int
    f: int
    seed: int
    params: dict
    code_version: str
    status: str
    row: Optional[dict]
    error: Optional[str]
    elapsed: Optional[float]
    created: float
    #: Whether the run was stored *with* a per-round ledger.  An empty
    #: ledger (a zero-round run) still sets this, so ``[]`` and ``None``
    #: survive store round trips distinctly.
    has_ledger: bool = False
    #: Executions the stored result took (1 = clean first attempt,
    #: 2 = recovered through the retry path; legacy rows default to 1).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def normalize_ledger(
    hash_: str,
    messages_per_round: Optional[Sequence[int]],
    bits_per_round: Optional[Sequence[int]],
) -> Optional[tuple[list[int], list[int]]]:
    """Validate a put's ledger pair; return ``(messages, bits)`` lists.

    Both-or-neither and equal lengths — a bare ``zip`` here used to
    silently drop the ledger when one side was ``None`` and silently
    truncate to the shorter list on a length mismatch, corrupting the
    stored ledger without a trace.
    """
    if (messages_per_round is None) != (bits_per_round is None):
        given, missing = (
            ("messages_per_round", "bits_per_round")
            if bits_per_round is None
            else ("bits_per_round", "messages_per_round")
        )
        raise ValueError(
            f"run {hash_}: {given} given without {missing}; the per-round "
            "ledger lists must be stored together or not at all"
        )
    if messages_per_round is None:
        return None
    messages = [int(m) for m in messages_per_round]
    bits = [int(b) for b in bits_per_round]
    if len(messages) != len(bits):
        raise ValueError(
            f"run {hash_}: ledger length mismatch — {len(messages)} "
            f"messages_per_round rounds vs {len(bits)} bits_per_round "
            "rounds; refusing to truncate"
        )
    return messages, bits


#: Work-queue task states (the lease/settlement state machine).
TASK_PENDING = "pending"
TASK_LEASED = "leased"
TASK_SETTLED = "settled"
TASK_FAILED = "failed"

#: States a task can be claimed from; ``leased`` only past its deadline.
TASK_STATES = (TASK_PENDING, TASK_LEASED, TASK_SETTLED, TASK_FAILED)

#: ``settle_task`` outcomes.
SETTLE_OK = "settled"          # this call performed the settlement
SETTLE_ALREADY = "already"     # task was already settled/failed: no-op
SETTLE_LOST = "lost"           # lease was reaped or re-leased elsewhere
SETTLE_MISSING = "missing"     # no such task


@dataclass
class QueuedTask:
    """One work-queue entry, decoded from the ``tasks`` table.

    ``task_hash`` is the run's content address (the same hash the
    ``runs`` table is keyed on), so settlement into the run store is
    at-most-once *structurally*: however many workers race, there is
    exactly one ``runs`` row a task can resolve to.  ``attempts``
    counts leases taken out on the task — 1 for a clean first
    execution, more after crash recovery re-leases.
    """

    campaign: str
    task_hash: str
    seq: int
    spec: dict
    state: str
    lease_owner: Optional[str]
    lease_deadline: Optional[float]
    attempts: int
    result_status: Optional[str]
    created: float
    settled: Optional[float]

    @property
    def done(self) -> bool:
        return self.state in (TASK_SETTLED, TASK_FAILED)


class StoreBackend:
    """Abstract run-store backend.  See the module docstring for the
    contract; subclasses must implement every method below."""

    #: URL scheme this backend answers to (``sqlite``, ``duckdb``, ...).
    scheme: str = ""
    #: Whether independent backend instances (possibly in different
    #: processes) may open the same path concurrently.  SQLite in WAL
    #: mode supports this; DuckDB locks the database file per process.
    supports_concurrent_instances: bool = False

    path: Path

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "StoreBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writes -------------------------------------------------------

    def put(self, hash_: str, *, driver: str, n: int, f: int, seed: int,
            params: object, version: str, status: str,
            row: Optional[dict] = None, error: Optional[str] = None,
            elapsed: Optional[float] = None,
            messages_per_round: Optional[Sequence[int]] = None,
            bits_per_round: Optional[Sequence[int]] = None,
            attempts: int = 1) -> None:
        raise NotImplementedError

    def put_telemetry(self, hash_: str, key: str, value: object) -> None:
        raise NotImplementedError

    def delete(self, hash_: str) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    # -- reads --------------------------------------------------------

    def get(self, hash_: str) -> Optional[StoredRun]:
        raise NotImplementedError

    def ledger(self, hash_: str) -> Optional[tuple[list[int], list[int]]]:
        raise NotImplementedError

    def query(self, *, driver: Optional[str] = None, n: Optional[int] = None,
              f: Optional[int] = None, seed: Optional[int] = None,
              status: Optional[str] = None,
              current_version_only: bool = False,
              limit: Optional[int] = None) -> list[StoredRun]:
        raise NotImplementedError

    def telemetry(self, hash_: str) -> dict:
        raise NotImplementedError

    def telemetry_rows(self, *, key: Optional[str] = None,
                       driver: Optional[str] = None,
                       limit: Optional[int] = None,
                       ) -> list[tuple[str, str, dict]]:
        raise NotImplementedError

    def stats(self) -> dict:
        raise NotImplementedError

    # -- work queue ---------------------------------------------------

    def enqueue_tasks(self, campaign: str,
                      tasks: Sequence[tuple[str, int, dict]]) -> int:
        """Insert ``(task_hash, seq, spec)`` rows as ``pending``;
        already-enqueued hashes are ignored.  Returns how many rows
        were actually new."""
        raise NotImplementedError

    def claim_task(self, owner: str, now: float, lease_deadline: float,
                   campaign: Optional[str] = None) -> Optional["QueuedTask"]:
        raise NotImplementedError

    def heartbeat_task(self, campaign: str, task_hash: str, owner: str,
                       lease_deadline: float) -> bool:
        raise NotImplementedError

    def settle_task(self, campaign: str, task_hash: str, owner: str,
                    state: str, result_status: Optional[str],
                    now: float) -> str:
        raise NotImplementedError

    def reap_tasks(self, now: float, campaign: Optional[str] = None,
                   force: bool = False) -> list["QueuedTask"]:
        raise NotImplementedError

    def get_task(self, campaign: str,
                 task_hash: str) -> Optional["QueuedTask"]:
        raise NotImplementedError

    def list_tasks(self, *, campaign: Optional[str] = None,
                   state: Optional[str] = None,
                   limit: Optional[int] = None) -> list["QueuedTask"]:
        raise NotImplementedError

    def task_counts(self, campaign: Optional[str] = None,
                    ) -> dict[str, dict[str, int]]:
        raise NotImplementedError


class ConnectionPool:
    """Per-thread connections from a factory, closed together.

    Database handles are rarely safe to share across threads (SQLite
    enforces ``check_same_thread``; DuckDB wants one cursor per
    thread), but a sweep coordinator, a progress watcher, and the
    conformance suite's concurrent readers all touch one store object.
    The pool hands every thread its own connection, lazily, and tracks
    them all so ``close_all`` tears the store down deterministically.
    """

    def __init__(self, factory: Callable[[], object]):
        self._factory = factory
        self._local = threading.local()
        self._all: list = []
        self._lock = threading.Lock()
        self._closed = False

    def get(self):
        connection = getattr(self._local, "connection", None)
        if connection is None:
            with self._lock:
                if self._closed:
                    raise RuntimeError("store is closed")
                connection = self._factory()
                self._all.append(connection)
            self._local.connection = connection
        return connection

    def close_all(self) -> None:
        with self._lock:
            self._closed = True
            connections, self._all = self._all, []
        for connection in connections:
            try:
                connection.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self._local = threading.local()


class SqlStoreBackend(StoreBackend):
    """Shared SQL implementation over :class:`ConnectionPool`.

    Subclasses provide :meth:`_connect` (one new connection for the
    calling thread, schema already applied for the first one) and may
    override :meth:`_transaction` if their engine needs anything beyond
    ``BEGIN``/``COMMIT``/``ROLLBACK``.
    """

    def __init__(self):
        self._pool = ConnectionPool(self._connect)
        self._pool.get()  # create eagerly: surface path/schema errors now

    # -- subclass hooks -----------------------------------------------

    def _connect(self):  # pragma: no cover - abstract
        raise NotImplementedError

    # -- plumbing -----------------------------------------------------

    #: Statement opening a write transaction.  SQLite overrides this to
    #: ``BEGIN IMMEDIATE``: a deferred transaction that reads before
    #: writing can hit an unretryable ``SQLITE_BUSY`` on lock upgrade
    #: when another fabric worker committed in between, while an
    #: immediate one serializes at BEGIN under ``busy_timeout``.
    _BEGIN_WRITE = "BEGIN"

    def _execute(self, sql: str, parameters: Sequence = ()):
        return self._pool.get().execute(sql, parameters)

    def close(self) -> None:
        self._pool.close_all()

    def _mutate(self, op):
        """Run ``op(connection)`` inside one explicit write transaction.

        ``BEGIN``/``COMMIT``/``ROLLBACK`` are portable across SQLite
        (connections are opened in autocommit, ``isolation_level=None``)
        and DuckDB, and keep multi-statement mutations — a ``put``'s
        row + ledger rewrite, a queue claim's read-then-lease — atomic
        for concurrent readers and competing workers.
        """
        connection = self._pool.get()
        connection.execute(self._BEGIN_WRITE)
        try:
            result = op(connection)
            connection.execute("COMMIT")
            return result
        except BaseException:
            connection.execute("ROLLBACK")
            raise

    def _write(self, statements: list[tuple[str, Sequence]]) -> None:
        """Run ``statements`` in one explicit transaction."""

        def op(connection):
            for sql, parameters in statements:
                connection.execute(sql, parameters)

        self._mutate(op)

    @staticmethod
    def _update_count(cursor) -> int:
        """Rows changed by an UPDATE/INSERT just executed on ``cursor``.

        sqlite3 exposes ``rowcount``; DuckDB instead *returns* the
        count as a one-row result (and reports ``rowcount`` as -1), so
        its backend overrides this.
        """
        return cursor.rowcount

    # -- writes -------------------------------------------------------

    def put(self, hash_: str, *, driver: str, n: int, f: int, seed: int,
            params: object, version: str, status: str,
            row: Optional[dict] = None, error: Optional[str] = None,
            elapsed: Optional[float] = None,
            messages_per_round: Optional[Sequence[int]] = None,
            bits_per_round: Optional[Sequence[int]] = None,
            attempts: int = 1) -> None:
        """Insert or replace one run (and its per-round ledgers)."""
        params_map = dict(params) if not isinstance(params, dict) else params
        ledger = normalize_ledger(hash_, messages_per_round, bits_per_round)
        statements: list[tuple[str, Sequence]] = [(
            "INSERT OR REPLACE INTO runs"
            " (hash, driver, n, f, seed, params, code_version,"
            "  status, row, error, elapsed, created, has_ledger, attempts)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                hash_, driver, n, f, seed,
                canonical_json(params_map), version, status,
                # Row keys keep insertion order (not canonical_json):
                # table columns come from the first row, so a cached
                # row must render byte-identically to a fresh one.
                json.dumps(row) if row is not None else None,
                error, elapsed, time.time(),
                ledger is not None, int(attempts),
            ),
        )]
        statements.append(
            ("DELETE FROM ledgers WHERE run_hash = ?", (hash_,)))
        if ledger is not None:
            messages, bits = ledger
            statements.extend(
                ("INSERT INTO ledgers (run_hash, \"round\", messages, bits)"
                 " VALUES (?, ?, ?, ?)",
                 (hash_, round_no + 1, message_count, bit_count))
                for round_no, (message_count, bit_count)
                in enumerate(zip(messages, bits))
            )
        self._write(statements)

    def put_telemetry(self, hash_: str, key: str, value: object) -> None:
        """Attach one observability row to a run hash.

        ``value`` is any JSON-serializable object; re-putting the same
        ``(hash, key)`` replaces the previous value.
        """
        self._write([(
            "INSERT OR REPLACE INTO telemetry"
            " (run_hash, key, value, created) VALUES (?, ?, ?, ?)",
            (hash_, key, canonical_json(value), time.time()),
        )])

    def delete(self, hash_: str) -> None:
        self._write([
            ("DELETE FROM ledgers WHERE run_hash = ?", (hash_,)),
            ("DELETE FROM telemetry WHERE run_hash = ?", (hash_,)),
            ("DELETE FROM runs WHERE hash = ?", (hash_,)),
        ])

    def clear(self) -> None:
        self._write([
            ("DELETE FROM ledgers", ()),
            ("DELETE FROM telemetry", ()),
            ("DELETE FROM runs", ()),
        ])

    # -- reads --------------------------------------------------------

    @staticmethod
    def _decode(record: tuple) -> StoredRun:
        (hash_, driver, n, f, seed, params, version, status, row, error,
         elapsed, created, has_ledger, attempts) = record
        return StoredRun(
            hash=hash_, driver=driver, n=n, f=f, seed=seed,
            params=json.loads(params), code_version=version, status=status,
            row=json.loads(row) if row is not None else None,
            error=error, elapsed=elapsed, created=created,
            has_ledger=bool(has_ledger), attempts=int(attempts),
        )

    _COLUMNS = ("hash, driver, n, f, seed, params, code_version, status,"
                " row, error, elapsed, created, has_ledger, attempts")

    def get(self, hash_: str) -> Optional[StoredRun]:
        cursor = self._execute(
            f"SELECT {self._COLUMNS} FROM runs WHERE hash = ?", (hash_,)
        )
        record = cursor.fetchone()
        return self._decode(record) if record else None

    def ledger(self, hash_: str) -> Optional[tuple[list[int], list[int]]]:
        """``(messages_per_round, bits_per_round)`` of one stored run.

        ``None`` when the run is missing or was stored without a ledger;
        ``([], [])`` for a run stored with a legitimately empty one.
        """
        flag = self._execute(
            "SELECT has_ledger FROM runs WHERE hash = ?", (hash_,)
        ).fetchone()
        if flag is None or not flag[0]:
            return None
        records = self._execute(
            "SELECT messages, bits FROM ledgers WHERE run_hash = ?"
            " ORDER BY \"round\"", (hash_,)
        ).fetchall()
        return ([m for m, _ in records], [b for _, b in records])

    def query(self, *, driver: Optional[str] = None, n: Optional[int] = None,
              f: Optional[int] = None, seed: Optional[int] = None,
              status: Optional[str] = None,
              current_version_only: bool = False,
              limit: Optional[int] = None) -> list[StoredRun]:
        """Stored runs matching the given filters, oldest first."""
        clauses, values = [], []
        for column, value in (("driver", driver), ("n", n), ("f", f),
                              ("seed", seed), ("status", status)):
            if value is not None:
                clauses.append(f"{column} = ?")
                values.append(value)
        if current_version_only:
            from repro.engine.store import code_version

            clauses.append("code_version = ?")
            values.append(code_version())
        sql = f"SELECT {self._COLUMNS} FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created, hash"
        if limit is not None:
            # Inlined (after an int cast) rather than bound: not every
            # engine accepts a parameter marker in LIMIT.
            sql += f" LIMIT {int(limit)}"
        return [self._decode(r) for r in self._execute(sql, values).fetchall()]

    def telemetry(self, hash_: str) -> dict:
        """All telemetry rows of one run, as ``{key: decoded value}``."""
        return {
            key: json.loads(value)
            for key, value in self._execute(
                "SELECT key, value FROM telemetry WHERE run_hash = ?"
                " ORDER BY key", (hash_,)
            ).fetchall()
        }

    def telemetry_rows(self, *, key: Optional[str] = None,
                       driver: Optional[str] = None,
                       limit: Optional[int] = None,
                       ) -> list[tuple[str, str, dict]]:
        """``(run_hash, key, value)`` telemetry rows, oldest first.

        ``driver`` filters through the ``runs`` table; telemetry whose
        run row is gone still matches when ``driver`` is ``None``.
        """
        clauses, values = [], []
        sql = "SELECT t.run_hash, t.key, t.value FROM telemetry t"
        if driver is not None:
            sql += " JOIN runs r ON r.hash = t.run_hash"
            clauses.append("r.driver = ?")
            values.append(driver)
        if key is not None:
            clauses.append("t.key = ?")
            values.append(key)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY t.created, t.run_hash, t.key"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return [
            (hash_, key_, json.loads(value))
            for hash_, key_, value in self._execute(sql, values).fetchall()
        ]

    def stats(self) -> dict:
        """Aggregate counts for the CLI footer."""
        total, ok, failed = self._execute(
            "SELECT COUNT(*),"
            " SUM(CASE WHEN status = 'ok' THEN 1 ELSE 0 END),"
            " SUM(CASE WHEN status = 'failed' THEN 1 ELSE 0 END)"
            " FROM runs"
        ).fetchone()
        drivers = [d for (d,) in self._execute(
            "SELECT DISTINCT driver FROM runs ORDER BY driver").fetchall()]
        return {
            "total": int(total or 0),
            "ok": int(ok or 0),
            "failed": int(failed or 0),
            "drivers": drivers,
            "path": str(self.path),
        }

    # -- work queue ---------------------------------------------------

    _TASK_COLUMNS = ("campaign, task_hash, seq, spec, state, lease_owner,"
                     " lease_deadline, attempts, result_status, created,"
                     " settled")

    @staticmethod
    def _decode_task(record: tuple) -> QueuedTask:
        (campaign, task_hash, seq, spec, state, lease_owner, lease_deadline,
         attempts, result_status, created, settled) = record
        return QueuedTask(
            campaign=campaign, task_hash=task_hash, seq=int(seq),
            spec=json.loads(spec), state=state, lease_owner=lease_owner,
            lease_deadline=lease_deadline, attempts=int(attempts),
            result_status=result_status, created=created, settled=settled,
        )

    def enqueue_tasks(self, campaign: str,
                      tasks: Sequence[tuple[str, int, dict]]) -> int:
        """Insert pending tasks; re-enqueueing known hashes is a no-op."""
        created = time.time()

        def op(connection) -> int:
            new = 0
            for task_hash, seq, spec in tasks:
                cursor = connection.execute(
                    "INSERT OR IGNORE INTO tasks"
                    " (campaign, task_hash, seq, spec, state, lease_owner,"
                    "  lease_deadline, attempts, result_status, created,"
                    "  settled)"
                    " VALUES (?, ?, ?, ?, ?, NULL, NULL, 0, NULL, ?, NULL)",
                    (campaign, task_hash, int(seq), canonical_json(spec),
                     TASK_PENDING, created),
                )
                new += self._update_count(cursor)
            return new

        return self._mutate(op)

    def claim_task(self, owner: str, now: float, lease_deadline: float,
                   campaign: Optional[str] = None) -> Optional[QueuedTask]:
        """Lease the first claimable task, or return ``None``.

        Claimable: ``pending``, or ``leased`` with an expired deadline
        (its worker crashed without settling).  The read and the lease
        UPDATE share one write transaction, and the UPDATE re-checks
        the claimability predicate, so two workers can never lease the
        same task generation.
        """

        def op(connection) -> Optional[QueuedTask]:
            claimable = ("state = ? OR (state = ? AND lease_deadline"
                         " IS NOT NULL AND lease_deadline < ?)")
            values: list = [TASK_PENDING, TASK_LEASED, now]
            sql = (f"SELECT {self._TASK_COLUMNS} FROM tasks"
                   f" WHERE ({claimable})")
            if campaign is not None:
                sql += " AND campaign = ?"
                values.append(campaign)
            sql += " ORDER BY campaign, seq LIMIT 1"
            record = connection.execute(sql, values).fetchone()
            if record is None:
                return None
            task = self._decode_task(record)
            cursor = connection.execute(
                "UPDATE tasks SET state = ?, lease_owner = ?,"
                " lease_deadline = ?, attempts = attempts + 1"
                f" WHERE campaign = ? AND task_hash = ? AND ({claimable})",
                (TASK_LEASED, owner, lease_deadline, task.campaign,
                 task.task_hash, TASK_PENDING, TASK_LEASED, now),
            )
            if self._update_count(cursor) != 1:  # pragma: no cover - racy
                return None
            task.state = TASK_LEASED
            task.lease_owner = owner
            task.lease_deadline = lease_deadline
            task.attempts += 1
            return task

        return self._mutate(op)

    def heartbeat_task(self, campaign: str, task_hash: str, owner: str,
                       lease_deadline: float) -> bool:
        """Extend the caller's live lease; ``False`` means it was lost."""

        def op(connection) -> bool:
            cursor = connection.execute(
                "UPDATE tasks SET lease_deadline = ?"
                " WHERE campaign = ? AND task_hash = ? AND state = ?"
                " AND lease_owner = ?",
                (lease_deadline, campaign, task_hash, TASK_LEASED, owner),
            )
            return self._update_count(cursor) == 1

        return self._mutate(op)

    def settle_task(self, campaign: str, task_hash: str, owner: str,
                    state: str, result_status: Optional[str],
                    now: float) -> str:
        """Resolve the caller's lease; returns a ``SETTLE_*`` outcome.

        Only the live lease owner settles (``SETTLE_OK``); anyone else
        gets a detected no-op — ``SETTLE_ALREADY`` when the task is
        done, ``SETTLE_LOST`` when the lease moved on, and
        ``SETTLE_MISSING`` when there is no such task.
        """
        if state not in (TASK_SETTLED, TASK_FAILED):
            raise ValueError(
                f"settle_task: state must be '{TASK_SETTLED}' or"
                f" '{TASK_FAILED}', got {state!r}")

        def op(connection) -> str:
            cursor = connection.execute(
                "UPDATE tasks SET state = ?, result_status = ?, settled = ?,"
                " lease_owner = NULL, lease_deadline = NULL"
                " WHERE campaign = ? AND task_hash = ? AND state = ?"
                " AND lease_owner = ?",
                (state, result_status, now, campaign, task_hash,
                 TASK_LEASED, owner),
            )
            if self._update_count(cursor) == 1:
                return SETTLE_OK
            record = connection.execute(
                "SELECT state FROM tasks WHERE campaign = ?"
                " AND task_hash = ?", (campaign, task_hash)).fetchone()
            if record is None:
                return SETTLE_MISSING
            if record[0] in (TASK_SETTLED, TASK_FAILED):
                return SETTLE_ALREADY
            return SETTLE_LOST

        return self._mutate(op)

    def reap_tasks(self, now: float, campaign: Optional[str] = None,
                   force: bool = False) -> list[QueuedTask]:
        """Return expired leases to ``pending`` (all leases if ``force``).

        Returns the reclaimed tasks as they were *before* reaping, so
        the caller can report which owner lost each lease.
        """

        def op(connection) -> list[QueuedTask]:
            stale = "state = ?"
            values: list = [TASK_LEASED]
            if not force:
                stale += " AND lease_deadline IS NOT NULL AND lease_deadline < ?"
                values.append(now)
            if campaign is not None:
                stale += " AND campaign = ?"
                values.append(campaign)
            records = connection.execute(
                f"SELECT {self._TASK_COLUMNS} FROM tasks WHERE {stale}"
                " ORDER BY campaign, seq", values).fetchall()
            reaped = [self._decode_task(r) for r in records]
            for task in reaped:
                connection.execute(
                    "UPDATE tasks SET state = ?, lease_owner = NULL,"
                    " lease_deadline = NULL"
                    " WHERE campaign = ? AND task_hash = ? AND state = ?"
                    " AND lease_owner = ?",
                    (TASK_PENDING, task.campaign, task.task_hash,
                     TASK_LEASED, task.lease_owner),
                )
            return reaped

        return self._mutate(op)

    def get_task(self, campaign: str,
                 task_hash: str) -> Optional[QueuedTask]:
        record = self._execute(
            f"SELECT {self._TASK_COLUMNS} FROM tasks"
            " WHERE campaign = ? AND task_hash = ?",
            (campaign, task_hash)).fetchone()
        return self._decode_task(record) if record else None

    def list_tasks(self, *, campaign: Optional[str] = None,
                   state: Optional[str] = None,
                   limit: Optional[int] = None) -> list[QueuedTask]:
        clauses, values = [], []
        if campaign is not None:
            clauses.append("campaign = ?")
            values.append(campaign)
        if state is not None:
            clauses.append("state = ?")
            values.append(state)
        sql = f"SELECT {self._TASK_COLUMNS} FROM tasks"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY campaign, seq"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return [self._decode_task(r)
                for r in self._execute(sql, values).fetchall()]

    def task_counts(self, campaign: Optional[str] = None,
                    ) -> dict[str, dict[str, int]]:
        """``{campaign: {state: count, "total": count}}``."""
        sql = "SELECT campaign, state, COUNT(*) FROM tasks"
        values: list = []
        if campaign is not None:
            sql += " WHERE campaign = ?"
            values.append(campaign)
        sql += " GROUP BY campaign, state ORDER BY campaign, state"
        counts: dict[str, dict[str, int]] = {}
        for name, state, count in self._execute(sql, values).fetchall():
            per = counts.setdefault(
                name, {s: 0 for s in TASK_STATES} | {"total": 0})
            per[state] = int(count)
            per["total"] += int(count)
        return counts
