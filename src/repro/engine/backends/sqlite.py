"""The default run-store backend: stdlib SQLite in WAL mode.

WAL journaling makes concurrent *readers* first-class: a
``python -m repro runs`` session (or the live progress view) can watch
a sweep fill in from another process while the coordinator writes.
Within one process, every thread gets its own connection from the
shared :class:`~repro.engine.backends.base.ConnectionPool` — SQLite
connections are not thread-safe, so ``check_same_thread`` stays at its
strict default of ``True`` for file-backed stores and each connection
simply never leaves its owning thread.

``:memory:`` stores are the one exception: separate connections to
``:memory:`` open separate empty databases, so an in-memory store uses
a single connection created with ``check_same_thread=False`` and a
lock serializing all access across threads.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from pathlib import Path

from repro.engine.backends.base import SqlStoreBackend

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    hash         TEXT PRIMARY KEY,
    driver       TEXT NOT NULL,
    n            INTEGER NOT NULL,
    f            INTEGER NOT NULL,
    seed         INTEGER NOT NULL,
    params       TEXT NOT NULL,
    code_version TEXT NOT NULL,
    status       TEXT NOT NULL CHECK (status IN ('ok', 'failed')),
    row          TEXT,
    error        TEXT,
    elapsed      REAL,
    created      REAL NOT NULL,
    has_ledger   INTEGER NOT NULL DEFAULT 0,
    attempts     INTEGER NOT NULL DEFAULT 1
);
CREATE INDEX IF NOT EXISTS idx_runs_driver ON runs (driver, n, f, seed);
CREATE INDEX IF NOT EXISTS idx_runs_created ON runs (created);
CREATE TABLE IF NOT EXISTS ledgers (
    run_hash TEXT NOT NULL REFERENCES runs (hash) ON DELETE CASCADE,
    "round"  INTEGER NOT NULL,
    messages INTEGER NOT NULL,
    bits     INTEGER NOT NULL,
    PRIMARY KEY (run_hash, "round")
);
CREATE TABLE IF NOT EXISTS telemetry (
    run_hash TEXT NOT NULL,
    key      TEXT NOT NULL,
    value    TEXT NOT NULL,
    created  REAL NOT NULL,
    PRIMARY KEY (run_hash, key)
);
CREATE TABLE IF NOT EXISTS tasks (
    campaign       TEXT NOT NULL,
    task_hash      TEXT NOT NULL,
    seq            INTEGER NOT NULL,
    spec           TEXT NOT NULL,
    state          TEXT NOT NULL
        CHECK (state IN ('pending', 'leased', 'settled', 'failed')),
    lease_owner    TEXT,
    lease_deadline REAL,
    attempts       INTEGER NOT NULL DEFAULT 0,
    result_status  TEXT,
    created        REAL NOT NULL,
    settled        REAL,
    PRIMARY KEY (campaign, task_hash)
);
CREATE INDEX IF NOT EXISTS idx_tasks_state ON tasks (state, lease_deadline);
"""


class _LockedConnection:
    """A single SQLite connection shared across threads under a lock.

    Only used for ``:memory:`` stores (see the module docstring); the
    surface is the slice of the DB-API the shared SQL backend uses.
    """

    def __init__(self, connection: sqlite3.Connection):
        self._connection = connection
        self._lock = threading.RLock()

    def execute(self, sql, parameters=()):
        with self._lock:
            return self._connection.execute(sql, parameters)

    def close(self) -> None:
        with self._lock:
            self._connection.close()


class SqliteBackend(SqlStoreBackend):
    """SQLite-backed run store; the default for bare paths."""

    scheme = "sqlite"
    supports_concurrent_instances = True

    # Writes take the lock at BEGIN: a deferred transaction that reads
    # before writing can hit an unretryable SQLITE_BUSY upgrading its
    # shared lock when a competing fabric worker committed in between;
    # BEGIN IMMEDIATE serializes writers under busy_timeout instead.
    _BEGIN_WRITE = "BEGIN IMMEDIATE"

    def __init__(self, path: os.PathLike | str):
        self.path = Path(path)
        self._memory = str(path) == ":memory:"
        self._shared = None
        if not self._memory:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        super().__init__()

    def _connect(self):
        if self._memory:
            # One shared connection: separate :memory: connections would
            # each open their own empty database.
            if self._shared is None:
                connection = sqlite3.connect(
                    ":memory:", isolation_level=None,
                    check_same_thread=False,
                )
                self._prepare(connection)
                self._shared = _LockedConnection(connection)
            return self._shared
        connection = sqlite3.connect(
            str(self.path),
            # Autocommit: transactions are explicit BEGIN/COMMIT in the
            # shared SQL layer, never sqlite3's implicit ones.
            isolation_level=None,
            # Strict per-thread ownership — the pool hands each thread
            # its own connection, so the default thread check stays on
            # as a safety net rather than being disabled.
            check_same_thread=True,
        )
        self._prepare(connection)
        return connection

    def _prepare(self, connection: sqlite3.Connection) -> None:
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute("PRAGMA foreign_keys=ON")
        # Concurrent-writer safety net: WAL readers never block, but a
        # reader opening its connection while the coordinator holds the
        # write lock briefly (schema setup, a put) should wait, not
        # fail with "database is locked".
        connection.execute("PRAGMA busy_timeout=10000")
        connection.executescript(_SCHEMA)
        self._migrate(connection)
        connection.commit()

    @staticmethod
    def _migrate(connection: sqlite3.Connection) -> None:
        """Upgrade stores created before the ``has_ledger`` column.

        Legacy rows could not distinguish "stored without a ledger"
        from "stored with an empty one"; the backfill marks rows with
        ledger rows present, the best reconstruction available.
        """
        columns = {
            record[1]
            for record in connection.execute("PRAGMA table_info(runs)")
        }
        if "has_ledger" not in columns:
            connection.execute(
                "ALTER TABLE runs"
                " ADD COLUMN has_ledger INTEGER NOT NULL DEFAULT 0")
            connection.execute(
                "UPDATE runs SET has_ledger = EXISTS"
                " (SELECT 1 FROM ledgers WHERE run_hash = hash)")
        if "attempts" not in columns:
            connection.execute(
                "ALTER TABLE runs"
                " ADD COLUMN attempts INTEGER NOT NULL DEFAULT 1")
