"""Analytics run-store backend on DuckDB (optional dependency).

Same contract, same tables as the SQLite default, but a columnar OLAP
engine underneath: frontier queries, scaling fits, and joins over
millions of cached runs run as plain SQL at analytics speed, and the
Parquet export path can reuse the engine's native ``COPY``.

DuckDB is deliberately *optional* — ``import duckdb`` happens lazily
inside the constructor, so the rest of the engine (and the default
SQLite path) works untouched when the package is absent.  Selecting a
``duckdb://`` store without the package raises a clear error naming
the missing dependency instead of an ImportError mid-sweep.

Unlike SQLite/WAL, a DuckDB database file is locked by the opening
process, so ``supports_concurrent_instances`` stays ``False``:
concurrent readers are served by per-thread cursors duplicated from
one root connection (the pool in the shared base), not by second
processes opening the same file.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.engine.backends.base import SqlStoreBackend

_SCHEMA_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS runs (
        hash         VARCHAR PRIMARY KEY,
        driver       VARCHAR NOT NULL,
        n            BIGINT NOT NULL,
        f            BIGINT NOT NULL,
        seed         BIGINT NOT NULL,
        params       VARCHAR NOT NULL,
        code_version VARCHAR NOT NULL,
        status       VARCHAR NOT NULL CHECK (status IN ('ok', 'failed')),
        row          VARCHAR,
        error        VARCHAR,
        elapsed      DOUBLE,
        created      DOUBLE NOT NULL,
        has_ledger   BOOLEAN NOT NULL DEFAULT FALSE,
        attempts     BIGINT NOT NULL DEFAULT 1
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS ledgers (
        run_hash VARCHAR NOT NULL,
        "round"  BIGINT NOT NULL,
        messages BIGINT NOT NULL,
        bits     BIGINT NOT NULL,
        PRIMARY KEY (run_hash, "round")
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS telemetry (
        run_hash VARCHAR NOT NULL,
        key      VARCHAR NOT NULL,
        value    VARCHAR NOT NULL,
        created  DOUBLE NOT NULL,
        PRIMARY KEY (run_hash, key)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS tasks (
        campaign       VARCHAR NOT NULL,
        task_hash      VARCHAR NOT NULL,
        seq            BIGINT NOT NULL,
        spec           VARCHAR NOT NULL,
        state          VARCHAR NOT NULL
            CHECK (state IN ('pending', 'leased', 'settled', 'failed')),
        lease_owner    VARCHAR,
        lease_deadline DOUBLE,
        attempts       BIGINT NOT NULL DEFAULT 0,
        result_status  VARCHAR,
        created        DOUBLE NOT NULL,
        settled        DOUBLE,
        PRIMARY KEY (campaign, task_hash)
    )
    """,
)


def duckdb_available() -> bool:
    """Whether the optional ``duckdb`` package is importable."""
    try:
        import duckdb  # noqa: F401
    except ImportError:
        return False
    return True


class DuckdbBackend(SqlStoreBackend):
    """DuckDB-backed run store, selected via ``duckdb://<path>``."""

    scheme = "duckdb"
    supports_concurrent_instances = False

    def __init__(self, path: os.PathLike | str):
        try:
            import duckdb
        except ImportError:
            raise RuntimeError(
                "duckdb:// store selected but the 'duckdb' package is not "
                "installed; install it (pip install duckdb) or use the "
                "default sqlite backend"
            ) from None
        self.path = Path(path)
        self._memory = str(path) == ":memory:"
        if not self._memory:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._root = duckdb.connect(
            ":memory:" if self._memory else str(self.path))
        for statement in _SCHEMA_STATEMENTS:
            self._root.execute(statement)
        # Stores created before the retry-attempt column.
        self._root.execute(
            "ALTER TABLE runs ADD COLUMN IF NOT EXISTS"
            " attempts BIGINT NOT NULL DEFAULT 1")
        super().__init__()

    def _connect(self):
        # cursor() duplicates the root connection: same database, own
        # transaction context — one per thread, handed out by the pool.
        return self._root.cursor()

    @staticmethod
    def _update_count(cursor) -> int:
        # DuckDB reports rowcount as -1 and instead *returns* the
        # changed-row count as a one-row result of the UPDATE/INSERT.
        record = cursor.fetchone()
        return int(record[0]) if record else 0

    def close(self) -> None:
        super().close()
        self._root.close()
