"""Run-store backends: one contract, pluggable engines.

``parse_store_url`` / ``open_backend`` implement the ``REPRO_STORE``
URL scheme:

* ``sqlite:///abs/path.sqlite`` or ``sqlite://rel/path.sqlite`` — the
  default stdlib SQLite backend (WAL, per-thread pooled connections).
* ``duckdb://path.duckdb`` — the optional DuckDB analytics backend;
  selecting it without the package installed raises a clear error.
* A bare path (``.repro/runs.sqlite``) stays SQLite for compatibility
  with every pre-URL store path.

Adding a backend is one module exposing a
:class:`~repro.engine.backends.base.StoreBackend` subclass plus an
entry in :data:`BACKEND_SCHEMES`; the conformance suite in
``tests/test_store_backends.py`` runs the full contract against every
backend that reports itself available.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.engine.backends.base import (
    SETTLE_ALREADY,
    SETTLE_LOST,
    SETTLE_MISSING,
    SETTLE_OK,
    TASK_FAILED,
    TASK_LEASED,
    TASK_PENDING,
    TASK_SETTLED,
    TASK_STATES,
    ConnectionPool,
    QueuedTask,
    SqlStoreBackend,
    StoreBackend,
    StoredRun,
    normalize_ledger,
)
from repro.engine.backends.duckdb import DuckdbBackend, duckdb_available
from repro.engine.backends.sqlite import SqliteBackend

#: Registered URL schemes -> backend constructors (taking a path).
BACKEND_SCHEMES: dict[str, Callable[[str], StoreBackend]] = {
    "sqlite": SqliteBackend,
    "duckdb": DuckdbBackend,
}


def parse_store_url(value: os.PathLike | str) -> tuple[str, str]:
    """Split a store location into ``(scheme, absolute path)``.

    Bare paths (no ``://``) select ``sqlite`` so every pre-existing
    store path keeps working unchanged.  Relative paths resolve against
    the *parser's* CWD at parse time: fabric workers are spawned from
    whatever directory they happen to inherit, and a relative
    ``sqlite://runs.sqlite`` resolved lazily would silently give each
    worker its own store file.  ``:memory:`` stays symbolic.
    """
    text = os.fspath(value)
    scheme, separator, rest = text.partition("://")
    if not separator:
        scheme, rest = "sqlite", text
    else:
        scheme = scheme.lower()
        if scheme not in BACKEND_SCHEMES:
            known = ", ".join(
                f"{name}://" for name in sorted(BACKEND_SCHEMES))
            raise ValueError(
                f"unknown run-store scheme {scheme!r} in {text!r}; "
                f"known schemes: {known} (a bare path selects sqlite)"
            )
        if not rest:
            raise ValueError(f"run-store URL {text!r} is missing a path")
    if rest != ":memory:":
        rest = os.path.abspath(rest)
    return scheme, rest


def resolve_store_url(value: os.PathLike | str) -> str:
    """Normalize a store location to an absolute ``scheme://path`` URL.

    The canonical form to hand to a subprocess: every worker parses it
    back to the same ``(scheme, path)`` regardless of its CWD.
    """
    scheme, path = parse_store_url(value)
    return f"{scheme}://{path}"


def available_backend_schemes() -> list[str]:
    """Schemes usable right now (``duckdb`` only when importable)."""
    schemes = ["sqlite"]
    if duckdb_available():
        schemes.append("duckdb")
    return schemes


def open_backend(value: os.PathLike | str) -> StoreBackend:
    """Open the backend selected by a path or ``scheme://path`` URL."""
    scheme, path = parse_store_url(value)
    return BACKEND_SCHEMES[scheme](path)


__all__ = [
    "BACKEND_SCHEMES",
    "ConnectionPool",
    "DuckdbBackend",
    "QueuedTask",
    "SETTLE_ALREADY",
    "SETTLE_LOST",
    "SETTLE_MISSING",
    "SETTLE_OK",
    "SqlStoreBackend",
    "SqliteBackend",
    "StoreBackend",
    "StoredRun",
    "TASK_FAILED",
    "TASK_LEASED",
    "TASK_PENDING",
    "TASK_SETTLED",
    "TASK_STATES",
    "available_backend_schemes",
    "duckdb_available",
    "normalize_ledger",
    "open_backend",
    "parse_store_url",
    "resolve_store_url",
]
