"""Command-line interface: run the paper's algorithms from a shell.

Examples::

    python -m repro crash --n 64 --f 8 --adversary hunter
    python -m repro byzantine --n 16 --f 2 --strategy withholder
    python -m repro table1 --n 32 --f 4
    python -m repro lowerbound --n 48
    python -m repro sweep --driver crash --n 16,32,64 --seeds 0-4 --jobs 4
    python -m repro sweep --driver crash --store duckdb://.repro/runs.duckdb
    python -m repro runs --export md
    python -m repro runs export --parquet --out .repro/export
    python -m repro perf --quick
    python -m repro serve --quick
    python -m repro serve --shards 2,4,8 --events serve_events.jsonl
    python -m repro chaos --quick
    python -m repro chaos --resilience '{"max_retries": 2}'
    python -m repro sweep --driver serve --n 64 --seeds 0-2 --f 1
    python -m repro falsify --n 8,12 --seeds 0-3 --jobs 4
    python -m repro falsify --replay .repro/repros/repro-crash-....json
    python -m repro faults --scenario crash,gossip --n 16 --f 2
    python -m repro faults --scenario crash --faults '[{"kind": "omission", "p": 0.1}]'
    python -m repro obs profile --scenario crash --n 32 --f 4
    python -m repro obs tail events.jsonl --last 20
    python -m repro obs report --driver crash
    python -m repro fabric enqueue --driver crash --n 16,32 --seeds 0-4 --campaign night
    python -m repro fabric work --campaign night --workers 4
    python -m repro fabric status
    python -m repro fabric resume --campaign night --workers 2
    python -m repro report --live
"""

from __future__ import annotations

import argparse
import json
import sys
from random import Random


def _print_rows(rows: list[dict], fmt: str = "plain") -> None:
    from repro.analysis.tables import markdown_table, plain_table

    if fmt == "json":
        print(json.dumps(rows, indent=2))
    elif fmt == "md":
        print(markdown_table(rows))
    else:
        print(plain_table(rows))


def parse_int_list(text: str) -> list[int]:
    """``"16,32,64"`` and range syntax ``"0-4"`` (mixable): ints, in order.

    >>> parse_int_list("16,32,64")
    [16, 32, 64]
    >>> parse_int_list("0-2,7")
    [0, 1, 2, 7]
    """
    values: list[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        first, dash, last = part.partition("-")
        if dash and first:
            values.extend(range(int(first), int(last) + 1))
        else:
            values.append(int(part))
    if not values:
        raise ValueError(f"no integers in {text!r}")
    return values


def _parse_params(pairs: list[str]) -> dict:
    """``key=value`` strings to a dict, JSON-decoding each value.

    Engine parameters are JSON scalars only, so a structured JSON value
    (e.g. ``faults=[{"kind": "omission"}]``) stays the raw JSON *text* —
    drivers that take structured configuration accept it as a string.
    """
    params = {}
    for pair in pairs:
        key, equals, raw = pair.partition("=")
        if not equals:
            raise SystemExit(f"--param needs key=value, got {pair!r}")
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        if not isinstance(value, (str, int, float, bool, type(None))):
            value = raw
        params[key] = value
    return params


def cmd_crash(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import crash_run_summary

    row = crash_run_summary(
        args.n, args.f, args.seed,
        adversary=args.adversary if args.f else None,
    )
    _print_rows([row])
    return 0 if row["unique"] and row["strong"] else 1


def cmd_byzantine(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import byzantine_run_summary

    row = byzantine_run_summary(
        args.n, args.f, args.seed,
        strategy=args.strategy,
        f_assumed=max(args.f, 1),
        consensus_iterations=args.consensus_iterations,
    )
    _print_rows([row])
    ok = row["unique"] and row["strong"] and row["order_preserving"]
    return 0 if ok else 1


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import table1_rows

    rows = table1_rows(args.n, args.f, seed=args.seed)
    keep = ("algorithm", "rounds", "messages", "bits", "unique", "strong")
    _print_rows([{k: row.get(k) for k in keep} for row in rows])
    return 0 if all(row["unique"] and row["strong"] for row in rows) else 1


def cmd_lowerbound(args: argparse.Namespace) -> int:
    from repro.lowerbound.anonymous import (
        SilentRenamingExperiment,
        exact_success_probability,
        minimum_messages_for_success,
    )

    experiment = SilentRenamingExperiment(n=args.n, rng=Random(args.seed))
    budgets = sorted({0, args.n // 2, args.n - 2, args.n - 1, args.n})
    rows = [
        {
            "messages": budget,
            "measured": round(experiment.run(budget, args.trials), 3),
            "exact": round(exact_success_probability(args.n, budget), 3),
        }
        for budget in budgets
    ]
    _print_rows(rows)
    print(f"floor for success >= 3/4: "
          f"{minimum_messages_for_success(args.n, 0.75)} messages (n - 1)")
    return 0


def _open_store(args):
    from repro.engine.store import RunStore, default_store_path

    if getattr(args, "no_store", False):
        return None
    try:
        return RunStore(args.store if args.store else default_store_path())
    except (ValueError, RuntimeError) as error:
        # Bad scheme, missing path, or an uninstalled optional backend:
        # one line, no traceback.
        raise SystemExit(f"python -m repro: {error}") from None


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.engine.pool import run_requests
    from repro.engine.sweeps import SweepSpec

    try:
        spec = SweepSpec.make(
            args.driver,
            parse_int_list(args.n),
            parse_int_list(args.seeds),
            f=args.f,
            **_parse_params(args.param),
        )
        requests = spec.requests()
    except (TypeError, ValueError) as error:
        raise SystemExit(f"python -m repro sweep: error: {error}")
    store = _open_store(args)
    observer = None
    if args.telemetry:
        from repro.obs import EventRecorder

        observer = EventRecorder(profile=True)
    try:
        results = run_requests(
            requests, jobs=args.jobs, store=store,
            timeout=args.timeout, observer=observer,
        )
    finally:
        if store is not None:
            store.close()
    if observer is not None and observer.profiler:
        print(json.dumps(observer.profiler.report(), indent=2),
              file=sys.stderr)

    ok_rows = [r.row for r in results if r.ok]
    _print_rows(ok_rows, args.format)
    cached = sum(r.cached for r in results)
    failed = [r for r in results if not r.ok]
    print(
        f"\n{len(results)} runs: {len(results) - cached - len(failed)} "
        f"executed, {cached} cached, {len(failed)} failed"
        + (f"  [store: {store.path}]" if store is not None else ""),
        file=sys.stderr,
    )
    for result in failed:
        print(f"FAILED {result.request.describe()}\n{result.error}",
              file=sys.stderr)
    checks_ok = all(
        row.get("unique", True) and row.get("strong", True)
        for row in ok_rows
    )
    return 0 if not failed and checks_ok else 1


def cmd_falsify(args: argparse.Namespace) -> int:
    from repro.falsify.campaign import (
        CampaignConfig,
        replay_artifact,
        run_campaign,
        save_findings,
    )
    from repro.falsify.replay import ReproArtifact
    from repro.falsify.scenarios import DEFAULT_ADVERSARIES, DEFAULT_SCENARIOS

    if args.replay:
        artifact = ReproArtifact.load(args.replay)
        print(artifact.describe())
        error = replay_artifact(artifact)
        if error is None:
            print(
                f"NOT REPRODUCED: execution no longer violates "
                f"{artifact.invariant!r}",
                file=sys.stderr,
            )
            return 1
        print(f"reproduced: {error}")
        return 0

    config = CampaignConfig(
        scenarios=(tuple(s for s in args.scenario.split(",") if s)
                   if args.scenario else DEFAULT_SCENARIOS),
        n_values=tuple(parse_int_list(args.n)),
        seeds=tuple(parse_int_list(args.seeds)),
        f=args.f,
        adversaries=(tuple(a for a in args.adversary.split(",") if a)
                     if args.adversary else DEFAULT_ADVERSARIES),
        jobs=args.jobs,
        timeout=args.timeout,
        time_budget=args.time_budget,
        shrink=not args.no_shrink,
        params=_parse_params(args.param),
    )
    store = _open_store(args)

    def progress(done: int, total: int) -> None:
        print(f"probed {done}/{total}", file=sys.stderr)

    try:
        result = run_campaign(config, store=store, progress=progress)
    finally:
        if store is not None:
            store.close()

    print(
        f"\n{len(result.results)} probes: {result.executed} executed, "
        f"{result.cached} cached, {len(result.failures)} failed, "
        f"{result.skipped} skipped"
        + ("  [pool degraded to serial]" if result.degraded else ""),
        file=sys.stderr,
    )
    for failure in result.failures:
        print(f"FAILED {failure.request.describe()}\n{failure.error}",
              file=sys.stderr)

    if not result.findings:
        print("no invariant violations found")
        return 1 if result.failures else 0

    paths = save_findings(result, args.out)
    broken_replay = False
    for finding, path in zip(result.findings, paths):
        print(f"FALSIFIED {finding.describe()}\n  artifact: {path}")
        broken_replay = broken_replay or not finding.replayed
    print(f"{len(result.findings)} violation(s); artifacts in {args.out}")
    return 2 if broken_replay else 1


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.degradation import (
        SAFE_TERMINATED,
        classify_scenario,
        degradation_frontier,
        summarize_frontier,
    )

    scenarios = [s for s in args.scenario.split(",") if s]
    if args.faults:
        # One explicit spec instead of the ladder: classify it per
        # scenario (the single-cell form of the frontier).
        rows = []
        for scenario in scenarios:
            row = classify_scenario(
                scenario, args.n, args.f, args.seed, args.faults,
                adversary=args.adversary,
                watchdog_rounds=args.watchdog_rounds,
            )
            row.pop("_result", None)
            row["rung"] = "custom"
            rows.append(row)
    else:
        rows = degradation_frontier(
            scenarios, args.n, args.f, args.seed,
            adversary=args.adversary,
            watchdog_rounds=args.watchdog_rounds,
        )
    keep = ("scenario", "rung", "outcome", "rounds", "dropped",
            "duplicated", "corrupted", "held", "detail")
    _print_rows([{k: row.get(k) for k in keep} for row in rows],
                args.format)
    print()
    _print_rows(summarize_frontier(rows), args.format)
    # The fault-free control rung must terminate safely; anything else
    # means the harness (not the fault model) is broken.
    controls = [row for row in rows if row["rung"] == "none"]
    broken = [row for row in controls
              if row["outcome"] != SAFE_TERMINATED]
    for row in broken:
        print(f"CONTROL FAILED: {row['scenario']} without faults "
              f"classified {row['outcome']}", file=sys.stderr)
    return 1 if broken else 0


def cmd_obs(args: argparse.Namespace) -> int:
    handler = {
        "tail": _obs_tail,
        "profile": _obs_profile,
        "report": _obs_report,
    }[args.obs_command]
    return handler(args)


def _obs_tail(args: argparse.Namespace) -> int:
    """Validate an event file and print its most recent events."""
    from repro.obs import read_jsonl, validate_events

    try:
        events = read_jsonl(args.path)
    except (OSError, ValueError) as error:
        print(f"python -m repro obs tail: {error}", file=sys.stderr)
        return 1
    problems = validate_events(events)
    for problem in problems:
        print(f"INVALID {problem}", file=sys.stderr)
    for event in events[-args.last:]:
        print(json.dumps(event, sort_keys=True))
    print(f"\n{len(events)} events, {len(problems)} schema problems",
          file=sys.stderr)
    return 1 if problems else 0


def _obs_profile(args: argparse.Namespace) -> int:
    """Profile one scenario execution; print the phase report."""
    from repro.obs import EventRecorder, profile_scenario

    recorder = EventRecorder(profile=True)
    try:
        result, report = profile_scenario(
            args.scenario, args.n, args.f, args.seed,
            adversary=args.adversary, observer=recorder,
            params=_parse_params(args.param),
        )
    except Exception as error:
        print(f"python -m repro obs profile: {error}", file=sys.stderr)
        return 1
    if args.events:
        path = recorder.write_jsonl(args.events)
        print(f"wrote {len(recorder)} events to {path}", file=sys.stderr)
    print(json.dumps(report, indent=2))
    print(
        f"\n{args.scenario}: n={args.n} f={args.f} seed={args.seed} "
        f"adversary={args.adversary}: {result.rounds} rounds, "
        f"{result.metrics.correct_messages} messages, "
        f"{result.metrics.correct_bits} bits, "
        f"{len(result.crashed)} crashed",
        file=sys.stderr,
    )
    return 0


def _obs_report(args: argparse.Namespace) -> int:
    """Aggregate the store's telemetry table per driver."""
    store = _open_store(args)
    if store is None:
        print("python -m repro obs report: needs a store", file=sys.stderr)
        return 1
    try:
        rows = store.telemetry_rows(
            key="run", driver=args.driver, limit=args.limit)
    finally:
        store.close()
    if not rows:
        print("no telemetry recorded (run a sweep with --telemetry)")
        return 0
    by_driver: dict = {}
    for _hash, _key, value in rows:
        bucket = by_driver.setdefault(value.get("driver", "?"), {
            "runs": 0, "failed": 0, "wall_s": 0.0, "retries": 0,
        })
        bucket["runs"] += 1
        bucket["failed"] += value.get("status") != "ok"
        bucket["wall_s"] += value.get("elapsed_s") or 0.0
        bucket["retries"] += (value.get("attempts") or 1) > 1
    _print_rows([
        {
            "driver": driver,
            "runs": stats["runs"],
            "failed": stats["failed"],
            "retries": stats["retries"],
            "wall_s": round(stats["wall_s"], 3),
            "mean_s": round(stats["wall_s"] / stats["runs"], 4),
        }
        for driver, stats in sorted(by_driver.items())
    ], args.format)
    return 0


def _import_bench(name: str):
    """Import ``benchmarks.<name>``, which lives next to ``src/``.

    ``benchmarks/`` is part of the repo checkout, not the installed
    package, so when ``repro`` was imported from an installed location
    or another cwd the repo root is added to ``sys.path`` first.
    """
    import importlib

    try:
        return importlib.import_module(f"benchmarks.{name}")
    except ImportError:
        from pathlib import Path

        import repro

        root = Path(repro.__file__).resolve().parents[2]
        if not (root / "benchmarks" / f"{name}.py").is_file():
            raise SystemExit(
                f"python -m repro {name}: cannot locate "
                f"benchmarks/{name}.py; run from a repo checkout"
            )
        sys.path.insert(0, str(root))
        return importlib.import_module(f"benchmarks.{name}")


def cmd_perf(args: argparse.Namespace) -> int:
    perf = _import_bench("perf")
    argv: list[str] = ["--out", args.out]
    if args.quick:
        argv.append("--quick")
    if args.n:
        argv.extend(["--n", args.n])
    if args.repeat is not None:
        argv.extend(["--repeat", str(args.repeat)])
    if args.workloads:
        argv.extend(["--workloads", args.workloads])
    return perf.main(argv)


def cmd_serve(args: argparse.Namespace) -> int:
    serve = _import_bench("serve")
    argv: list[str] = ["--out", args.out]
    if args.quick:
        argv.append("--quick")
    if args.shards:
        argv.extend(["--shards", args.shards])
    if args.requests is not None:
        argv.extend(["--requests", str(args.requests)])
    if args.clients is not None:
        argv.extend(["--clients", str(args.clients)])
    if args.seed is not None:
        argv.extend(["--seed", str(args.seed)])
    if args.events:
        argv.extend(["--events", args.events])
    return serve.main(argv)


def cmd_chaos(args: argparse.Namespace) -> int:
    chaos = _import_bench("chaos")
    argv: list[str] = ["--out", args.out]
    if args.quick:
        argv.append("--quick")
    if args.requests is not None:
        argv.extend(["--requests", str(args.requests)])
    if args.shards is not None:
        argv.extend(["--shards", str(args.shards)])
    if args.seed is not None:
        argv.extend(["--seed", str(args.seed)])
    if args.resilience:
        argv.extend(["--resilience", args.resilience])
    if args.events:
        argv.extend(["--events", args.events])
    return chaos.main(argv)


def _ledger_json(store, run, include: bool):
    if not include:
        return None
    ledger = store.ledger(run.hash)
    if ledger is None:
        return None
    return dict(zip(("messages_per_round", "bits_per_round"), ledger))


def cmd_runs(args: argparse.Namespace) -> int:
    from datetime import datetime, timezone

    store = _open_store(args)
    try:
        stored = store.query(driver=args.driver, n=args.n,
                             status=args.status, limit=args.limit)
        if args.export == "json":
            print(json.dumps(
                [
                    {
                        "hash": run.hash, "driver": run.driver, "n": run.n,
                        "f": run.f, "seed": run.seed, "params": run.params,
                        "code_version": run.code_version,
                        "status": run.status, "row": run.row,
                        "error": run.error, "elapsed": run.elapsed,
                        "created": run.created, "attempts": run.attempts,
                        "ledger": _ledger_json(store, run, args.ledgers),
                    }
                    for run in stored
                ],
                indent=2,
            ))
        elif args.export == "md":
            _print_rows(
                [run.row for run in stored if run.ok and run.row], "md"
            )
        else:
            rows = [
                {
                    "hash": run.hash[:10],
                    "driver": run.driver,
                    "n": run.n,
                    "f": run.f,
                    "seed": run.seed,
                    "status": run.status,
                    "rounds": (run.row or {}).get("rounds"),
                    "messages": (run.row or {}).get("messages"),
                    "bits": (run.row or {}).get("bits"),
                    "attempts": run.attempts,
                    "elapsed_s": round(run.elapsed or 0.0, 3),
                    "created": datetime.fromtimestamp(
                        run.created, tz=timezone.utc
                    ).strftime("%Y-%m-%d %H:%M:%S"),
                }
                for run in stored
            ]
            _print_rows(rows)
            stats = store.stats()
            print(
                f"\n{stats['ok']} ok / {stats['failed']} failed of "
                f"{stats['total']} stored runs  [store: {stats['path']}]",
                file=sys.stderr,
            )
    finally:
        store.close()
    return 0


def cmd_runs_export(args: argparse.Namespace) -> int:
    from repro.engine.export import export_store

    formats = [fmt for fmt, wanted in
               (("jsonl", args.jsonl), ("parquet", args.parquet)) if wanted]
    if not formats:
        formats = ["jsonl"]
    store = _open_store(args)
    try:
        try:
            written = export_store(store, args.out, formats=formats,
                                   driver=args.driver, status=args.status)
        except RuntimeError as error:
            print(f"python -m repro runs export: {error}", file=sys.stderr)
            return 1
        exported = len(store.query(driver=args.driver, status=args.status))
    finally:
        store.close()
    for table in ("runs", "ledgers", "telemetry"):
        for path in written[table]:
            print(path)
    print(f"\nexported {exported} runs (+ ledgers, telemetry) as "
          f"{'/'.join(formats)} under {args.out}", file=sys.stderr)
    return 0


def _store_url(args) -> str:
    from repro.engine.backends import resolve_store_url
    from repro.engine.store import default_store_path

    try:
        return resolve_store_url(
            args.store if args.store else default_store_path())
    except (ValueError, RuntimeError) as error:
        raise SystemExit(f"python -m repro: {error}") from None


def cmd_fabric(args: argparse.Namespace) -> int:
    handler = {
        "enqueue": _fabric_enqueue,
        "work": _fabric_work,
        "status": _fabric_status,
        "resume": _fabric_resume,
    }[args.fabric_command]
    return handler(args)


def _fabric_enqueue(args: argparse.Namespace) -> int:
    """Fan a sweep out as leasable tasks in the store's queue."""
    from repro.engine.fabric import enqueue_campaign
    from repro.engine.sweeps import SweepSpec

    try:
        spec = SweepSpec.make(
            args.driver,
            parse_int_list(args.n),
            parse_int_list(args.seeds),
            f=args.f,
            **_parse_params(args.param),
        )
        requests = spec.requests()
    except (TypeError, ValueError) as error:
        raise SystemExit(f"python -m repro fabric enqueue: error: {error}")
    url = _store_url(args)
    total, new = enqueue_campaign(url, args.campaign, requests,
                                  events_dir=args.events)
    print(f"campaign {args.campaign!r}: {total} tasks ({new} new, "
          f"{total - new} already enqueued)  [store: {url}]")
    return 0


def _fabric_config(args: argparse.Namespace):
    from repro.engine.fabric import FabricConfig

    try:
        return FabricConfig(
            store=_store_url(args),
            campaign=args.campaign,
            lease_ttl=args.lease_ttl,
            task_timeout=args.timeout,
            max_task_attempts=args.max_attempts,
            forever=getattr(args, "forever", False),
            events_dir=args.events,
        )
    except ValueError as error:
        raise SystemExit(f"python -m repro fabric: error: {error}")


def _print_worker_summaries(summaries: list[dict]) -> int:
    crashed = 0
    for summary in summaries:
        line = (f"worker {summary['worker']}: {summary['reason']} — "
                f"{summary['settled']} settled, {summary['failed']} failed, "
                f"{summary['cached']} cached, "
                f"{summary['leases_lost']} leases lost")
        if summary.get("events"):
            line += f"  [events: {summary['events']}]"
        print(line, file=sys.stderr)
        crashed += summary["reason"] not in ("drained", "sigterm", "stopped")
    return 1 if crashed else 0


def _fabric_work(args: argparse.Namespace) -> int:
    """Run worker processes until the campaign drains (or SIGTERM)."""
    from repro.engine.fabric import run_workers

    try:
        summaries = run_workers(_fabric_config(args), args.workers)
    except RuntimeError as error:
        raise SystemExit(f"python -m repro fabric work: {error}")
    return _print_worker_summaries(summaries)


def _fabric_resume(args: argparse.Namespace) -> int:
    """Reclaim leases from dead workers, then drain what remains."""
    from repro.engine.fabric import resume_campaign

    try:
        summaries = resume_campaign(_fabric_config(args), args.workers)
    except RuntimeError as error:
        raise SystemExit(f"python -m repro fabric resume: {error}")
    return _print_worker_summaries(summaries)


def _campaign_rows(status: dict) -> list[dict]:
    return [
        {
            "campaign": name,
            "pending": per["pending"],
            "leased": per["leased"],
            "settled": per["settled"],
            "failed": per["failed"],
            "total": per["total"],
        }
        for name, per in sorted(status["campaigns"].items())
    ]


def _fabric_status(args: argparse.Namespace) -> int:
    """One snapshot of the queue: per-campaign counts + live leases."""
    from repro.engine.fabric import campaign_status

    status = campaign_status(_store_url(args), args.campaign)
    if args.format == "json":
        print(json.dumps(status, indent=2))
        return 0
    if not status["campaigns"]:
        print("no campaigns enqueued")
        return 0
    _print_rows(_campaign_rows(status), args.format)
    for lease in status["leases"]:
        print(f"  leased {lease['task'][:10]} ({lease['campaign']}) by "
              f"{lease['owner']} — attempt {lease['attempts']}, expires "
              f"in {lease['expires_in']}s", file=sys.stderr)
    print(f"\n{status['outstanding']} outstanding  "
          f"[store: {status['store']}]", file=sys.stderr)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Campaign + store progress view; ``--live`` polls until drained."""
    import time as time_module

    from repro.engine.fabric import campaign_status
    from repro.engine.store import RunStore

    url = _store_url(args)
    while True:
        status = campaign_status(url, args.campaign)
        with RunStore(url) as store:
            stats = store.stats()
        if status["campaigns"]:
            _print_rows(_campaign_rows(status), args.format)
            for lease in status["leases"]:
                print(f"  leased {lease['task'][:10]} by {lease['owner']} "
                      f"(attempt {lease['attempts']}, expires in "
                      f"{lease['expires_in']}s)")
        else:
            print("no campaigns enqueued")
        print(f"store: {stats['ok']} ok / {stats['failed']} failed of "
              f"{stats['total']} runs  [{stats['path']}]")
        if not args.live or status["outstanding"] == 0:
            return 0
        time_module.sleep(args.interval)
        print()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    crash = sub.add_parser("crash", help="run the crash-resilient algorithm")
    crash.add_argument("--n", type=int, default=64)
    crash.add_argument("--f", type=int, default=0,
                       help="crash budget for the adversary")
    crash.add_argument("--adversary", choices=["hunter", "random"],
                       default="hunter")
    crash.add_argument("--seed", type=int, default=1)
    crash.set_defaults(func=cmd_crash)

    byzantine = sub.add_parser(
        "byzantine", help="run the Byzantine-resilient algorithm"
    )
    byzantine.add_argument("--n", type=int, default=16)
    byzantine.add_argument("--f", type=int, default=0,
                           help="number of corrupted nodes")
    byzantine.add_argument(
        "--strategy",
        choices=["withholder", "equivocator", "silent", "crash-sim"],
        default="withholder",
    )
    byzantine.add_argument("--consensus-iterations", type=int, default=8)
    byzantine.add_argument("--seed", type=int, default=1)
    byzantine.set_defaults(func=cmd_byzantine)

    table1 = sub.add_parser("table1", help="regenerate Table 1 at one (n, f)")
    table1.add_argument("--n", type=int, default=32)
    table1.add_argument("--f", type=int, default=4)
    table1.add_argument("--seed", type=int, default=1)
    table1.set_defaults(func=cmd_table1)

    lowerbound = sub.add_parser(
        "lowerbound", help="the Theorem 1.4 message-floor experiment"
    )
    lowerbound.add_argument("--n", type=int, default=48)
    lowerbound.add_argument("--trials", type=int, default=2000)
    lowerbound.add_argument("--seed", type=int, default=1)
    lowerbound.set_defaults(func=cmd_lowerbound)

    sweep = sub.add_parser(
        "sweep",
        help="run a parallel, store-backed sweep over n x seeds",
    )
    sweep.add_argument(
        "--driver", default="crash",
        choices=["crash", "byzantine", "obg", "gossip", "balls",
                 "reelection", "falsify", "faults", "serve"],
        help="named summary driver from repro.engine.sweeps",
    )
    sweep.add_argument("--n", default="16,32,64",
                       help="comma/range list of n values, e.g. 16,32,64")
    sweep.add_argument("--seeds", default="0-4",
                       help="comma/range list of seeds, e.g. 0-4 or 1,3,5")
    sweep.add_argument("--f", default="0",
                       help="fault budget as an expression in n, "
                            "e.g. 0, n//8, 'max(1, n//4)'")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial, in-process)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-task seconds before a chunk is failed")
    sweep.add_argument("--param", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="extra driver keyword (JSON value); repeatable")
    sweep.add_argument("--store", default=None,
                       help="run-store path or scheme://path URL "
                            "(default $REPRO_STORE or "
                            ".repro/runs.sqlite)")
    sweep.add_argument("--no-store", action="store_true",
                       help="run without reading or writing the store")
    sweep.add_argument("--format", choices=["plain", "md", "json"],
                       default="plain")
    sweep.add_argument("--telemetry", action="store_true",
                       help="record engine events + per-driver timings; "
                            "persists telemetry rows into the store")
    sweep.set_defaults(func=cmd_sweep)

    falsify = sub.add_parser(
        "falsify",
        help="hunt for invariant violations; shrink and save repro "
             "artifacts",
    )
    falsify.add_argument("--scenario", default=None,
                         help="comma list of scenarios (default: the "
                              "clean built-in scenarios)")
    falsify.add_argument("--n", default="8,12",
                         help="comma/range list of n values")
    falsify.add_argument("--seeds", default="0-3",
                         help="comma/range list of seeds")
    falsify.add_argument("--f", default="max(1, n // 4)",
                         help="crash budget as an expression in n")
    falsify.add_argument("--adversary", default=None,
                         help="comma list of adversaries "
                              "(default: random,hunter,partitioner)")
    falsify.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = serial, in-process)")
    falsify.add_argument("--timeout", type=float, default=None,
                         help="per-probe seconds before a retry/failure")
    falsify.add_argument("--time-budget", type=float, default=None,
                         help="stop launching new probe batches after "
                              "this many seconds")
    falsify.add_argument("--no-shrink", action="store_true",
                         help="save raw recorded schedules without "
                              "delta-debugging them")
    falsify.add_argument("--out", default=".repro/repros",
                         help="directory for repro artifacts")
    falsify.add_argument("--param", action="append", default=[],
                         metavar="KEY=VALUE",
                         help="extra scenario keyword (JSON value); "
                              "repeatable")
    falsify.add_argument("--store", default=None,
                         help="run-store path or scheme://path URL "
                            "(default $REPRO_STORE or "
                              ".repro/runs.sqlite)")
    falsify.add_argument("--no-store", action="store_true",
                         help="run without reading or writing the store")
    falsify.add_argument("--replay", default=None, metavar="PATH",
                         help="strictly replay one repro artifact and "
                              "exit (0 = reproduced)")
    falsify.set_defaults(func=cmd_falsify)

    faults = sub.add_parser(
        "faults",
        help="degradation frontier: classify scenarios under an "
             "escalating fault ladder",
    )
    faults.add_argument("--scenario", default="crash,gossip",
                        help="comma list of scenarios "
                             "(default: crash,gossip)")
    faults.add_argument("--n", type=int, default=16)
    faults.add_argument("--f", type=int, default=0,
                        help="crash budget for --adversary (default 0)")
    faults.add_argument("--seed", type=int, default=1)
    faults.add_argument("--adversary", default="none",
                        help="none, random, hunter, partitioner "
                             "(composed with the link faults)")
    faults.add_argument("--faults", default=None, metavar="JSON",
                        help="classify one explicit fault spec instead "
                             "of the default ladder")
    faults.add_argument("--watchdog-rounds", type=int, default=None,
                        help="stall watchdog override (default 32n+256)")
    faults.add_argument("--format", choices=["plain", "md", "json"],
                        default="plain")
    faults.set_defaults(func=cmd_faults)

    perf = sub.add_parser(
        "perf",
        help="time the simulator hot path; write BENCH_perf.json",
    )
    perf.add_argument("--quick", action="store_true",
                      help="small sizes, one repeat (CI smoke)")
    perf.add_argument("--n", default=None,
                      help="comma list of n values overriding the matrix")
    perf.add_argument("--repeat", type=int, default=None,
                      help="timing repeats per benchmark, best-of")
    perf.add_argument("--out", default="BENCH_perf.json",
                      help="output JSON path (default BENCH_perf.json)")
    perf.add_argument("--workloads", default=None,
                      help="comma list of workloads (broadcast,crash); "
                           "e.g. --workloads broadcast for very large n")
    perf.set_defaults(func=cmd_perf)

    serve = sub.add_parser(
        "serve",
        help="load-benchmark the renaming service; write BENCH_serve.json",
    )
    serve.add_argument("--quick", action="store_true",
                       help="~5k requests, 2 shard counts (CI smoke)")
    serve.add_argument("--shards", default=None,
                       help="comma list of shard counts overriding the "
                            "matrix (default 2,4,8)")
    serve.add_argument("--requests", type=int, default=None,
                       help="requests per run (default 120000)")
    serve.add_argument("--clients", type=int, default=None,
                       help="client identities (default 256)")
    serve.add_argument("--seed", type=int, default=None,
                       help="workload + protocol seed (default 0)")
    serve.add_argument("--events", default=None, metavar="PATH",
                       help="also write the serve event stream as JSONL")
    serve.add_argument("--out", default="BENCH_serve.json",
                       help="output JSON path (default BENCH_serve.json)")
    serve.set_defaults(func=cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="serve-level chaos frontier (resilient vs baseline); "
             "write BENCH_chaos.json",
    )
    chaos.add_argument("--quick", action="store_true",
                       help="4 rungs over a 2k-request trace (CI smoke)")
    chaos.add_argument("--requests", type=int, default=None,
                       help="requests per run (default 16000)")
    chaos.add_argument("--shards", type=int, default=None,
                       help="shard count (default 4)")
    chaos.add_argument("--seed", type=int, default=None,
                       help="workload + protocol seed (default 7)")
    chaos.add_argument("--resilience", default=None, metavar="JSON",
                       help="resilience policy override for the "
                            "resilient arm")
    chaos.add_argument("--events", default=None, metavar="PATH",
                       help="also write the serve event stream as JSONL")
    chaos.add_argument("--out", default="BENCH_chaos.json",
                       help="output JSON path (default BENCH_chaos.json)")
    chaos.set_defaults(func=cmd_chaos)

    obs = sub.add_parser(
        "obs", help="observability: inspect events, profile, telemetry"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_tail = obs_sub.add_parser(
        "tail", help="validate an event JSONL file and print the tail"
    )
    obs_tail.add_argument("path", help="event file written by the recorder")
    obs_tail.add_argument("--last", type=int, default=20,
                          help="events to print (default 20)")
    obs_tail.set_defaults(func=cmd_obs)

    obs_profile = obs_sub.add_parser(
        "profile", help="run one scenario with the phase profiler on"
    )
    obs_profile.add_argument("--scenario", default="crash",
                             help="falsification scenario name "
                                  "(default: crash)")
    obs_profile.add_argument("--n", type=int, default=32)
    obs_profile.add_argument("--f", type=int, default=4)
    obs_profile.add_argument("--seed", type=int, default=1)
    obs_profile.add_argument("--adversary", default="random",
                             help="none, random, hunter, partitioner")
    obs_profile.add_argument("--events", default=None, metavar="PATH",
                             help="also write the event stream as JSONL")
    obs_profile.add_argument("--param", action="append", default=[],
                             metavar="KEY=VALUE",
                             help="extra scenario keyword (JSON value); "
                                  "repeatable")
    obs_profile.set_defaults(func=cmd_obs)

    obs_report = obs_sub.add_parser(
        "report", help="aggregate stored sweep telemetry per driver"
    )
    obs_report.add_argument("--driver", default=None,
                            help="restrict to one driver")
    obs_report.add_argument("--limit", type=int, default=None)
    obs_report.add_argument("--format", choices=["plain", "md", "json"],
                            default="plain")
    obs_report.add_argument("--store", default=None,
                            help="run-store path or scheme://path URL "
                            "(default $REPRO_STORE or "
                                 ".repro/runs.sqlite)")
    obs_report.set_defaults(func=cmd_obs)

    fabric = sub.add_parser(
        "fabric",
        help="crash-resumable distributed sweeps: enqueue, work, "
             "status, resume",
    )
    fabric_sub = fabric.add_subparsers(dest="fabric_command", required=True)

    def _fabric_store_args(p, events_help):
        p.add_argument("--campaign", default="default",
                       help="campaign name (default: 'default')")
        p.add_argument("--store", default=None,
                       help="run-store path or scheme://path URL (default "
                            "$REPRO_STORE or .repro/runs.sqlite)")
        p.add_argument("--events", default=None, metavar="DIR",
                       help=events_help)

    fabric_enqueue = fabric_sub.add_parser(
        "enqueue", help="fan a sweep out as leasable queue tasks"
    )
    fabric_enqueue.add_argument(
        "--driver", default="crash",
        choices=["crash", "byzantine", "obg", "gossip", "balls",
                 "reelection", "falsify", "faults", "serve"],
        help="named summary driver from repro.engine.sweeps",
    )
    fabric_enqueue.add_argument("--n", default="16,32,64",
                                help="comma/range list of n values")
    fabric_enqueue.add_argument("--seeds", default="0-4",
                                help="comma/range list of seeds")
    fabric_enqueue.add_argument("--f", default="0",
                                help="fault budget as an expression in n")
    fabric_enqueue.add_argument("--param", action="append", default=[],
                                metavar="KEY=VALUE",
                                help="extra driver keyword (JSON value); "
                                     "repeatable")
    _fabric_store_args(fabric_enqueue,
                       "directory for the enqueue event record")
    fabric_enqueue.set_defaults(func=cmd_fabric)

    def _fabric_worker_args(p):
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes (default 1, in-process)")
        p.add_argument("--lease-ttl", type=float, default=30.0,
                       help="seconds a lease survives without a "
                            "heartbeat (default 30)")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-task seconds before an isolated "
                            "execution is failed")
        p.add_argument("--max-attempts", type=int, default=5,
                       help="lease generations before a task is "
                            "poisoned (default 5)")
        _fabric_store_args(p, "directory for per-worker fabric@1 "
                              "event streams")

    fabric_work = fabric_sub.add_parser(
        "work", help="run workers until the campaign drains"
    )
    _fabric_worker_args(fabric_work)
    fabric_work.add_argument("--forever", action="store_true",
                             help="keep polling after the queue drains "
                                  "(a standing fleet)")
    fabric_work.set_defaults(func=cmd_fabric)

    fabric_resume = fabric_sub.add_parser(
        "resume",
        help="reclaim leases from dead workers, then drain the rest",
    )
    _fabric_worker_args(fabric_resume)
    fabric_resume.set_defaults(func=cmd_fabric, forever=False)

    fabric_status = fabric_sub.add_parser(
        "status", help="per-campaign queue counts and live leases"
    )
    fabric_status.add_argument("--campaign", default=None,
                               help="restrict to one campaign")
    fabric_status.add_argument("--store", default=None,
                               help="run-store path or scheme://path URL "
                                    "(default $REPRO_STORE or "
                                    ".repro/runs.sqlite)")
    fabric_status.add_argument("--format", choices=["plain", "md", "json"],
                               default="plain")
    fabric_status.set_defaults(func=cmd_fabric)

    report = sub.add_parser(
        "report",
        help="campaign + store progress view (--live polls until "
             "drained)",
    )
    report.add_argument("--live", action="store_true",
                        help="refresh until no tasks remain outstanding")
    report.add_argument("--interval", type=float, default=2.0,
                        help="seconds between --live refreshes (default 2)")
    report.add_argument("--campaign", default=None,
                        help="restrict to one campaign")
    report.add_argument("--store", default=None,
                        help="run-store path or scheme://path URL (default "
                             "$REPRO_STORE or .repro/runs.sqlite)")
    report.add_argument("--format", choices=["plain", "md", "json"],
                        default="plain")
    report.set_defaults(func=cmd_report)

    runs = sub.add_parser(
        "runs", help="list/query/export cached runs from the store"
    )
    runs.add_argument("--driver", default=None)
    runs.add_argument("--n", type=int, default=None)
    runs.add_argument("--status", choices=["ok", "failed"], default=None)
    runs.add_argument("--limit", type=int, default=None)
    runs.add_argument("--export", choices=["plain", "md", "json"],
                      default="plain")
    runs.add_argument("--ledgers", action="store_true",
                      help="include per-round ledgers in --export json")
    runs.add_argument("--store", default=None,
                      help="run-store path or scheme://path URL (default "
                           "$REPRO_STORE or .repro/runs.sqlite)")
    runs.set_defaults(func=cmd_runs, runs_command=None)

    runs_sub = runs.add_subparsers(dest="runs_command")
    runs_export = runs_sub.add_parser(
        "export",
        help="dump runs+ledgers+telemetry as columnar files for "
             "analytics SQL",
    )
    runs_export.add_argument("--out", default=".repro/export",
                             help="output directory (default .repro/export)")
    runs_export.add_argument("--parquet", action="store_true",
                             help="write Parquet files (needs pyarrow "
                                  "or duckdb)")
    runs_export.add_argument("--jsonl", action="store_true",
                             help="write JSONL files (stdlib only; the "
                                  "default when no format is given)")
    runs_export.add_argument("--driver", default=None,
                             help="restrict the export to one driver")
    runs_export.add_argument("--status", choices=["ok", "failed"],
                             default=None)
    runs_export.add_argument("--store", default=None,
                             help="run-store path or scheme://path URL "
                                  "(default $REPRO_STORE or "
                                  ".repro/runs.sqlite)")
    runs_export.set_defaults(func=cmd_runs_export)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
