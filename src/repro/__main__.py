"""Command-line interface: run the paper's algorithms from a shell.

Examples::

    python -m repro crash --n 64 --f 8 --adversary hunter
    python -m repro byzantine --n 16 --f 2 --strategy withholder
    python -m repro table1 --n 32 --f 4
    python -m repro lowerbound --n 48
"""

from __future__ import annotations

import argparse
import sys
from random import Random


def _print_rows(rows: list[dict]) -> None:
    from repro.analysis.tables import plain_table

    print(plain_table(rows))


def cmd_crash(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import crash_run_summary

    row = crash_run_summary(
        args.n, args.f, args.seed,
        adversary=args.adversary if args.f else None,
    )
    _print_rows([row])
    return 0 if row["unique"] and row["strong"] else 1


def cmd_byzantine(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import byzantine_run_summary

    row = byzantine_run_summary(
        args.n, args.f, args.seed,
        strategy=args.strategy,
        f_assumed=max(args.f, 1),
        consensus_iterations=args.consensus_iterations,
    )
    _print_rows([row])
    ok = row["unique"] and row["strong"] and row["order_preserving"]
    return 0 if ok else 1


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import table1_rows

    rows = table1_rows(args.n, args.f, seed=args.seed)
    keep = ("algorithm", "rounds", "messages", "bits", "unique", "strong")
    _print_rows([{k: row.get(k) for k in keep} for row in rows])
    return 0


def cmd_lowerbound(args: argparse.Namespace) -> int:
    from repro.lowerbound.anonymous import (
        SilentRenamingExperiment,
        exact_success_probability,
        minimum_messages_for_success,
    )

    experiment = SilentRenamingExperiment(n=args.n, rng=Random(args.seed))
    budgets = sorted({0, args.n // 2, args.n - 2, args.n - 1, args.n})
    rows = [
        {
            "messages": budget,
            "measured": round(experiment.run(budget, args.trials), 3),
            "exact": round(exact_success_probability(args.n, budget), 3),
        }
        for budget in budgets
    ]
    _print_rows(rows)
    print(f"floor for success >= 3/4: "
          f"{minimum_messages_for_success(args.n, 0.75)} messages (n - 1)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    crash = sub.add_parser("crash", help="run the crash-resilient algorithm")
    crash.add_argument("--n", type=int, default=64)
    crash.add_argument("--f", type=int, default=0,
                       help="crash budget for the adversary")
    crash.add_argument("--adversary", choices=["hunter", "random"],
                       default="hunter")
    crash.add_argument("--seed", type=int, default=1)
    crash.set_defaults(func=cmd_crash)

    byzantine = sub.add_parser(
        "byzantine", help="run the Byzantine-resilient algorithm"
    )
    byzantine.add_argument("--n", type=int, default=16)
    byzantine.add_argument("--f", type=int, default=0,
                           help="number of corrupted nodes")
    byzantine.add_argument(
        "--strategy",
        choices=["withholder", "equivocator", "silent", "crash-sim"],
        default="withholder",
    )
    byzantine.add_argument("--consensus-iterations", type=int, default=8)
    byzantine.add_argument("--seed", type=int, default=1)
    byzantine.set_defaults(func=cmd_byzantine)

    table1 = sub.add_parser("table1", help="regenerate Table 1 at one (n, f)")
    table1.add_argument("--n", type=int, default=32)
    table1.add_argument("--f", type=int, default=4)
    table1.add_argument("--seed", type=int, default=1)
    table1.set_defaults(func=cmd_table1)

    lowerbound = sub.add_parser(
        "lowerbound", help="the Theorem 1.4 message-floor experiment"
    )
    lowerbound.add_argument("--n", type=int, default=48)
    lowerbound.add_argument("--trials", type=int, default=2000)
    lowerbound.add_argument("--seed", type=int, default=1)
    lowerbound.set_defaults(func=cmd_lowerbound)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
