"""In-committee agreement subprotocols (Lemmas 3.3 and 3.4).

The Byzantine-resilient renaming algorithm repeatedly runs two
primitives among the elected committee:

* :func:`~repro.consensus.validator.validator` -- the weak validator of
  Lenzen & Sheikholeslami [29] as specified by Lemma 3.3: strong
  validity plus weak agreement in exactly 2 rounds.
* :func:`~repro.consensus.binary.binary_consensus` -- classical binary
  consensus (Lemma 3.4), realised with graded broadcast plus a shared
  coin, terminating in a fixed ``O(log n)`` number of rounds with
  failure probability ``2^-iterations``.

Both are generator *sub-programs*: a committee member's main program
delegates to them with ``yield from``, so their rounds execute inside
the same network execution and are charged to the same metrics ledger.
They communicate through a :class:`~repro.consensus.comm.CommitteeComm`,
which pins down the member's committee view, the Byzantine bound
``b_max``, and a monotone step counter that lets receivers discard
stale or replayed votes.
"""

from repro.consensus.binary import binary_consensus
from repro.consensus.comm import CommitteeComm, SubVote, exchange
from repro.consensus.graded import BOTTOM, graded_broadcast
from repro.consensus.validator import validator

__all__ = [
    "BOTTOM",
    "CommitteeComm",
    "SubVote",
    "binary_consensus",
    "exchange",
    "graded_broadcast",
    "validator",
]
