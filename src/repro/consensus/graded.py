"""Graded broadcast: the 2-round core of Validator and Consensus.

A Feldman-Micali-style gradecast adapted to asymmetric committee views.
Every correct member ``v`` knows its view ``C_v`` with the invariants
(Lemma 3.5): the set ``G`` of correct members is contained in every
correct view, ``|G| >= c_g``, and the Byzantine members across all
views number ``|B| <= b_max < c_g / 2``.

Round 1 -- every member broadcasts its input to its view.
Round 2 -- ``v`` echoes the plurality value ``x`` of round 1 if it was
reported by at least ``m_v - b_max`` senders (``m_v`` = number of round-1
senders ``v`` heard), else echoes ``BOTTOM``.
Grading  -- with ``m'_v`` round-2 senders and ``c`` echoes of the
plurality non-BOTTOM echo ``x``:

* ``c >= m'_v - b_max``  -> grade 2, output ``x``
* ``c >= b_max + 1``     -> grade 1, output ``x``
* otherwise              -> grade 0, output ``BOTTOM``

Guarantees (proved under the invariants above, and property-tested in
``tests/test_consensus_properties.py``):

1. If all correct members input the same ``x``: every correct member
   gets grade 2 and output ``x``.
2. Any two correct members with grade >= 1 output the same value, and
   that value was the *input of some correct member*.
3. If any correct member gets grade 2 with ``x``, every correct member
   gets grade >= 1 with ``x``.

The threshold arithmetic: a correct echo of ``x`` implies at least
``|G| - b_max > b_max`` correct members input ``x``, so two different
values cannot both be echoed by correct members, and ``b_max`` fake
echoes can never reach the grade-1 bar on their own.
"""

from __future__ import annotations

from repro.consensus.comm import CommitteeComm, exchange, plurality

#: Sentinel echoed when no value is sufficiently popular.
BOTTOM = "__bottom__"


def graded_broadcast(comm: CommitteeComm, value: object, width: int):
    """Generator sub-program; returns ``(grade, output)``."""
    received = yield from exchange(comm, "gb-input", value, width)
    echo: object = BOTTOM
    if received:
        popular, count = plurality(received.values())
        if count >= len(received) - comm.b_max and popular != BOTTOM:
            echo = popular

    echoes = yield from exchange(comm, "gb-echo", echo, width)
    substantive = [v for v in echoes.values() if v != BOTTOM]
    if not substantive:
        return 0, BOTTOM
    popular, count = plurality(substantive)
    if count >= len(echoes) - comm.b_max:
        return 2, popular
    if count >= comm.b_max + 1:
        return 1, popular
    return 0, BOTTOM
