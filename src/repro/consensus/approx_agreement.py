"""Synchronous crash-tolerant approximate agreement.

The primitive underlying Okun's order-preserving renaming [32] (one of
Table 1's rows): each node starts with a real value; after the
protocol, all surviving nodes hold values within ``epsilon`` of each
other, inside the range of the original inputs.

Construction (classic midpoint averaging): each round every node
broadcasts its value and adopts ``(min + max) / 2`` of the values it
received.  All alive nodes receive every alive sender's value, so
their received sets differ only by crashed senders' partial
deliveries; since every received value lies inside the current honest
range, the diameter at least halves each round, and
``ceil(log2(range / epsilon))`` rounds reach epsilon-agreement.

Provided both as a standalone protocol (:class:`ApproxAgreementNode`)
and as the building block the renaming literature layers on top; the
property tests in ``tests/test_approx_agreement.py`` check validity and
the halving rate under adversarial mid-send crash schedules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.adversary.base import CrashAdversary
from repro.sim.messages import CostModel, Message, broadcast
from repro.sim.node import Context, Process, Program
from repro.sim.runner import ExecutionResult, run_network

#: Fixed-point denominator: values travel as integers scaled by this,
#: keeping every message at O(log N + log PRECISION) bits.
PRECISION = 1 << 20


@dataclass(frozen=True)
class ValueReport(Message):
    """One round's value broadcast, fixed-point encoded."""

    scaled_value: int

    def payload_bits(self, cost: CostModel) -> int:
        return 20 + cost.index_bits


def rounds_needed(initial_range: float, epsilon: float) -> int:
    """Rounds to shrink ``initial_range`` below ``epsilon`` at rate 1/2."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if initial_range <= epsilon:
        return 0
    return math.ceil(math.log2(initial_range / epsilon))


class ApproxAgreementNode(Process):
    """One participant of midpoint approximate agreement.

    ``initial`` is the node's input; ``rounds`` must be identical at
    every node (all nodes know the input range bound and epsilon).
    """

    def __init__(self, uid: int, initial: float, rounds: int):
        super().__init__(uid)
        if rounds < 0:
            raise ValueError(f"rounds must be >= 0, got {rounds}")
        self.initial = initial
        self.rounds = rounds
        self.value = initial

    def program(self, ctx: Context) -> Program:
        self.value = self.initial
        for _round in range(self.rounds):
            report = ValueReport(round(self.value * PRECISION))
            inbox = yield broadcast(ctx.n, report)
            received = [
                envelope.message.scaled_value / PRECISION
                for envelope in inbox
                if isinstance(envelope.message, ValueReport)
            ]
            if received:
                self.value = (min(received) + max(received)) / 2
        return self.value


def run_approximate_agreement(
    inputs: Sequence[tuple[int, float]],
    epsilon: float,
    *,
    value_bound: Optional[float] = None,
    adversary: Optional[CrashAdversary] = None,
    seed: int = 0,
) -> ExecutionResult:
    """Run approximate agreement for ``(uid, initial_value)`` pairs.

    ``value_bound`` is the publicly known bound on the input range used
    to size the round count; it defaults to the actual input range.
    """
    if not inputs:
        raise ValueError("need at least one participant")
    uids = [uid for uid, _ in inputs]
    if len(set(uids)) != len(uids):
        raise ValueError("original identities must be distinct")
    values = [value for _, value in inputs]
    spread = (max(values) - min(values)) if value_bound is None else value_bound
    rounds = rounds_needed(spread, epsilon)
    cost = CostModel(n=len(inputs), namespace=max(max(uids), len(inputs)))
    processes = [
        ApproxAgreementNode(uid, value, rounds) for uid, value in inputs
    ]
    return run_network(processes, cost, crash_adversary=adversary, seed=seed)
