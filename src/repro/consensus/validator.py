"""The weak validator of Lemma 3.3 (after Lenzen-Sheikholeslami [29]).

Interface, for each correct committee member ``v`` with input
``in_v`` (a short bit string, here any hashable value):

* output ``(same_v, out_v)`` with ``same_v`` a bit;
* **strong validity**: ``out_v`` equals some correct member's input;
  and if *all* correct members input the same value ``in``, then
  ``same_v = 1`` and ``out_v = in``;
* **weak agreement**: if ``same_v = 1`` then ``out_u = out_v`` for
  every correct member ``u``.

The construction is one graded broadcast: grade 2 maps to
``same = 1``; grade 1 keeps the (unique, correct-sourced) popular
value with ``same = 0``; grade 0 falls back to the member's own input,
which trivially satisfies strong validity.  Exactly 2 rounds and
``O(|view|^2)`` messages per invocation, matching Lemma 3.3's budget.
"""

from __future__ import annotations

from repro.consensus.comm import CommitteeComm
from repro.consensus.graded import BOTTOM, graded_broadcast


def validator(comm: CommitteeComm, value: object, width: int):
    """Generator sub-program; returns ``(same, out)``."""
    grade, out = yield from graded_broadcast(comm, value, width)
    if grade == 2:
        return 1, out
    if grade == 1 and out != BOTTOM:
        return 0, out
    return 0, value
