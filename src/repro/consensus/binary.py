"""Binary consensus (Lemma 3.4) from graded broadcast plus a shared coin.

The paper's ``Consensus`` is "classical binary consensus" with validity
and agreement, costing ``O(log n)`` rounds per execution in the
complexity accounting of Theorem 1.3.  Since the algorithm already
assumes shared randomness, the natural classical construction is the
Rabin-style iterated protocol:

repeat for a fixed number of iterations:
    1. graded-broadcast the current value;
    2. grade >= 1 -> adopt the (unique) graded value;
       grade 0    -> adopt the iteration's shared coin.

* **Validity** -- if all correct members start with ``b`` they obtain
  grade 2 with ``b`` in iteration 1 and unanimity persists forever; for
  binary inputs any output trivially equals some correct input.
* **Agreement** -- once any correct member reaches grade 2 with ``x``,
  every correct member has grade >= 1 with ``x`` that same iteration,
  so all hold ``x`` from then on.  While nobody has decided, each
  iteration the shared coin matches the unique grade-1 value with
  probability 1/2, after which unanimity (hence grade 2 everywhere)
  follows; the probability that ``iterations`` rounds all fail is at
  most ``2^-iterations``.

A *fixed* iteration count keeps all correct members in lockstep -- the
outer renaming loop schedules subprotocols back to back and must know
exactly how many rounds each consumes.  Cost: ``2 * iterations``
rounds, ``O(|view|^2 * iterations)`` messages, each of ``O(log N)``
bits -- the Lemma 3.4 budget.
"""

from __future__ import annotations

from repro.consensus.comm import CommitteeComm
from repro.consensus.graded import graded_broadcast
from repro.crypto.shared_randomness import SharedRandomness

#: Default iteration count: per-execution failure probability 2^-12.
DEFAULT_ITERATIONS = 12


def binary_consensus(
    comm: CommitteeComm,
    bit: int,
    shared: SharedRandomness,
    label: str,
    iterations: int = DEFAULT_ITERATIONS,
):
    """Generator sub-program; returns the agreed bit.

    ``label`` must be unique per consensus execution and identical at
    all correct members (it seeds the shared coins); the renaming
    protocol derives it from its deterministic step counter.
    """
    if bit not in (0, 1):
        raise ValueError(f"consensus input must be a bit, got {bit!r}")
    if iterations < 1:
        raise ValueError(f"need at least one iteration, got {iterations}")
    value = bit
    for iteration in range(iterations):
        grade, out = yield from graded_broadcast(comm, value, width=1)
        if grade >= 1 and out in (0, 1):
            value = out
        else:
            value = shared.coin(f"consensus:{label}:{iteration}")
    return value
