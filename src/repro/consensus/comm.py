"""Lockstep communication between committee members.

All correct committee members execute the identical sequence of
subprotocol steps (Lemma 3.8 guarantees their segment stacks stay in
sync), so each communication step can be identified by a monotone
sequence number.  :class:`CommitteeComm` owns that counter, the
member's committee view, and the Byzantine bound ``b_max`` the
threshold logic depends on; :func:`exchange` performs one
broadcast-to-view round and collects, per view member, the first
well-formed vote for the current step.

Byzantine strategies hook :meth:`CommitteeComm.outgoing_value` to
equivocate (send different values to different receivers) without
having to re-implement the lockstep schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.sim.messages import CostModel, Envelope, Message, Send


@dataclass(frozen=True)
class SubVote(Message):
    """One vote inside an in-committee subprotocol.

    ``step`` identifies the communication step (stale or replayed votes
    are ignored by receivers); ``kind`` names the subprotocol round;
    ``width`` is the payload's bit width under the cost model, declared
    by the sender and identical at every correct node because it is a
    function of public parameters only.
    """

    step: int
    kind: str
    value: object
    width: int

    def payload_bits(self, cost: CostModel) -> int:
        # payload + step counter framing; the kind tag rides in the header.
        return self.width + 2 * cost.counter_bits


class CommitteeComm:
    """One committee member's view of in-committee communication."""

    def __init__(self, view: Iterable[int], b_max: int):
        self.view = sorted(set(view))
        if not self.view:
            raise ValueError("committee view must not be empty")
        if b_max < 0:
            raise ValueError(f"b_max must be >= 0, got {b_max}")
        self.b_max = b_max
        self.step = 0

    def outgoing_value(self, kind: str, value: object, receiver: int) -> object:
        """The value actually sent to ``receiver`` (hook for equivocators)."""
        return value

    def sends(self, kind: str, value: object, width: int) -> list[Send]:
        return [
            Send(link, SubVote(self.step, kind,
                               self.outgoing_value(kind, value, link), width))
            for link in self.view
        ]

    def collect(self, inbox: Sequence[Envelope], kind: str) -> dict[int, object]:
        """First well-formed vote per view member for the current step."""
        votes: dict[int, object] = {}
        members = set(self.view)
        for envelope in inbox:
            message = envelope.message
            if (
                isinstance(message, SubVote)
                and message.step == self.step
                and message.kind == kind
                and envelope.sender in members
                and envelope.sender not in votes
            ):
                votes[envelope.sender] = message.value
        return votes


def exchange(comm: CommitteeComm, kind: str, value: object, width: int):
    """One synchronous all-to-view vote round (generator sub-program).

    Yields the member's sends for this round and returns the mapping
    ``sender link -> value`` of votes received from its view.
    """
    comm.step += 1
    inbox = yield comm.sends(kind, value, width)
    return comm.collect(inbox, kind)


def plurality(votes: Iterable[object]) -> tuple[object, int]:
    """The most frequent value and its count, with a deterministic
    tie-break (lexicographic on ``repr``) so replays are stable."""
    counts: dict[object, int] = {}
    for value in votes:
        counts[value] = counts.get(value, 0) + 1
    if not counts:
        raise ValueError("no votes to take a plurality of")
    best = min(counts.items(), key=lambda item: (-item[1], repr(item[0])))
    return best[0], best[1]
