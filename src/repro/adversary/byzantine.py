"""Static Byzantine corruption strategies ("Carlo").

Carlo picks the corrupt set before execution (and, by the static-model
convention, independently of the shared randomness).  Each strategy is
a factory ``(uid, config) -> Process`` suitable for the ``byzantine``
argument of :func:`repro.core.byzantine_renaming.run_byzantine_renaming`.

The strategies cover the attack channels the algorithm defends:

* :func:`silent` -- contributes nothing; pure liveness pressure.
* :func:`crash_simulator` -- participates in election and aggregation,
  then dies; costs the committee a member without creating conflicts.
* :func:`make_withholder` -- announces its identity to only part of the
  committee, which is *the* attack that desynchronises identity lists
  and forces the divide-and-conquer splits of Lemma 3.10.
* :func:`make_equivocator` -- a corrupted committee member that sends
  different votes to different members in every subprotocol round and
  withholds its identity from half the network; stresses the threshold
  logic of graded broadcast / Validator / Consensus.
"""

from __future__ import annotations

import math
from random import Random

from dataclasses import dataclass

from repro.consensus.comm import CommitteeComm
from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    ByzantineRenamingNode,
    Elect,
    IdAnnounce,
)
from repro.sim.messages import Message, Send, broadcast
from repro.sim.node import Context, IdleProcess, Process, Program


class SilentByzantine(IdleProcess):
    """Sends nothing, ever (indistinguishable from an initial crash)."""

    byzantine = True


class CrashSimulatingByzantine(Process):
    """Joins election and aggregation honestly, then goes silent.

    If it holds a candidate identity this wastes a committee seat; the
    thresholds must absorb the missing votes.
    """

    byzantine = True

    def __init__(self, uid: int, config: ByzantineRenamingConfig):
        super().__init__(uid)
        self.config = config

    def program(self, ctx: Context) -> Program:
        params = self.config.parameters(ctx.n)
        candidates = ctx.shared.bernoulli_subset(
            "committee-lottery", ctx.namespace, params.candidate_probability
        )
        inbox = yield (broadcast(ctx.n, Elect(self.uid))
                       if self.uid in candidates else [])
        view = sorted({
            envelope.sender for envelope in inbox
            if isinstance(envelope.message, Elect)
            and envelope.sender_uid in candidates
        })
        yield [Send(link, IdAnnounce(self.uid)) for link in view]
        while True:
            yield []


class WithholdingByzantine(ByzantineRenamingNode):
    """Announces its identity to only a fraction of its committee view.

    Correct members then disagree on the bit at this node's position,
    so every enclosing segment hash mismatches and the committee must
    split down to the singleton -- about ``log2 N`` extra iterations per
    withholder, the workload behind experiment F9.  If elected, it
    additionally deserts the committee (stays silent in the loop).
    """

    byzantine = True

    def __init__(self, uid: int, config: ByzantineRenamingConfig,
                 fraction: float = 0.5, salt: int = 0):
        super().__init__(uid, config)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self.fraction = fraction
        self.salt = salt

    def _announce_targets(self, view, ctx):
        links = sorted(view)
        keep = math.ceil(len(links) * self.fraction)
        rng = Random(hash((self.uid, self.salt)))
        return sorted(rng.sample(links, keep)) if keep else []

    def _committee_program(self, *args, **kwargs):
        while True:
            yield []

    def _await_new_id(self, params, view, first_inbox):
        while True:
            yield []


class EquivocatingComm(CommitteeComm):
    """Sends honest votes to even links and perturbed votes to odd links."""

    def outgoing_value(self, kind, value, receiver):
        if receiver % 2 == 0:
            return value
        if value in (0, 1):
            return 1 - value
        if isinstance(value, tuple) and len(value) == 2:
            digest, count = value
            if isinstance(digest, int) and isinstance(count, int):
                return (digest ^ 0x5DEECE66D, count + 1)
        return value


class EquivocatingByzantine(ByzantineRenamingNode):
    """A corrupted committee member that equivocates in every vote round
    and withholds its identity announcement from odd-numbered links."""

    byzantine = True

    def _make_comm(self, view_links, params):
        return EquivocatingComm(view_links, params.b_max)

    def _announce_targets(self, view, ctx):
        return [link for link in sorted(view) if link % 2 == 0]


class ChaosMonkeyByzantine(Process):
    """Sprays syntactically well-formed garbage at every round.

    Sends random messages of every protocol type -- forged SubVotes
    with random steps/kinds/values, ELECTs for its own identity, bogus
    NewIds, stray IdAnnounces -- to random links, every round, forever.
    Useless as a *strategic* adversary, invaluable as a robustness
    fuzzer: honest nodes must discard all of it (wrong step, wrong
    kind, sender outside view, value below the accept threshold) and
    still meet every guarantee.  See tests/test_chaos_fuzz.py.
    """

    byzantine = True

    def __init__(self, uid: int, config: ByzantineRenamingConfig,
                 salt: int = 0, volume: int = 6):
        super().__init__(uid)
        self.config = config
        self.salt = salt
        self.volume = volume

    def _random_message(self, rng: Random, n: int):
        from repro.consensus.comm import SubVote
        from repro.core.byzantine_renaming import NewId

        kind = rng.randrange(5)
        if kind == 0:
            return Elect(self.uid)
        if kind == 1:
            return IdAnnounce(self.uid)
        if kind == 2:
            return NewId(rng.choice([None, rng.randint(1, n)]))
        if kind == 3:
            return SubVote(rng.randint(0, 500),
                           rng.choice(["gb-input", "gb-echo", "diff:1",
                                       "coin-commit:x", "junk"]),
                           rng.choice([0, 1, "__bottom__",
                                       (rng.getrandbits(32), rng.randint(0, n))]),
                           width=8)
        return SlotNoise(rng.getrandbits(16))

    def program(self, ctx: Context) -> Program:
        rng = Random(hash((self.uid, self.salt)))
        while True:
            sends = [
                Send(rng.randrange(ctx.n), self._random_message(rng, ctx.n))
                for _ in range(self.volume)
            ]
            yield sends


@dataclass(frozen=True)
class SlotNoise(Message):
    """A message type no honest protocol knows, for type-filter tests."""

    payload: int

    def payload_bits(self, cost) -> int:
        return 16


# ---------------------------------------------------------------------------
# Factories (the public face used by run_byzantine_renaming)


def silent(uid: int, config: ByzantineRenamingConfig) -> Process:
    return SilentByzantine(uid)


def crash_simulator(uid: int, config: ByzantineRenamingConfig) -> Process:
    return CrashSimulatingByzantine(uid, config)


def make_withholder(fraction: float = 0.5, salt: int = 0):
    def factory(uid: int, config: ByzantineRenamingConfig) -> Process:
        return WithholdingByzantine(uid, config, fraction=fraction, salt=salt)

    return factory


def make_equivocator():
    def factory(uid: int, config: ByzantineRenamingConfig) -> Process:
        return EquivocatingByzantine(uid, config)

    return factory


def make_chaos_monkey(salt: int = 0, volume: int = 6):
    def factory(uid: int, config: ByzantineRenamingConfig) -> Process:
        return ChaosMonkeyByzantine(uid, config, salt=salt, volume=volume)

    return factory


def corrupt_set(uids, f: int, rng: Random) -> list[int]:
    """Carlo's static choice: ``f`` victims drawn before execution."""
    if f > len(list(uids)):
        raise ValueError(f"cannot corrupt {f} of {len(list(uids))} nodes")
    return sorted(rng.sample(list(uids), f))
