"""Concrete crash-adversary strategies ("Eve").

All strategies honour the adaptive model: they see the full proposed
send set of the current round (history up to "now") and may deliver an
arbitrary subset of a victim's in-flight messages.
"""

from __future__ import annotations

from random import Random
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.adversary.base import CrashAdversary, CrashPlan, CrashPlanError

if TYPE_CHECKING:  # annotations only, avoids an import cycle
    from repro.sim.messages import Send
    from repro.sim.trace import Trace


class RandomCrash(CrashAdversary):
    """Crashes each alive node independently with a fixed per-round rate.

    On crashing a victim, an independent fair coin decides for each
    in-flight message whether it is still delivered -- an unbiased
    mid-send crash.
    """

    def __init__(self, budget: int, rate: float, rng: Random):
        super().__init__(budget)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.rng = rng

    def plan_round(self, round_no, proposed, alive, trace) -> CrashPlan:
        plan: dict[int, list[Send]] = {}
        for victim in sorted(alive):
            if len(plan) >= self.remaining_budget:
                break
            if self.rng.random() < self.rate:
                sends = proposed.get(victim, [])
                plan[victim] = [s for s in sends if self.rng.random() < 0.5]
        return plan


class ScheduledCrash(CrashAdversary):
    """Crashes a fixed set of victims at fixed rounds.

    ``schedule`` maps a round number to the victims crashed in that
    round; by default nothing a victim proposed in its crash round is
    delivered.  ``deliver_prefix`` optionally lets the first ``k``
    proposed messages of a victim through, modelling a deterministic
    mid-send crash -- convenient for regression tests that need an
    exactly reproducible split.

    ``budget`` optionally pins the adversary's crash budget ``f``
    independently of the schedule.  The whole schedule is then
    validated at plan (construction) time: if the cumulative victim
    count ever exceeds ``f``, a :class:`CrashPlanError` names the first
    offending round — mirroring the network's atomic plan rejection
    rather than silently under-delivering crashes mid-execution.
    """

    def __init__(
        self,
        schedule: Mapping[int, Sequence[int]],
        deliver_prefix: Mapping[int, int] | None = None,
        budget: int | None = None,
    ):
        victims = [v for batch in schedule.values() for v in batch]
        if len(victims) != len(set(victims)):
            raise ValueError("schedule names the same victim twice")
        if budget is not None:
            cumulative = 0
            for round_no in sorted(schedule):
                cumulative += len(schedule[round_no])
                if cumulative > budget:
                    raise CrashPlanError(
                        f"schedule exceeds crash budget f={budget} at "
                        f"round {round_no}: {cumulative} cumulative "
                        f"victims planned"
                    )
        super().__init__(budget=len(victims) if budget is None else budget)
        self.schedule = {r: list(batch) for r, batch in schedule.items()}
        self.deliver_prefix = dict(deliver_prefix or {})

    def plan_round(self, round_no, proposed, alive, trace) -> CrashPlan:
        plan: dict[int, list[Send]] = {}
        for victim in self.schedule.get(round_no, []):
            if victim not in alive:
                continue
            keep = self.deliver_prefix.get(victim, 0)
            plan[victim] = list(proposed.get(victim, []))[:keep]
        return plan


class MidSendPartitioner(CrashAdversary):
    """Crashes high-fanout nodes mid-send, delivering to a random half.

    This is the view-splitting attack: a committee member's response (or
    announcement) reaches only half the nodes, so survivors disagree on
    committee membership and on halving decisions.  Lemmas 2.3/2.5 claim
    the algorithm stays safe regardless; the integration tests run this
    adversary to check exactly that.
    """

    def __init__(self, budget: int, rng: Random, per_round: int = 1,
                 min_fanout: int = 2):
        super().__init__(budget)
        self.rng = rng
        self.per_round = per_round
        self.min_fanout = min_fanout

    def plan_round(self, round_no, proposed, alive, trace) -> CrashPlan:
        candidates = sorted(
            (victim for victim in alive
             if len(proposed.get(victim, [])) >= self.min_fanout),
            key=lambda victim: -len(proposed.get(victim, [])),
        )
        plan: dict[int, list[Send]] = {}
        for victim in candidates[: self.per_round]:
            if len(plan) >= self.remaining_budget:
                break
            sends = list(proposed.get(victim, []))
            self.rng.shuffle(sends)
            plan[victim] = sends[: len(sends) // 2]
        return plan


class CommitteeHunter(CrashAdversary):
    """Kills every apparent committee member, round after round.

    A committee member is recognisable purely from observable behaviour:
    it is a node whose proposed fanout covers at least ``threshold`` of
    the network (committee members are the only nodes that talk to
    everyone).  Killing all of them in their announcement round forces
    the re-election mechanism of the crash algorithm, doubling the
    election probability ``p`` -- this adversary is the workload behind
    the resource-competitiveness experiments (F2/F8).

    ``deliver_fraction`` controls how much of a victim's in-flight
    traffic still leaks out (0 = clean pre-send crash).
    """

    def __init__(self, budget: int, rng: Random, threshold: float = 0.5,
                 deliver_fraction: float = 0.0):
        super().__init__(budget)
        if not 0.0 <= deliver_fraction <= 1.0:
            raise ValueError(f"deliver_fraction must be in [0, 1]")
        self.rng = rng
        self.threshold = threshold
        self.deliver_fraction = deliver_fraction

    def plan_round(self, round_no, proposed, alive, trace) -> CrashPlan:
        n = max(len(alive), 1)
        plan: dict[int, list[Send]] = {}
        for victim in sorted(alive):
            if len(plan) >= self.remaining_budget:
                break
            fanout = len(proposed.get(victim, []))
            if fanout >= self.threshold * n:
                sends = list(proposed.get(victim, []))
                self.rng.shuffle(sends)
                keep = int(len(sends) * self.deliver_fraction)
                plan[victim] = sends[:keep]
        return plan


class BudgetedAdaptiveCrash(CrashAdversary):
    """A fully programmable adversary for white-box tests.

    ``policy`` receives ``(round_no, proposed, alive, trace, remaining)``
    and returns a :data:`CrashPlan`; the network still validates budget
    and subset constraints, so a buggy policy fails loudly.
    """

    def __init__(
        self,
        budget: int,
        policy: Callable[[int, Mapping[int, Sequence[Send]], frozenset[int],
                          Trace, int], CrashPlan],
    ):
        super().__init__(budget)
        self.policy = policy

    def plan_round(self, round_no, proposed, alive, trace) -> CrashPlan:
        return self.policy(round_no, proposed, alive, trace,
                           self.remaining_budget)
