"""Crash-adversary interface.

The paper's "Eve" is an adaptive adversary: at any point she may use
the execution history so far to decide which nodes crash immediately --
*even in the middle of sending a message*.  The network therefore
consults the adversary once per round, showing her every alive node's
proposed outgoing messages, and she answers with a :data:`CrashPlan`:
a mapping from victim link index to the subset of its proposed messages
that are still delivered before the crash takes effect.

An empty delivered-subset models "crashed before sending"; a proper
subset models the mid-send crash the proofs of Lemmas 2.3/2.5 defend
against.  The network enforces that the plan only names alive nodes,
that delivered subsets really are subsets, and that the adversary's
total budget ``f`` is respected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # imported for annotations only, to avoid an import cycle
    from repro.sim.messages import Send
    from repro.sim.trace import Trace

#: victim link index -> subset of its proposed sends still delivered.
CrashPlan = Mapping[int, "Sequence[Send]"]


class CrashPlanError(ValueError):
    """An adversary returned an invalid plan (budget / subset violation)."""


class CrashAdversary:
    """Base class; subclasses implement :meth:`plan_round`.

    Parameters
    ----------
    budget:
        Maximum number of nodes this adversary may crash over the whole
        execution (the paper's ``f``).
    """

    def __init__(self, budget: int):
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self.budget = budget
        self.crashed: set[int] = set()

    @property
    def remaining_budget(self) -> int:
        return self.budget - len(self.crashed)

    def plan_round(
        self,
        round_no: int,
        proposed: Mapping[int, Sequence[Send]],
        alive: frozenset[int],
        trace: Trace,
    ) -> CrashPlan:
        """Decide this round's crashes.  Default: crash nobody."""
        raise NotImplementedError

    def note_crashes(self, victims: set[int]) -> None:
        """Called by the network after it applies a validated plan."""
        self.crashed |= victims


class NoCrashes(CrashAdversary):
    """The failure-free adversary (``f = 0``)."""

    def __init__(self):
        super().__init__(budget=0)

    def plan_round(self, round_no, proposed, alive, trace) -> CrashPlan:
        return {}
