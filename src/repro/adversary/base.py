"""Crash-adversary interface.

The paper's "Eve" is an adaptive adversary: at any point she may use
the execution history so far to decide which nodes crash immediately --
*even in the middle of sending a message*.  The network therefore
consults the adversary once per round, showing her every alive node's
proposed outgoing messages, and she answers with a :data:`CrashPlan`:
a mapping from victim link index to the subset of its proposed messages
that are still delivered before the crash takes effect.

An empty delivered-subset models "crashed before sending"; a proper
subset models the mid-send crash the proofs of Lemmas 2.3/2.5 defend
against.  The network enforces that the plan only names alive nodes,
that delivered subsets really are subsets, and that the adversary's
total budget ``f`` is respected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # imported for annotations only, to avoid an import cycle
    from repro.sim.messages import Send
    from repro.sim.trace import Trace

#: victim link index -> subset of its proposed sends still delivered.
CrashPlan = Mapping[int, "Sequence[Send]"]


class CrashPlanError(ValueError):
    """An adversary returned an invalid plan (budget / subset violation)."""


def kept_send_indices(
    kept: "Sequence[Send]", proposed: "Sequence[Send]"
) -> tuple[int, ...]:
    """Positions in ``proposed`` of each send in ``kept``, in ``kept`` order.

    This is the single matching rule used everywhere a kept-send subset
    is resolved against a proposed send list — by the network when it
    applies a crash plan and by the falsification recorder when it
    serializes one.  Each kept send is matched to an unused position by
    *object identity* first (adversaries normally keep the very objects
    they were shown), falling back to equality for adversaries that
    construct fresh-but-equal sends.  Identity-first matching keeps the
    resolution well-defined when a victim proposes duplicate identical
    sends: keeping the second of two equal sends resolves to index 1,
    never to index 0, so a recorded schedule replays the exact instance
    the network delivered.

    Raises :class:`CrashPlanError` when a kept send cannot be matched.
    """
    positions_by_id: dict[int, list[int]] = {}
    for position, send in enumerate(proposed):
        positions_by_id.setdefault(id(send), []).append(position)
    used: set[int] = set()
    indices: list[int] = []
    for send in kept:
        chosen = -1
        for position in positions_by_id.get(id(send), ()):
            if position not in used and proposed[position] is send:
                chosen = position
                break
        if chosen < 0:
            for position, candidate in enumerate(proposed):
                if position not in used and candidate == send:
                    chosen = position
                    break
        if chosen < 0:
            raise CrashPlanError(f"kept message {send} was never proposed")
        used.add(chosen)
        indices.append(chosen)
    return tuple(indices)


class CrashAdversary:
    """Base class; subclasses implement :meth:`plan_round`.

    Parameters
    ----------
    budget:
        Maximum number of nodes this adversary may crash over the whole
        execution (the paper's ``f``).
    """

    def __init__(self, budget: int):
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self.budget = budget
        self.crashed: set[int] = set()

    @property
    def remaining_budget(self) -> int:
        return self.budget - len(self.crashed)

    def plan_round(
        self,
        round_no: int,
        proposed: Mapping[int, Sequence[Send]],
        alive: frozenset[int],
        trace: Trace,
    ) -> CrashPlan:
        """Decide this round's crashes.  Default: crash nobody.

        ``proposed`` maps each alive link index to that node's proposed
        outgoing sends **as an abstract sequence, not necessarily a
        list**: a node that broadcasts yields a lazy
        :class:`~repro.sim.messages.Broadcast`, which materializes its
        ``Send`` objects once, on first access, and then returns the
        *same* instances on every later access.  Adversaries may index,
        slice, and iterate it freely; because the instances are stable,
        a kept subset taken from it resolves by object identity in
        :func:`kept_send_indices`, so mid-send crashes of broadcasting
        victims record and replay exactly (see
        ``tests/test_adversary_crash.py::TestBroadcastMidSendCrash``).
        """
        raise NotImplementedError

    def note_crashes(self, victims: set[int]) -> None:
        """Called by the network after it applies a validated plan."""
        self.crashed |= victims


class NoCrashes(CrashAdversary):
    """The failure-free adversary (``f = 0``)."""

    def __init__(self):
        super().__init__(budget=0)

    def plan_round(self, round_no, proposed, alive, trace) -> CrashPlan:
        return {}
