"""Failure adversaries.

* :mod:`repro.adversary.base` -- the :class:`CrashAdversary` interface
  consulted by the network engine each round.
* :mod:`repro.adversary.crash` -- concrete adaptive crash strategies
  ("Eve"), including the committee-hunter that drives the paper's
  resource-competitive analysis.
* :mod:`repro.adversary.byzantine` -- static corruption strategies
  ("Carlo") and the Byzantine node behaviours they install.
"""

from repro.adversary.base import CrashAdversary, CrashPlanError, NoCrashes
from repro.adversary.crash import (
    BudgetedAdaptiveCrash,
    CommitteeHunter,
    MidSendPartitioner,
    RandomCrash,
    ScheduledCrash,
)

__all__ = [
    "BudgetedAdaptiveCrash",
    "CommitteeHunter",
    "CrashAdversary",
    "CrashPlanError",
    "MidSendPartitioner",
    "NoCrashes",
    "RandomCrash",
    "ScheduledCrash",
]
