"""Link-level fault-model interface.

The crash adversary ("Eve") decides which *nodes* fail; a
:class:`FaultModel` decides what the *links* do to the messages that
survive her.  It sits between the applied crash plan and envelope
delivery inside :class:`repro.sim.network.SyncNetwork`: once per round
the network shows it every sender's resolved outgoing sends (after
mid-send crashes removed their share) and it answers with a
:data:`RoundFaultPlan` — a per-send verdict addressed by ``(sender,
send index)``, the same index convention
:func:`repro.adversary.base.kept_send_indices` established for crash
plans, so a fault decision names one concrete transmitted message even
when a sender proposes duplicate identical sends.

Verdicts and their semantics (anything unnamed is delivered normally):

``drop``
    Omission: the message was transmitted (and is charged to the bit
    ledgers) but never arrives.
``duplicate``
    The link delivers ``1 + copies`` envelopes around the same message.
    The sender transmitted once, so the ledgers charge once; receivers
    simply observe repeats.
``corrupt``
    The receiver gets a deterministically bit-flipped copy of the
    message (see :func:`corrupt_message`); the original is charged, so
    corruption never changes a counted quantity.
``hold``
    Partition: the envelope is buffered by the network and delivered in
    ``release_round`` (if the receiver is still alive then).  Charged
    at transmission time.

Because the ledgers charge every resolved send exactly once regardless
of its verdict, an attached fault model never changes message/bit
accounting — only *delivery* — which is what lets the falsification
monitors compare faulted executions against the paper's bounds.

Fault models are single-use, like adversaries: build a fresh instance
(see :mod:`repro.faults.spec`) for every execution.  All randomized
models draw from their own seeded :class:`random.Random`, consumed in a
deterministic order over ``(round, sender, index)``, so an execution is
a pure function of ``(protocol, seeds, crash schedule, fault spec)``
and replays exactly under :mod:`repro.falsify.replay`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

if TYPE_CHECKING:  # annotations only, to avoid an import cycle
    from repro.sim.messages import Message, Send

#: sender link index -> send index -> verdict for this round's sends.
RoundFaultPlan = Mapping[int, Mapping[int, "FaultVerdict"]]

#: The four non-trivial verdict kinds (absence means "deliver").
DROP = "drop"
DUPLICATE = "duplicate"
CORRUPT = "corrupt"
HOLD = "hold"

FAULT_KINDS = (DROP, DUPLICATE, CORRUPT, HOLD)


class FaultPlanError(ValueError):
    """A fault model returned an invalid plan (bad index, kind, or
    release round)."""


@dataclass(frozen=True, slots=True)
class FaultVerdict:
    """One link-level decision about one resolved send.

    ``copies`` is the number of *extra* envelopes a ``duplicate``
    verdict delivers; ``release_round`` is the absolute round a ``hold``
    verdict delays delivery to (must be after the current round);
    ``salt`` seeds the deterministic bit-flip of a ``corrupt`` verdict.
    """

    kind: str
    copies: int = 1
    release_round: int = 0
    salt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.kind == DUPLICATE and self.copies < 1:
            raise FaultPlanError(
                f"duplicate verdict needs copies >= 1, got {self.copies}"
            )


def drop() -> FaultVerdict:
    return FaultVerdict(DROP)


def duplicate(copies: int = 1) -> FaultVerdict:
    return FaultVerdict(DUPLICATE, copies=copies)


def corrupt(salt: int = 0) -> FaultVerdict:
    return FaultVerdict(CORRUPT, salt=salt)


def hold(release_round: int) -> FaultVerdict:
    return FaultVerdict(HOLD, release_round=release_round)


@dataclass
class FaultStats:
    """What the network actually applied, tallied per execution.

    Every envelope a ``hold`` verdict buffered gets exactly one
    terminal disposition, so ``held == released + released_to_dead +
    in_flight()`` holds at every instant:

    ``released``
        Delivered to a still-alive receiver at its release round.
    ``released_to_dead``
        Reached its release round after the receiver crashed or
        terminated — the envelope vanishes, the count does not.
    ``expired``
        Still buffered when the run ended (release round beyond the
        last executed round); the run-end drain books each one here and
        emits a ``fault.expire`` event, so after a completed run
        ``in_flight() == expired``.
    """

    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    held: int = 0
    released: int = 0
    released_to_dead: int = 0
    expired: int = 0

    def as_dict(self) -> dict:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "held": self.held,
            "released": self.released,
            "released_to_dead": self.released_to_dead,
            "expired": self.expired,
        }

    def in_flight(self) -> int:
        """Held mail with no delivery disposition yet.

        Mid-run this counts envelopes still buffered for a future
        release round; after the run-end drain it equals ``expired``
        (terminal accounting for mail the run never released).
        """
        return self.held - self.released - self.released_to_dead

    @property
    def total(self) -> int:
        return self.dropped + self.duplicated + self.corrupted + self.held


class FaultModel:
    """Base class; subclasses implement :meth:`plan_round`.

    The default implementation is the fault-free channel (it never
    issues a verdict), so subclasses only override what they perturb.
    """

    def plan_round(
        self,
        round_no: int,
        delivered: Mapping[int, "Sequence[Send]"],
        alive: frozenset[int],
    ) -> RoundFaultPlan:
        """Decide this round's link faults.

        ``delivered`` maps each alive sender to its resolved outgoing
        sends — *after* the crash adversary's plan was applied, so a
        verdict always targets a message the network would otherwise
        deliver.  Like crash adversaries, fault models may receive lazy
        :class:`~repro.sim.messages.Broadcast` sequences; ``len()`` is
        free, and indexing materializes stable ``Send`` instances.
        Implementations must iterate senders and indices in a
        deterministic order (sorted) so seeded decisions replay.
        """
        return {}

    def describe(self) -> str:
        return type(self).__name__


class NoFaults(FaultModel):
    """The reliable channel — behaviourally identical to passing
    ``fault_model=None``, but exercising the faulted delivery path
    (useful for A/B tests)."""


def corrupt_message(message: "Message", salt: int) -> "Message":
    """A deterministically corrupted copy of a frozen message.

    Picks one integer field (by ``salt``) and flips one of its low 16
    bits — a minimal, targeted violation of the channel's integrity
    that field-level digest checks (:mod:`repro.crypto.hashing`) are
    designed to catch.  Messages with no integer fields, or whose
    validation rejects the flipped value, pass through unchanged: the
    channel can only corrupt what the wire format can express.
    """
    try:
        fields = dataclasses.fields(message)
    except TypeError:
        return message
    int_fields = [
        f.name for f in fields
        if isinstance(getattr(message, f.name), int)
        and not isinstance(getattr(message, f.name), bool)
    ]
    if not int_fields:
        return message
    name = int_fields[salt % len(int_fields)]
    flipped = getattr(message, name) ^ (1 << (salt % 16))
    try:
        return dataclasses.replace(message, **{name: flipped})
    except Exception:
        return message


def validate_plan(
    plan: RoundFaultPlan,
    round_no: int,
    delivered: Mapping[int, "Sequence[Send]"],
) -> None:
    """Reject malformed plans before any delivery state changes.

    Mirrors the atomic-rejection contract of
    ``SyncNetwork._apply_crash_plan``: a bad plan raises
    :class:`FaultPlanError` and the round is left untouched.
    """
    for sender, verdicts in plan.items():
        sends = delivered.get(sender)
        if sends is None:
            raise FaultPlanError(
                f"round {round_no}: fault plan names sender {sender}, "
                f"which resolved no sends this round"
            )
        limit = len(sends)
        for index, verdict in verdicts.items():
            if not 0 <= index < limit:
                raise FaultPlanError(
                    f"round {round_no}: sender {sender} verdict index "
                    f"{index} outside [0, {limit})"
                )
            if not isinstance(verdict, FaultVerdict):
                raise FaultPlanError(
                    f"round {round_no}: sender {sender} index {index}: "
                    f"expected a FaultVerdict, got {type(verdict).__name__}"
                )
            if verdict.kind == HOLD and verdict.release_round <= round_no:
                raise FaultPlanError(
                    f"round {round_no}: hold verdict for sender {sender} "
                    f"index {index} releases at round "
                    f"{verdict.release_round}, which is not in the future"
                )
