"""Graceful-degradation classification under an escalating fault ladder.

A protocol proven correct for crash faults can fail three different
ways when the channel model is violated, and the difference matters:

``SAFE_TERMINATED``
    All correct nodes terminated and every safety monitor stayed clean
    — the algorithm absorbs this fault class outright.
``SAFE_STALLED``
    Liveness was lost (the round-budget watchdog fired, or the round
    cap was hit) but safety held for every completed round.  Losing
    only liveness is the *graceful* failure mode: the monitors run in
    order with the watchdog last, so a stall verdict certifies that
    unique-names/namespace/crash-budget/ledger invariants passed each
    round up to the stall.
``SAFETY_VIOLATED``
    A safety monitor fired — the algorithm produced wrong answers
    (duplicate names, out-of-range names, …) under this fault class.
``CRASHED``
    The execution raised outside the monitor/watchdog vocabulary
    (protocol assertion, renaming failure, malformed plan): the
    implementation itself fell over rather than degrading.

:func:`degradation_frontier` runs one or more scenarios across an
escalating fault ladder (:func:`default_ladder`) and tabulates the
outcome per rung — the *degradation frontier* of each algorithm.  All
executions are seeded and replayable: a rung is just a
:mod:`repro.faults.spec` spec, so any frontier cell can be re-run via
``params["faults"]`` in the falsify harness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.falsify.monitors import (
    InvariantViolation,
    default_monitors,
    default_watchdog_rounds,
)
from repro.falsify.scenarios import make_adversary, resolve_scenario
from repro.faults.base import FaultModel, FaultVerdict, NoFaults
from repro.faults.spec import build_fault_model, spec_to_json
from repro.sim.network import NonTerminationError

SAFE_TERMINATED = "SAFE_TERMINATED"
SAFE_STALLED = "SAFE_STALLED"
SAFETY_VIOLATED = "SAFETY_VIOLATED"
CRASHED = "CRASHED"

#: Ordered best-to-worst, for frontier summaries.
OUTCOMES = (SAFE_TERMINATED, SAFE_STALLED, SAFETY_VIOLATED, CRASHED)


def outcome_rank(outcome: str) -> int:
    """Severity index into :data:`OUTCOMES` (0 best, 3 worst).

    Shared vocabulary for anything that compares degradation levels —
    the serve-level chaos harness ranks its rung outcomes with the same
    scale the protocol-level frontier uses.
    """
    return OUTCOMES.index(outcome)

#: Invariants whose violation means "liveness lost", not "wrong answer".
LIVENESS_INVARIANTS = frozenset({"round-budget"})


class FaultTap(FaultModel):
    """Wraps a fault model and tallies the verdicts it issues, so a
    frontier row can report fault pressure even when the execution
    aborts and the network's applied :class:`FaultStats` is lost."""

    def __init__(self, inner: FaultModel):
        self.inner = inner
        self.issued: dict[str, int] = {}

    def plan_round(self, round_no, delivered, alive):
        plan = self.inner.plan_round(round_no, delivered, alive)
        issued = self.issued
        for verdicts in plan.values():
            for verdict in verdicts.values():
                if isinstance(verdict, FaultVerdict):
                    issued[verdict.kind] = issued.get(verdict.kind, 0) + 1
        return plan

    def describe(self) -> str:
        return self.inner.describe()


@dataclass(frozen=True)
class Rung:
    """One step of the escalating fault ladder."""

    label: str
    spec: tuple  # normalized spec entries, as an immutable tuple

    @property
    def spec_json(self) -> str:
        return spec_to_json(list(self.spec))


def _rung(label: str, spec: Sequence[dict]) -> Rung:
    return Rung(label, tuple(dict(entry) for entry in spec))


def default_ladder(n: int) -> list[Rung]:
    """The standard escalating ladder: a fault-free control, then each
    fault class alone at increasing pressure, then a composed worst
    case.  Specs depend only on ``n`` so frontiers are comparable
    across scenarios and replayable from their JSON."""
    return [
        _rung("none", []),
        _rung("omission-1%", [{"kind": "omission", "p": 0.01}]),
        _rung("omission-5%", [{"kind": "omission", "p": 0.05}]),
        _rung("omission-20%", [{"kind": "omission", "p": 0.20}]),
        _rung("omission-5%-budget2n",
              [{"kind": "omission", "p": 0.05, "budget": 2 * n}]),
        _rung("duplicate-20%", [{"kind": "duplicate", "p": 0.20}]),
        _rung("corrupt-10%", [{"kind": "corrupt", "p": 0.10}]),
        _rung("partition-3r", [{"kind": "partition", "start": 2, "end": 5}]),
        _rung("partition-8r", [{"kind": "partition", "start": 2, "end": 10}]),
        _rung("omission+partition",
              [{"kind": "omission", "p": 0.05, "budget": 2 * n},
               {"kind": "partition", "start": 3, "end": 6}]),
    ]


def classify_outcome(execute: Callable[[], object]) -> tuple[str, dict]:
    """Run ``execute`` and fold its fate into an outcome + detail dict.

    The classification rules (see the module docstring): a liveness
    invariant or :class:`NonTerminationError` is a stall; any other
    :class:`InvariantViolation` is a safety violation; any other
    exception is a crash; otherwise the run terminated safely.
    """
    try:
        result = execute()
    except InvariantViolation as violation:
        detail = {
            "invariant": violation.invariant,
            "round": violation.round_no,
            "nodes": list(violation.nodes)[:16],
        }
        if violation.invariant in LIVENESS_INVARIANTS:
            return SAFE_STALLED, detail
        return SAFETY_VIOLATED, detail
    except NonTerminationError as hang:
        return SAFE_STALLED, {
            "invariant": "max-rounds",
            "round": hang.round_no,
            "nodes": list(hang.pending)[:16],
        }
    except Exception as error:  # the implementation fell over
        return CRASHED, {
            "error": type(error).__name__,
            "message": str(error)[:200],
        }
    return SAFE_TERMINATED, {"result": result}


def classify_scenario(
    scenario_name: str,
    n: int,
    f: int,
    seed: int,
    spec,
    *,
    adversary: str = "none",
    watchdog_rounds: Optional[int] = None,
) -> dict:
    """Classify one (scenario, fault spec) cell; returns a frontier row."""
    scenario = resolve_scenario(scenario_name)
    model = build_fault_model(spec, n, seed)
    # An empty spec still passes an explicit NoFaults: the explicit
    # instance overrides any default fault spec a fault scenario (e.g.
    # `gossip-faults`) would otherwise inject, so the ladder's control
    # rung is genuinely fault-free for every scenario.  NoFaults is
    # counted-result-identical to fault_model=None (A/B-tested).
    tap = FaultTap(model if model is not None else NoFaults())
    if watchdog_rounds is None:
        watchdog_rounds = default_watchdog_rounds(n)
    monitors = default_monitors(n, f, bound=scenario.bound,
                                watchdog_rounds=watchdog_rounds)

    def execute():
        return scenario.run(
            n, f, seed, make_adversary(adversary, f, seed), monitors, {},
            fault_model=tap,
        )

    outcome, detail = classify_outcome(execute)
    row = {
        "scenario": scenario_name,
        "adversary": adversary,
        "n": n,
        "f_budget": f,
        "seed": seed,
        "faults": spec_to_json(spec),
        "outcome": outcome,
    }
    if outcome == SAFE_TERMINATED:
        result = detail["result"]
        row["rounds"] = result.rounds
        row["messages"] = result.metrics.correct_messages
        row["bits"] = result.metrics.correct_bits
        stats = result.fault_stats
        row.update(stats.as_dict() if stats is not None else
                   {"dropped": 0, "duplicated": 0, "corrupted": 0,
                    "held": 0, "released": 0, "released_to_dead": 0,
                    "expired": 0})
        row["detail"] = None
        row["_result"] = result
    else:
        row["rounds"] = detail.get("round")
        row["messages"] = None
        row["bits"] = None
        issued = tap.issued if tap is not None else {}
        row.update({
            "dropped": issued.get("drop", 0),
            "duplicated": issued.get("duplicate", 0),
            "corrupted": issued.get("corrupt", 0),
            "held": issued.get("hold", 0),
            "released": None,
            "released_to_dead": None,
            "expired": None,
        })
        row["detail"] = json.dumps(detail, default=repr)
    return row


def degradation_frontier(
    scenarios: Sequence[str],
    n: int,
    f: int,
    seed: int,
    *,
    ladder: Optional[Sequence[Rung]] = None,
    adversary: str = "none",
    watchdog_rounds: Optional[int] = None,
) -> list[dict]:
    """The degradation-frontier table: one row per (scenario, rung).

    Rows carry a ``rung`` label plus everything
    :func:`classify_scenario` reports; internal ``_result`` handles are
    stripped so the table is JSON-friendly.
    """
    if ladder is None:
        ladder = default_ladder(n)
    rows = []
    for scenario_name in scenarios:
        for rung in ladder:
            row = classify_scenario(
                scenario_name, n, f, seed, list(rung.spec),
                adversary=adversary, watchdog_rounds=watchdog_rounds,
            )
            row.pop("_result", None)
            row["rung"] = rung.label
            rows.append(row)
    return rows


def summarize_frontier(rows: Sequence[dict]) -> list[dict]:
    """Per-scenario frontier summary, in first-seen scenario order:
    how far up the ladder the algorithm stays fully safe, and the first
    rung (if any) where safety — not just liveness — is lost."""
    order: list[str] = []
    by_scenario: dict[str, list[dict]] = {}
    for row in rows:
        name = row["scenario"]
        if name not in by_scenario:
            order.append(name)
            by_scenario[name] = []
        by_scenario[name].append(row)
    summaries = []
    for name in order:
        cells = by_scenario[name]
        last_safe = None
        first_unsafe = None
        worst = SAFE_TERMINATED
        for cell in cells:
            outcome = cell["outcome"]
            if outcome == SAFE_TERMINATED:
                last_safe = cell["rung"]
            elif (first_unsafe is None
                    and outcome in (SAFETY_VIOLATED, CRASHED)):
                first_unsafe = cell["rung"]
            if OUTCOMES.index(outcome) > OUTCOMES.index(worst):
                worst = outcome
        summaries.append({
            "scenario": name,
            "rungs": len(cells),
            "safe": sum(1 for c in cells
                        if c["outcome"] == SAFE_TERMINATED),
            "stalled": sum(1 for c in cells
                           if c["outcome"] == SAFE_STALLED),
            "violated": sum(1 for c in cells
                            if c["outcome"] == SAFETY_VIOLATED),
            "crashed": sum(1 for c in cells if c["outcome"] == CRASHED),
            "last_safe_rung": last_safe,
            "first_unsafe_rung": first_unsafe,
            "worst_outcome": worst,
        })
    return summaries
