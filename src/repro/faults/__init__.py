"""Link-level fault injection: omission, duplication, corruption,
transient partitions, and the graceful-degradation classifier.

This package sits between the crash adversary and delivery inside
:class:`repro.sim.network.SyncNetwork`; see :mod:`repro.faults.base`
for the verdict semantics and charging invariant.

Note: ``repro.sim.network`` imports :mod:`repro.faults.base`, so this
``__init__`` must stay limited to the leaf modules (``base``,
``channels``, ``spec``).  The classifier and engine driver live in
:mod:`repro.faults.degradation` / :mod:`repro.faults.driver` and are
imported explicitly by their callers — importing them here would close
an import cycle through the scenario registry.
"""

from repro.faults.base import (
    CORRUPT,
    DROP,
    DUPLICATE,
    FAULT_KINDS,
    HOLD,
    FaultModel,
    FaultPlanError,
    FaultStats,
    FaultVerdict,
    NoFaults,
    corrupt,
    corrupt_message,
    drop,
    duplicate,
    hold,
    validate_plan,
)
from repro.faults.channels import (
    ComposedFaults,
    CorruptingChannel,
    DuplicateDelivery,
    OmissionFaults,
    TransientPartition,
)
from repro.faults.spec import (
    FAULT_SEED_OFFSET,
    FaultSpec,
    build_fault_model,
    normalize_spec,
    spec_to_json,
)

__all__ = [
    "CORRUPT",
    "DROP",
    "DUPLICATE",
    "FAULT_KINDS",
    "FAULT_SEED_OFFSET",
    "HOLD",
    "ComposedFaults",
    "CorruptingChannel",
    "DuplicateDelivery",
    "FaultModel",
    "FaultPlanError",
    "FaultSpec",
    "FaultStats",
    "FaultVerdict",
    "NoFaults",
    "OmissionFaults",
    "TransientPartition",
    "build_fault_model",
    "corrupt",
    "corrupt_message",
    "drop",
    "duplicate",
    "hold",
    "normalize_spec",
    "spec_to_json",
    "validate_plan",
]
