"""Declarative fault specs: JSON-scalar-friendly fault configuration.

The sweep engine restricts request parameters to JSON scalars (that is
what makes a run content-addressable), and repro artifacts serialize
scenario parameters as JSON — so fault models are configured through a
*spec*: a list of plain dicts, or its JSON encoding as a string.

::

    [{"kind": "omission", "p": 0.1, "budget": 40},
     {"kind": "partition", "start": 2, "end": 5, "left_frac": 0.5}]

:func:`build_fault_model` turns a spec into a fresh, seeded
:class:`~repro.faults.base.FaultModel` for one execution.  The same
``(spec, n, seed)`` always yields a model making identical decisions,
which is what makes fault scenarios strict-replayable.
"""

from __future__ import annotations

import json
from typing import Mapping, Optional, Sequence, Union

from repro.faults.base import FaultModel, NoFaults
from repro.faults.channels import (
    ComposedFaults,
    CorruptingChannel,
    DuplicateDelivery,
    OmissionFaults,
    TransientPartition,
)

#: Accepted spec shapes: JSON text, one entry, or a list of entries.
FaultSpec = Union[str, Mapping, Sequence[Mapping], None]

#: Offset mixed into the execution seed for fault-model randomness, so
#: the channel's coin flips are independent of the adversary's
#: (``seed + 1``) and the nodes' (``seed + 2``) streams.
FAULT_SEED_OFFSET = 7


def normalize_spec(spec: FaultSpec) -> list[dict]:
    """Decode/shape-check a spec into a list of plain entry dicts."""
    if spec is None:
        return []
    if isinstance(spec, str):
        text = spec.strip()
        if not text:
            return []
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"fault spec is not JSON: {error}") from None
    if isinstance(spec, Mapping):
        spec = [spec]
    entries = []
    for entry in spec:
        if not isinstance(entry, Mapping) or "kind" not in entry:
            raise ValueError(
                f"fault spec entry {entry!r} must be an object with a "
                f"'kind' field"
            )
        entries.append(dict(entry))
    return entries


def spec_to_json(spec: FaultSpec) -> str:
    """The canonical JSON string of a spec (stable key order)."""
    return json.dumps(normalize_spec(spec), sort_keys=True)


def _partition_sides(entry: Mapping, n: int) -> list[int]:
    """The left side of a partition entry: explicit ``left`` indices, or
    the first ``round(left_frac * n)`` links (default: half)."""
    if "left" in entry:
        return [int(v) for v in entry["left"]]
    frac = float(entry.get("left_frac", 0.5))
    if not 0.0 < frac < 1.0:
        raise ValueError(f"left_frac must be in (0, 1), got {frac}")
    return list(range(max(1, min(n - 1, round(frac * n)))))


def build_fault_model(
    spec: FaultSpec,
    n: int,
    seed: int = 0,
) -> Optional[FaultModel]:
    """A fresh fault model for one execution, or ``None`` for no spec.

    ``seed`` is the *execution* seed; each randomized entry derives its
    own stream from ``seed + FAULT_SEED_OFFSET + position`` so stacked
    models never share coins.
    """
    entries = normalize_spec(spec)
    if not entries:
        return None
    models: list[FaultModel] = []
    for position, entry in enumerate(entries):
        kind = entry["kind"]
        entry_seed = int(entry.get(
            "seed", seed + FAULT_SEED_OFFSET + position))
        budget = entry.get("budget")
        budget = None if budget is None else int(budget)
        if kind == "omission":
            models.append(OmissionFaults(
                float(entry.get("p", 0.05)), seed=entry_seed, budget=budget))
        elif kind == "duplicate":
            models.append(DuplicateDelivery(
                float(entry.get("p", 0.05)),
                copies=int(entry.get("copies", 1)),
                seed=entry_seed, budget=budget))
        elif kind == "corrupt":
            models.append(CorruptingChannel(
                float(entry.get("p", 0.05)), seed=entry_seed, budget=budget))
        elif kind == "partition":
            models.append(TransientPartition(
                int(entry.get("start", 2)),
                int(entry.get("end", entry.get("start", 2) + 3)),
                _partition_sides(entry, n)))
        elif kind == "none":
            models.append(NoFaults())
        else:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected omission, "
                f"duplicate, corrupt, partition, or none"
            )
    if len(models) == 1:
        return models[0]
    return ComposedFaults(models)
