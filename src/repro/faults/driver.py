"""The ``faults`` sweep-engine driver: classified fault executions.

One engine row = one (scenario, adversary, fault spec) execution,
classified by :func:`repro.faults.degradation.classify_scenario`.
Because fault specs travel as JSON strings, rows are content-addressed
by the store like any other driver's — the same spec under the same
code version is a cache hit — and the ``faults`` CLI subcommand and
:func:`sweep_faults` are thin wrappers over the same grid.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.faults.degradation import SAFE_TERMINATED, classify_scenario


def faults_run_summary(
    n: int,
    f: int,
    seed: int,
    *,
    scenario: str = "crash",
    adversary: str = "none",
    faults: str = "[]",
    watchdog_rounds: Optional[int] = None,
    include_rounds: bool = False,
) -> dict:
    """One classified fault execution as an engine driver row.

    Any outcome — including a safety violation or a protocol crash —
    is a *successful* probe (the row records it); only a harness bug
    makes the run ``failed``.  Per-round ledgers are attached only for
    ``SAFE_TERMINATED`` outcomes (aborted executions have no final
    ledger to report).
    """
    row = classify_scenario(
        scenario, n, f, seed, faults,
        adversary=adversary, watchdog_rounds=watchdog_rounds,
    )
    result = row.pop("_result", None)
    if include_rounds and row["outcome"] == SAFE_TERMINATED:
        row["messages_per_round"] = list(result.metrics.messages_per_round)
        row["bits_per_round"] = list(result.metrics.bits_per_round)
    return row


def sweep_faults(
    n_values: Sequence[int],
    f_of_n: Callable[[int], int],
    seeds: Sequence[int],
    **kwargs,
) -> list[dict]:
    """Fault sweep over ``n_values x seeds`` — thin engine wrapper.

    ``kwargs`` reach the driver (``scenario=``, ``adversary=``,
    ``faults=`` as a JSON spec string, ``watchdog_rounds=``).  For
    parallel or cached execution, build the requests yourself and call
    :func:`repro.engine.run_requests` with ``jobs``/``store``.
    """
    from repro.analysis.experiments import rows_or_raise
    from repro.engine.pool import run_requests
    from repro.engine.sweeps import RunRequest

    requests = [
        RunRequest.make("faults", n, f_of_n(n), seed, **kwargs)
        for n in n_values
        for seed in seeds
    ]
    return rows_or_raise(run_requests(requests))
