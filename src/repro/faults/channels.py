"""Concrete link-fault models.

Each model perturbs one dimension of the standard fault hierarchy used
to probe graceful degradation — omission, duplication, corruption,
transient partition — and :class:`ComposedFaults` stacks them.  All
randomized models consume their private seeded RNG in a fixed order
over ``(round, sender, index)``, so a model built from the same spec
and seed makes identical decisions in a strict replay.
"""

from __future__ import annotations

from random import Random
from typing import Iterable, Mapping, Optional, Sequence

from repro.faults.base import (
    CORRUPT,
    DROP,
    DUPLICATE,
    HOLD,
    FaultModel,
    FaultVerdict,
    RoundFaultPlan,
)


class _BudgetedRandomFaults(FaultModel):
    """Shared machinery: per-send probability with an optional total
    budget, decided in sorted ``(sender, index)`` order."""

    #: Verdict kind the subclass issues.
    kind = DROP

    def __init__(self, p: float, *, seed: int = 0,
                 budget: Optional[int] = None):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self.p = p
        self.budget = budget
        self.issued = 0
        self.rng = Random(seed)

    @property
    def remaining(self) -> Optional[int]:
        return None if self.budget is None else self.budget - self.issued

    def _verdict(self) -> FaultVerdict:
        return FaultVerdict(self.kind)

    def plan_round(self, round_no, delivered, alive) -> RoundFaultPlan:
        if self.p == 0.0 or (self.budget is not None
                             and self.issued >= self.budget):
            return {}
        plan: dict[int, dict[int, FaultVerdict]] = {}
        random = self.rng.random
        for sender in sorted(delivered):
            # len() is free even on a lazy Broadcast; the Send objects
            # themselves are never needed to decide a drop/dup/corrupt.
            count = len(delivered[sender])
            verdicts: dict[int, FaultVerdict] = {}
            for index in range(count):
                if random() < self.p:
                    if (self.budget is not None
                            and self.issued >= self.budget):
                        if verdicts:
                            plan[sender] = verdicts
                        return plan
                    verdicts[index] = self._verdict()
                    self.issued += 1
            if verdicts:
                plan[sender] = verdicts
        return plan

    def describe(self) -> str:
        budget = "" if self.budget is None else f", budget={self.budget}"
        return f"{type(self).__name__}(p={self.p}{budget})"


class OmissionFaults(_BudgetedRandomFaults):
    """Each resolved send is lost independently with probability ``p``.

    ``budget`` caps the *total* number of omissions over the execution
    (the omission-bounded model): once spent, the channel is reliable
    again, so a protocol that tolerates finitely many losses still
    terminates.  ``budget=None`` is the unbounded lossy channel.
    """

    kind = DROP


class DuplicateDelivery(_BudgetedRandomFaults):
    """Each resolved send is delivered ``1 + copies`` times with
    probability ``p`` — the at-least-once channel."""

    kind = DUPLICATE

    def __init__(self, p: float, *, copies: int = 1, seed: int = 0,
                 budget: Optional[int] = None):
        super().__init__(p, seed=seed, budget=budget)
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        self.copies = copies

    def _verdict(self) -> FaultVerdict:
        return FaultVerdict(DUPLICATE, copies=self.copies)


class CorruptingChannel(_BudgetedRandomFaults):
    """Each resolved send is bit-flipped in one integer field with
    probability ``p`` (see :func:`repro.faults.base.corrupt_message`).
    The per-verdict salt comes from the model's RNG, so which field and
    bit flips is itself seeded and replayable."""

    kind = CORRUPT

    def _verdict(self) -> FaultVerdict:
        return FaultVerdict(CORRUPT, salt=self.rng.getrandbits(16))


class TransientPartition(FaultModel):
    """Splits the node set for rounds ``[start, end)``.

    While the partition is up, every message crossing the cut is held
    and delivered in round ``end`` (the heal round) — the synchronous
    analogue of a network partition with eventual delivery.  Messages
    within a side flow normally.  ``left`` names one side's link
    indices; everything else is the right side.  Deterministic: no RNG.
    """

    def __init__(self, start: int, end: int, left: Iterable[int]):
        if start < 1:
            raise ValueError(f"partition start must be >= 1, got {start}")
        if end <= start:
            raise ValueError(
                f"partition rounds [{start}, {end}) are empty"
            )
        self.start = start
        self.end = end
        self.left = frozenset(left)

    def plan_round(self, round_no, delivered, alive) -> RoundFaultPlan:
        if not self.start <= round_no < self.end:
            return {}
        left = self.left
        release = self.end
        plan: dict[int, dict[int, FaultVerdict]] = {}
        for sender in sorted(delivered):
            sender_left = sender in left
            verdicts: dict[int, FaultVerdict] = {}
            # Needs each send's target, so a lazy Broadcast materializes
            # here — exactly like a crash adversary inspecting a victim.
            for index, send in enumerate(delivered[sender]):
                if (send.to in left) != sender_left:
                    verdicts[index] = FaultVerdict(
                        HOLD, release_round=release)
            if verdicts:
                plan[sender] = verdicts
        return plan

    def describe(self) -> str:
        return (f"TransientPartition(rounds=[{self.start}, {self.end}), "
                f"left={sorted(self.left)})")


class ComposedFaults(FaultModel):
    """Stacks fault models: each is consulted in order, and the first
    verdict issued for a ``(sender, index)`` wins — later models never
    see, and cannot override, an already-decided send."""

    def __init__(self, models: Sequence[FaultModel]):
        self.models = list(models)

    def plan_round(self, round_no, delivered, alive) -> RoundFaultPlan:
        merged: dict[int, dict[int, FaultVerdict]] = {}
        for model in self.models:
            plan = model.plan_round(round_no, delivered, alive)
            for sender, verdicts in plan.items():
                into = merged.setdefault(sender, {})
                for index, verdict in verdicts.items():
                    into.setdefault(index, verdict)
        return merged

    def describe(self) -> str:
        return " + ".join(model.describe() for model in self.models)
