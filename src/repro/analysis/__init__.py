"""Measurement harnesses and theoretical reference curves.

* :mod:`repro.analysis.complexity` -- closed-form envelopes for every
  theorem bound, plus log-log slope fitting to compare measured scaling
  against the claimed exponents.
* :mod:`repro.analysis.stats` -- seed-replicated summary statistics.
* :mod:`repro.analysis.experiments` -- the sweep drivers behind the
  Table 1 / F1-F9 benchmark suite and EXPERIMENTS.md.
"""

from repro.analysis.complexity import (
    byzantine_message_envelope,
    byzantine_round_envelope,
    crash_message_envelope,
    crash_round_bound,
    fit_loglog_slope,
    gossip_bit_envelope,
    obg_message_envelope,
)
from repro.analysis.experiments import (
    byzantine_run_summary,
    crash_run_summary,
    sweep_byzantine,
    sweep_crash,
    table1_rows,
)
from repro.analysis.stats import replicate, summarize

__all__ = [
    "byzantine_message_envelope",
    "byzantine_round_envelope",
    "byzantine_run_summary",
    "crash_message_envelope",
    "crash_round_bound",
    "crash_run_summary",
    "fit_loglog_slope",
    "gossip_bit_envelope",
    "obg_message_envelope",
    "replicate",
    "summarize",
    "sweep_byzantine",
    "sweep_crash",
    "table1_rows",
]
