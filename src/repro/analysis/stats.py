"""Seed-replicated summary statistics for experiment sweeps."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence


@dataclass(frozen=True)
class Summary:
    """Mean / spread of one measured quantity over seed replications."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    def as_dict(self) -> dict:
        return {
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "count": self.count,
        }


def summarize(values: Sequence[float]) -> Summary:
    if not values:
        raise ValueError("cannot summarize an empty sequence")
    count = len(values)
    mean = sum(values) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in values) / (count - 1)
    else:
        variance = 0.0
    return Summary(
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
        count=count,
    )


def replicate(
    run: Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
) -> dict[str, Summary]:
    """Run ``run(seed)`` for every seed and summarize each metric key."""
    if not seeds:
        raise ValueError("need at least one seed")
    samples: dict[str, list[float]] = {}
    for seed in seeds:
        row = run(seed)
        for key, value in row.items():
            samples.setdefault(key, []).append(float(value))
    return {key: summarize(values) for key, values in samples.items()}
