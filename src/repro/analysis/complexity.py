"""Closed-form envelopes of the paper's bounds, and slope fitting.

Measured counts are compared against these envelopes up to a constant
factor: the benchmarks assert the *shape* (who grows like what), not
the authors' constants, as recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Sequence


def _log2(x: float) -> float:
    """log2 clamped below at 1 so envelopes stay monotone for tiny n."""
    return max(1.0, math.log2(x)) if x > 1 else 1.0


def crash_round_bound(n: int) -> int:
    """Deterministic round bound of Theorem 1.2:
    ``3 * ceil(log2 n)`` phases of 3 rounds each."""
    if n <= 1:
        return 0
    return 9 * math.ceil(math.log2(n))


def crash_message_envelope(n: int, f: int) -> float:
    """Theorem 1.2 message bound ``O((f + log n) * n log n)``."""
    return (f + _log2(n)) * n * _log2(n)


def byzantine_round_envelope(n: int, f: int, namespace: int) -> float:
    """Theorem 1.3 round bound ``O(max(f log N, 1) * log n)``."""
    return max(f * _log2(namespace), 1.0) * _log2(n)


def byzantine_message_envelope(n: int, f: int, namespace: int) -> float:
    """Theorem 1.3 message bound ``O(f log N log^3 n + n log n)``."""
    return f * _log2(namespace) * _log2(n) ** 3 + n * _log2(n)


def obg_message_envelope(n: int) -> float:
    """All-to-all halving baseline: ``Theta(n^2 log n)`` messages."""
    return n * n * _log2(n)


def gossip_bit_envelope(n: int, namespace: int, assumed_faults: int) -> float:
    """Gossip baseline: ``Theta((f_assumed + 1) n^2 * n log N)`` bits."""
    return (assumed_faults + 1) * n * n * n * _log2(namespace)


def fit_loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    The empirical scaling exponent: ~2 for the all-to-all baselines'
    messages in ``n``, ~1 (plus log factors) for the paper's algorithms.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a slope")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("log-log fit needs strictly positive data")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    mean_x = sum(log_x) / len(log_x)
    mean_y = sum(log_y) / len(log_y)
    sxx = sum((x - mean_x) ** 2 for x in log_x)
    if sxx == 0:
        raise ValueError("xs are all equal; slope is undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(log_x, log_y))
    return sxy / sxx
