"""Sweep drivers behind the benchmark suite and EXPERIMENTS.md.

Every driver returns plain dict rows so benchmarks, tests, and the
bench report printer all consume the same data.  Namespaces default to
``5 n^2`` (the regime of Theorem 1.4) and original identities are
sampled uniformly from the namespace, seeded, so runs replay exactly.
"""

from __future__ import annotations

import math
from random import Random
from typing import Callable, Mapping, Optional, Sequence

from repro.adversary import byzantine as byzantine_strategies
from repro.adversary.base import CrashAdversary
from repro.adversary.crash import CommitteeHunter, RandomCrash
from repro.baselines.balls_into_slots import run_balls_into_slots
from repro.baselines.collect_rank import run_collect_rank
from repro.baselines.obg_halving import run_obg_halving
from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    run_byzantine_renaming,
)
from repro.core.crash_renaming import CrashRenamingConfig, run_crash_renaming
from repro.sim.runner import ExecutionResult

#: Election constant used throughout the experiments.  The paper's 256
#: makes the committee the whole network for any measurable n (see
#: CrashRenamingConfig); 4 keeps committees at ~4 log2(n) expected
#: members, preserving the algorithm's structure and all thresholds.
EXPERIMENT_ELECTION_CONSTANT = 2.0

#: Candidate-lottery probability factor for the Byzantine experiments:
#: p0 = BYZ_POOL_FACTOR * log2(n) / n, with the full-committee fallback
#: applying automatically whenever the bound separation fails.
BYZ_POOL_FACTOR = 4.0


def default_namespace(n: int) -> int:
    """The ``N >= 5 n^2`` regime of Theorem 1.4."""
    return max(5 * n * n, 16)


def sample_uids(n: int, namespace: int, rng: Random) -> list[int]:
    """``n`` distinct original identities drawn from ``[1, N]``."""
    if namespace < n:
        raise ValueError(f"namespace {namespace} smaller than n={n}")
    return sorted(rng.sample(range(1, namespace + 1), n))


def check_renaming(
    result: ExecutionResult, n: int, *, order_preserving: bool = False
) -> dict[str, bool]:
    """Uniqueness / strong / order-preservation of a finished execution."""
    outputs = result.outputs_by_uid()
    values = list(outputs.values())
    unique = len(set(values)) == len(values)
    strong = all(isinstance(v, int) and 1 <= v <= n for v in values)
    ordered = True
    if order_preserving:
        by_uid = sorted(outputs)
        ordered = all(
            outputs[a] < outputs[b] for a, b in zip(by_uid, by_uid[1:])
        )
    return {"unique": unique, "strong": strong, "order_preserving": ordered}


# ---------------------------------------------------------------------------
# Crash-side drivers


def make_crash_adversary(
    kind: Optional[str], budget: int, rng: Random
) -> Optional[CrashAdversary]:
    if kind is None or budget == 0:
        return None
    if kind == "hunter":
        return CommitteeHunter(budget, rng)
    if kind == "random":
        return RandomCrash(budget, rate=0.05, rng=rng)
    raise ValueError(f"unknown crash adversary kind: {kind!r}")


def crash_run_summary(
    n: int,
    f: int,
    seed: int,
    *,
    adversary: Optional[str] = "hunter",
    namespace: Optional[int] = None,
    election_constant: float = EXPERIMENT_ELECTION_CONSTANT,
) -> dict:
    """One crash-algorithm execution, summarized for sweeps."""
    namespace = namespace or default_namespace(n)
    rng = Random(seed)
    uids = sample_uids(n, namespace, rng)
    config = CrashRenamingConfig(election_constant=election_constant)
    result = run_crash_renaming(
        uids,
        namespace=namespace,
        adversary=make_crash_adversary(adversary, f, Random(seed + 1)),
        config=config,
        seed=seed + 2,
    )
    checks = check_renaming(result, n)
    return {
        "algorithm": "crash-renaming (this work)",
        "n": n,
        "f_budget": f,
        "f_actual": len(result.crashed),
        "rounds": result.rounds,
        "messages": result.metrics.correct_messages,
        "bits": result.metrics.correct_bits,
        "max_message_bits": result.metrics.max_message_bits,
        **checks,
    }


def sweep_crash(
    n_values: Sequence[int],
    f_of_n: Callable[[int], int],
    seeds: Sequence[int],
    **kwargs,
) -> list[dict]:
    rows = []
    for n in n_values:
        for seed in seeds:
            rows.append(crash_run_summary(n, f_of_n(n), seed, **kwargs))
    return rows


def obg_run_summary(n: int, f: int, seed: int,
                    namespace: Optional[int] = None) -> dict:
    namespace = namespace or default_namespace(n)
    rng = Random(seed)
    uids = sample_uids(n, namespace, rng)
    result = run_obg_halving(
        uids,
        namespace=namespace,
        adversary=make_crash_adversary("random", f, Random(seed + 1)),
        seed=seed + 2,
    )
    checks = check_renaming(result, n)
    return {
        "algorithm": "all-to-all halving [34]-style",
        "n": n,
        "f_budget": f,
        "f_actual": len(result.crashed),
        "rounds": result.rounds,
        "messages": result.metrics.correct_messages,
        "bits": result.metrics.correct_bits,
        "max_message_bits": result.metrics.max_message_bits,
        **checks,
    }


def gossip_run_summary(n: int, f: int, seed: int,
                       namespace: Optional[int] = None,
                       assumed_faults: Optional[int] = None) -> dict:
    namespace = namespace or default_namespace(n)
    rng = Random(seed)
    uids = sample_uids(n, namespace, rng)
    result = run_collect_rank(
        uids,
        namespace=namespace,
        adversary=make_crash_adversary("random", f, Random(seed + 1)),
        assumed_faults=assumed_faults,
        seed=seed + 2,
    )
    checks = check_renaming(result, n, order_preserving=True)
    return {
        "algorithm": "full-information gossip [20]-style",
        "n": n,
        "f_budget": f,
        "f_actual": len(result.crashed),
        "rounds": result.rounds,
        "messages": result.metrics.correct_messages,
        "bits": result.metrics.correct_bits,
        "max_message_bits": result.metrics.max_message_bits,
        **checks,
    }


def balls_run_summary(n: int, f: int, seed: int,
                      namespace: Optional[int] = None) -> dict:
    namespace = namespace or default_namespace(n)
    rng = Random(seed)
    uids = sample_uids(n, namespace, rng)
    result = run_balls_into_slots(
        uids,
        namespace=namespace,
        adversary=make_crash_adversary("random", f, Random(seed + 1)),
        seed=seed + 2,
    )
    checks = check_renaming(result, n)
    return {
        "algorithm": "balls-into-slots [3]-style",
        "n": n,
        "f_budget": f,
        "f_actual": len(result.crashed),
        "rounds": result.rounds,
        "messages": result.metrics.correct_messages,
        "bits": result.metrics.correct_bits,
        "max_message_bits": result.metrics.max_message_bits,
        **checks,
    }


# ---------------------------------------------------------------------------
# Byzantine-side drivers


def byzantine_config_for(n: int, f_assumed: int, *,
                         full_committee: bool = False,
                         consensus_iterations: int = 10
                         ) -> ByzantineRenamingConfig:
    """Experiment configuration: sampled committee unless forced full."""
    if full_committee:
        p0 = 1.0
    else:
        p0 = min(1.0, BYZ_POOL_FACTOR * max(1.0, math.log2(n)) / n)
    return ByzantineRenamingConfig(
        max_byzantine=f_assumed,
        candidate_probability=p0,
        consensus_iterations=consensus_iterations,
    )


def byzantine_run_summary(
    n: int,
    f: int,
    seed: int,
    *,
    strategy: str = "withholder",
    namespace: Optional[int] = None,
    config: Optional[ByzantineRenamingConfig] = None,
    f_assumed: Optional[int] = None,
    full_committee: bool = False,
    consensus_iterations: int = 10,
) -> dict:
    """One Byzantine-algorithm execution, summarized for sweeps."""
    namespace = namespace or default_namespace(n)
    rng = Random(seed)
    uids = sample_uids(n, namespace, rng)
    # Carlo picks the corrupt set statically, before shared randomness.
    corrupt = byzantine_strategies.corrupt_set(uids, f, Random(seed + 1))
    factory = {
        "withholder": byzantine_strategies.make_withholder(0.5, salt=seed),
        "equivocator": byzantine_strategies.make_equivocator(),
        "silent": lambda: byzantine_strategies.silent,
        "crash-sim": lambda: byzantine_strategies.crash_simulator,
    }[strategy]
    if strategy in ("silent", "crash-sim"):
        factory = factory()
    if config is None:
        bound = f_assumed if f_assumed is not None else max(f, 1)
        config = byzantine_config_for(
            n, bound, full_committee=full_committee,
            consensus_iterations=consensus_iterations,
        )
    result = run_byzantine_renaming(
        uids,
        namespace=namespace,
        byzantine={uid: factory for uid in corrupt},
        config=config,
        shared_seed=seed + 3,
        seed=seed + 4,
    )
    correct_outputs = result.outputs_by_uid()
    ordered_uids = sorted(correct_outputs)
    splits = max(
        (p.segments_split for p in result.processes
         if getattr(p, "was_committee", False) and not p.byzantine),
        default=0,
    )
    return {
        "algorithm": (
            "byzantine-renaming, full committee"
            if full_committee else "byzantine-renaming (this work)"
        ),
        "n": n,
        "f_actual": f,
        "rounds": result.rounds,
        "messages": result.metrics.correct_messages,
        "bits": result.metrics.correct_bits,
        "max_message_bits": result.metrics.max_message_bits,
        "segments_split": splits,
        "unique": len(set(correct_outputs.values())) == len(correct_outputs),
        "strong": all(1 <= v <= n for v in correct_outputs.values()),
        "order_preserving": all(
            correct_outputs[a] < correct_outputs[b]
            for a, b in zip(ordered_uids, ordered_uids[1:])
        ),
    }


def sweep_byzantine(
    n_values: Sequence[int],
    f_of_n: Callable[[int], int],
    seeds: Sequence[int],
    **kwargs,
) -> list[dict]:
    rows = []
    for n in n_values:
        for seed in seeds:
            rows.append(byzantine_run_summary(n, f_of_n(n), seed, **kwargs))
    return rows


# ---------------------------------------------------------------------------
# Table 1


def table1_rows(n: int, f: int, seed: int = 0) -> list[dict]:
    """One measured row per algorithm family of Table 1.

    The Byzantine rows use ``f_byz = min(f, 2)`` corrupted nodes:
    each withholder inflates the divide-and-conquer work by ``log2 N``
    segments (Lemma 3.10), so a small ``f`` keeps the table affordable
    while still exercising the adversarial path; the dedicated F5/F9
    sweeps measure the growth in ``f`` itself."""
    f_byz = min(f, 2, max((n - 1) // 3, 0))
    rows = [
        crash_run_summary(n, f, seed),
        obg_run_summary(n, f, seed),
        balls_run_summary(n, f, seed),
        gossip_run_summary(n, f, seed),
        byzantine_run_summary(n, f_byz, seed, strategy="withholder"),
        byzantine_run_summary(
            n, f_byz, seed, strategy="withholder", full_committee=True,
        ),
    ]
    return rows
