"""Sweep drivers behind the benchmark suite and EXPERIMENTS.md.

Every driver returns plain dict rows so benchmarks, tests, and the
bench report printer all consume the same data.  Namespaces default to
``5 n^2`` (the regime of Theorem 1.4) and original identities are
sampled uniformly from the namespace, seeded, so runs replay exactly.
"""

from __future__ import annotations

import math
from random import Random
from typing import Callable, Mapping, Optional, Sequence

from repro.adversary import byzantine as byzantine_strategies
from repro.adversary.base import CrashAdversary
from repro.adversary.crash import CommitteeHunter, RandomCrash
from repro.baselines.balls_into_slots import run_balls_into_slots
from repro.baselines.collect_rank import run_collect_rank
from repro.baselines.obg_halving import run_obg_halving
from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    run_byzantine_renaming,
)
from repro.core.crash_renaming import CrashRenamingConfig, run_crash_renaming
from repro.sim.runner import ExecutionResult

#: Election constant used throughout the experiments.  The paper's 256
#: makes the committee the whole network for any measurable n (see
#: CrashRenamingConfig); 4 keeps committees at ~4 log2(n) expected
#: members, preserving the algorithm's structure and all thresholds.
EXPERIMENT_ELECTION_CONSTANT = 2.0

#: Candidate-lottery probability factor for the Byzantine experiments:
#: p0 = BYZ_POOL_FACTOR * log2(n) / n, with the full-committee fallback
#: applying automatically whenever the bound separation fails.
BYZ_POOL_FACTOR = 4.0


def default_namespace(n: int) -> int:
    """The ``N >= 5 n^2`` regime of Theorem 1.4."""
    return max(5 * n * n, 16)


def sample_uids(n: int, namespace: int, rng: Random) -> list[int]:
    """``n`` distinct original identities drawn from ``[1, N]``."""
    if namespace < n:
        raise ValueError(f"namespace {namespace} smaller than n={n}")
    return sorted(rng.sample(range(1, namespace + 1), n))


def attach_ledgers(row: dict, result: ExecutionResult,
                   include_rounds: bool) -> dict:
    """Append the per-round message/bit ledgers to a summary row.

    The engine (:mod:`repro.engine`) pops these into its ``ledgers``
    table; appended last so table columns stay scalar and stable.
    """
    if include_rounds:
        row["messages_per_round"] = list(result.metrics.messages_per_round)
        row["bits_per_round"] = list(result.metrics.bits_per_round)
    return row


def check_renaming(
    result: ExecutionResult, n: int, *, order_preserving: bool = False
) -> dict[str, bool]:
    """Uniqueness / strong / order-preservation of a finished execution."""
    outputs = result.outputs_by_uid()
    values = list(outputs.values())
    unique = len(set(values)) == len(values)
    strong = all(isinstance(v, int) and 1 <= v <= n for v in values)
    ordered = True
    if order_preserving:
        by_uid = sorted(outputs)
        ordered = all(
            outputs[a] < outputs[b] for a, b in zip(by_uid, by_uid[1:])
        )
    return {"unique": unique, "strong": strong, "order_preserving": ordered}


# ---------------------------------------------------------------------------
# Crash-side drivers


def make_crash_adversary(
    kind: Optional[str], budget: int, rng: Random
) -> Optional[CrashAdversary]:
    if kind is None or budget == 0:
        return None
    if kind == "hunter":
        return CommitteeHunter(budget, rng)
    if kind == "random":
        return RandomCrash(budget, rate=0.05, rng=rng)
    raise ValueError(f"unknown crash adversary kind: {kind!r}")


def crash_run_summary(
    n: int,
    f: int,
    seed: int,
    *,
    adversary: Optional[str] = "hunter",
    namespace: Optional[int] = None,
    election_constant: float = EXPERIMENT_ELECTION_CONSTANT,
    include_rounds: bool = False,
) -> dict:
    """One crash-algorithm execution, summarized for sweeps."""
    namespace = namespace or default_namespace(n)
    rng = Random(seed)
    uids = sample_uids(n, namespace, rng)
    config = CrashRenamingConfig(election_constant=election_constant)
    result = run_crash_renaming(
        uids,
        namespace=namespace,
        adversary=make_crash_adversary(adversary, f, Random(seed + 1)),
        config=config,
        seed=seed + 2,
    )
    checks = check_renaming(result, n)
    return attach_ledgers({
        "algorithm": "crash-renaming (this work)",
        "n": n,
        "f_budget": f,
        "f_actual": len(result.crashed),
        "rounds": result.rounds,
        "messages": result.metrics.correct_messages,
        "bits": result.metrics.correct_bits,
        "max_message_bits": result.metrics.max_message_bits,
        **checks,
    }, result, include_rounds)


def sweep_crash(
    n_values: Sequence[int],
    f_of_n: Callable[[int], int],
    seeds: Sequence[int],
    **kwargs,
) -> list[dict]:
    """Crash sweep over ``n_values x seeds`` — thin engine wrapper.

    For parallel or cached execution, build the requests yourself and
    call :func:`repro.engine.run_requests` with ``jobs``/``store``.
    """
    from repro.engine.pool import run_requests
    from repro.engine.sweeps import RunRequest

    requests = [
        RunRequest.make("crash", n, f_of_n(n), seed, **kwargs)
        for n in n_values
        for seed in seeds
    ]
    return rows_or_raise(run_requests(requests))


def rows_or_raise(results) -> list[dict]:
    """Rows of engine results, re-raising the first recorded failure."""
    for result in results:
        if not result.ok:
            raise RuntimeError(
                f"{result.request.describe()} failed:\n{result.error}"
            )
    return [result.row for result in results]


def obg_run_summary(n: int, f: int, seed: int,
                    namespace: Optional[int] = None,
                    include_rounds: bool = False) -> dict:
    namespace = namespace or default_namespace(n)
    rng = Random(seed)
    uids = sample_uids(n, namespace, rng)
    result = run_obg_halving(
        uids,
        namespace=namespace,
        adversary=make_crash_adversary("random", f, Random(seed + 1)),
        seed=seed + 2,
    )
    checks = check_renaming(result, n)
    return attach_ledgers({
        "algorithm": "all-to-all halving [34]-style",
        "n": n,
        "f_budget": f,
        "f_actual": len(result.crashed),
        "rounds": result.rounds,
        "messages": result.metrics.correct_messages,
        "bits": result.metrics.correct_bits,
        "max_message_bits": result.metrics.max_message_bits,
        **checks,
    }, result, include_rounds)


def gossip_run_summary(n: int, f: int, seed: int,
                       namespace: Optional[int] = None,
                       assumed_faults: Optional[int] = None,
                       include_rounds: bool = False) -> dict:
    namespace = namespace or default_namespace(n)
    rng = Random(seed)
    uids = sample_uids(n, namespace, rng)
    result = run_collect_rank(
        uids,
        namespace=namespace,
        adversary=make_crash_adversary("random", f, Random(seed + 1)),
        assumed_faults=assumed_faults,
        seed=seed + 2,
    )
    checks = check_renaming(result, n, order_preserving=True)
    return attach_ledgers({
        "algorithm": "full-information gossip [20]-style",
        "n": n,
        "f_budget": f,
        "f_actual": len(result.crashed),
        "rounds": result.rounds,
        "messages": result.metrics.correct_messages,
        "bits": result.metrics.correct_bits,
        "max_message_bits": result.metrics.max_message_bits,
        **checks,
    }, result, include_rounds)


def balls_run_summary(n: int, f: int, seed: int,
                      namespace: Optional[int] = None,
                      include_rounds: bool = False) -> dict:
    namespace = namespace or default_namespace(n)
    rng = Random(seed)
    uids = sample_uids(n, namespace, rng)
    result = run_balls_into_slots(
        uids,
        namespace=namespace,
        adversary=make_crash_adversary("random", f, Random(seed + 1)),
        seed=seed + 2,
    )
    checks = check_renaming(result, n)
    return attach_ledgers({
        "algorithm": "balls-into-slots [3]-style",
        "n": n,
        "f_budget": f,
        "f_actual": len(result.crashed),
        "rounds": result.rounds,
        "messages": result.metrics.correct_messages,
        "bits": result.metrics.correct_bits,
        "max_message_bits": result.metrics.max_message_bits,
        **checks,
    }, result, include_rounds)


def reelection_run_summary(n: int, f: int, seed: int = 5,
                           include_rounds: bool = False) -> dict:
    """Committee re-election ablation (report section F8).

    Runs the crash algorithm under a :class:`CommitteeHunter` with
    budget ``f`` and reports how far the re-election escalation ``p``
    climbed and how many nodes were ever elected (Lemmas 2.4–2.7).
    """
    namespace = default_namespace(n)
    uids = sample_uids(n, namespace, Random(seed))
    result = run_crash_renaming(
        uids, namespace=namespace,
        adversary=(CommitteeHunter(f, Random(seed + 1)) if f else None),
        config=CrashRenamingConfig(
            election_constant=EXPERIMENT_ELECTION_CONSTANT),
        seed=seed + 2,
    )
    survivors = [p for i, p in enumerate(result.processes)
                 if i not in result.crashed]
    p_values = [p.final_p for p in survivors]
    return attach_ledgers({
        "algorithm": "crash re-election ablation",
        "n": n,
        "f_budget": f,
        "crashed": len(result.crashed),
        "max_p": max(p_values),
        "p_spread": max(p_values) - min(p_values),
        "ever_elected": sum(p.ever_elected for p in result.processes),
        "messages": result.metrics.correct_messages,
    }, result, include_rounds)


# ---------------------------------------------------------------------------
# Byzantine-side drivers


def byzantine_config_for(n: int, f_assumed: int, *,
                         full_committee: bool = False,
                         consensus_iterations: int = 10
                         ) -> ByzantineRenamingConfig:
    """Experiment configuration: sampled committee unless forced full."""
    if full_committee:
        p0 = 1.0
    else:
        p0 = min(1.0, BYZ_POOL_FACTOR * max(1.0, math.log2(n)) / n)
    return ByzantineRenamingConfig(
        max_byzantine=f_assumed,
        candidate_probability=p0,
        consensus_iterations=consensus_iterations,
    )


def byzantine_run_summary(
    n: int,
    f: int,
    seed: int,
    *,
    strategy: str = "withholder",
    namespace: Optional[int] = None,
    config: Optional[ByzantineRenamingConfig] = None,
    f_assumed: Optional[int] = None,
    full_committee: bool = False,
    consensus_iterations: int = 10,
    include_rounds: bool = False,
) -> dict:
    """One Byzantine-algorithm execution, summarized for sweeps."""
    namespace = namespace or default_namespace(n)
    rng = Random(seed)
    uids = sample_uids(n, namespace, rng)
    # Carlo picks the corrupt set statically, before shared randomness.
    corrupt = byzantine_strategies.corrupt_set(uids, f, Random(seed + 1))
    factory = {
        "withholder": byzantine_strategies.make_withholder(0.5, salt=seed),
        "equivocator": byzantine_strategies.make_equivocator(),
        "silent": lambda: byzantine_strategies.silent,
        "crash-sim": lambda: byzantine_strategies.crash_simulator,
    }[strategy]
    if strategy in ("silent", "crash-sim"):
        factory = factory()
    if config is None:
        bound = f_assumed if f_assumed is not None else max(f, 1)
        config = byzantine_config_for(
            n, bound, full_committee=full_committee,
            consensus_iterations=consensus_iterations,
        )
    result = run_byzantine_renaming(
        uids,
        namespace=namespace,
        byzantine={uid: factory for uid in corrupt},
        config=config,
        shared_seed=seed + 3,
        seed=seed + 4,
    )
    correct_outputs = result.outputs_by_uid()
    ordered_uids = sorted(correct_outputs)
    splits = max(
        (p.segments_split for p in result.processes
         if getattr(p, "was_committee", False) and not p.byzantine),
        default=0,
    )
    return attach_ledgers({
        "algorithm": (
            "byzantine-renaming, full committee"
            if full_committee else "byzantine-renaming (this work)"
        ),
        "n": n,
        "f_actual": f,
        "rounds": result.rounds,
        "messages": result.metrics.correct_messages,
        "bits": result.metrics.correct_bits,
        "max_message_bits": result.metrics.max_message_bits,
        "segments_split": splits,
        "unique": len(set(correct_outputs.values())) == len(correct_outputs),
        "strong": all(1 <= v <= n for v in correct_outputs.values()),
        "order_preserving": all(
            correct_outputs[a] < correct_outputs[b]
            for a, b in zip(ordered_uids, ordered_uids[1:])
        ),
    }, result, include_rounds)


def sweep_byzantine(
    n_values: Sequence[int],
    f_of_n: Callable[[int], int],
    seeds: Sequence[int],
    **kwargs,
) -> list[dict]:
    """Byzantine sweep over ``n_values x seeds`` — thin engine wrapper."""
    from repro.engine.pool import run_requests
    from repro.engine.sweeps import RunRequest

    requests = [
        RunRequest.make("byzantine", n, f_of_n(n), seed, **kwargs)
        for n in n_values
        for seed in seeds
    ]
    return rows_or_raise(run_requests(requests))


# ---------------------------------------------------------------------------
# Table 1


def table1_rows(n: int, f: int, seed: int = 0) -> list[dict]:
    """One measured row per algorithm family of Table 1.

    Thin wrapper over the engine's serial path; see
    :func:`repro.engine.sweeps.table1_requests` for the row inventory
    and the ``f_byz`` rationale."""
    from repro.engine.pool import run_requests
    from repro.engine.sweeps import table1_requests

    return rows_or_raise(run_requests(table1_requests(n, f, seed)))
