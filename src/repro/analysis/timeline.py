"""Execution timelines: render what happened, round by round.

Turns an :class:`~repro.sim.runner.ExecutionResult` (run with
``trace=True``) into human-readable summaries -- used by the examples
and by failure-injection tests that want to assert on *when* things
happened rather than only on final outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.runner import ExecutionResult


@dataclass(frozen=True)
class RoundSummary:
    round_no: int
    messages: int
    bits: int
    crashes: tuple[int, ...]
    terminations: tuple[int, ...]


def round_summaries(result: ExecutionResult) -> list[RoundSummary]:
    """One summary per executed round (requires metrics; trace optional)."""
    crashes_by_round: dict[int, list[int]] = {}
    terms_by_round: dict[int, list[int]] = {}
    for event in result.trace:
        if event.kind == "crash":
            crashes_by_round.setdefault(event.round_no, []).append(event.node)
        elif event.kind == "terminate":
            terms_by_round.setdefault(event.round_no, []).append(event.node)
    summaries = []
    for index, (messages, bits) in enumerate(
        zip(result.metrics.messages_per_round, result.metrics.bits_per_round)
    ):
        round_no = index + 1
        summaries.append(RoundSummary(
            round_no=round_no,
            messages=messages,
            bits=bits,
            crashes=tuple(sorted(crashes_by_round.get(round_no, []))),
            terminations=tuple(sorted(terms_by_round.get(round_no, []))),
        ))
    return summaries


def render_timeline(result: ExecutionResult, *, width: int = 40) -> str:
    """An ASCII timeline: one line per round, message volume as a bar."""
    summaries = round_summaries(result)
    if not summaries:
        return "(no rounds executed)"
    peak = max(summary.messages for summary in summaries) or 1
    lines = []
    for summary in summaries:
        bar = "#" * max(
            1 if summary.messages else 0,
            round(summary.messages / peak * width),
        )
        annotations = []
        if summary.crashes:
            annotations.append(f"crash:{list(summary.crashes)}")
        if summary.terminations:
            annotations.append(f"done:{len(summary.terminations)}")
        suffix = ("  " + " ".join(annotations)) if annotations else ""
        lines.append(
            f"r{summary.round_no:>4} |{bar:<{width}}| "
            f"{summary.messages:>7} msgs{suffix}"
        )
    return "\n".join(lines)


def describe(result: ExecutionResult) -> str:
    """A one-paragraph execution summary."""
    metrics = result.metrics
    return (
        f"{result.rounds} rounds; "
        f"{metrics.correct_messages} correct messages "
        f"({metrics.correct_bits} bits, largest "
        f"{metrics.max_message_bits} bits); "
        f"{metrics.byzantine_messages} adversary messages; "
        f"{len(result.crashed)} crashed, "
        f"{len(result.byzantine)} Byzantine, "
        f"{len(result.correct_results)} correct nodes finished"
    )
