"""Table formatting shared by the CLI, the bench report, and examples.

One row model everywhere: a ``dict`` per row, columns taken from the
first row (or given explicitly).  Two renderers: aligned plain text for
terminals, pipe-table markdown for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

Row = Mapping[str, object]


def _format_cell(value: object, float_digits: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def _columns(rows: Sequence[Row], columns: Optional[Sequence[str]]) -> list[str]:
    if columns is not None:
        return list(columns)
    if not rows:
        return []
    return list(rows[0].keys())


def plain_table(rows: Sequence[Row], columns: Optional[Sequence[str]] = None,
                float_digits: int = 2) -> str:
    """An aligned, human-readable table.

    >>> print(plain_table([{"a": 1, "b": True}, {"a": 23, "b": False}]))
    a   b
    1   yes
    23  no
    """
    columns = _columns(rows, columns)
    if not columns:
        return "(no rows)"
    grid = [columns] + [
        [_format_cell(row.get(column), float_digits) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(line[index]) for line in grid)
        for index in range(len(columns))
    ]
    return "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths)).rstrip()
        for line in grid
    )


def markdown_table(rows: Sequence[Row], columns: Optional[Sequence[str]] = None,
                   float_digits: int = 2) -> str:
    """A GitHub-style pipe table (the EXPERIMENTS.md format)."""
    columns = _columns(rows, columns)
    if not columns:
        return "(no rows)"
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "---|" * len(columns),
    ]
    for row in rows:
        cells = [_format_cell(row.get(column), float_digits)
                 for column in columns]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def select(rows: Sequence[Row], columns: Sequence[str]) -> list[dict]:
    """Project rows onto the given columns (missing keys become None)."""
    return [{column: row.get(column) for column in columns} for row in rows]
