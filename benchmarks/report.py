"""Regenerate every measured table of EXPERIMENTS.md.

Usage::

    python benchmarks/report.py               # full report (several minutes)
    python benchmarks/report.py --quick       # smaller sweeps
    python benchmarks/report.py --jobs 8      # parallel across 8 workers
    python benchmarks/report.py --store .repro/runs.sqlite   # resumable
    python benchmarks/report.py --store duckdb://runs.duckdb # analytics

Every protocol execution goes through :mod:`repro.engine`: all sections'
runs are gathered into one request list, deduplicated, executed in
parallel, and (with ``--store``, on by default) cached in the run store
— an interrupted report resumes from where it stopped, and a re-run
after an algorithm change recomputes only what the new code version
invalidates.  ``--store`` accepts a path (SQLite, the default) or a
``scheme://path`` URL selecting another backend; see
``python -m repro runs export`` for the columnar analytics path over a
filled store.

The printed output is markdown; paste it into EXPERIMENTS.md after a
substantive change to the algorithms or the cost model.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from random import Random


def section(title: str, rows: list[dict], notes: str = "") -> None:
    from repro.analysis.tables import markdown_table

    print(f"\n### {title}\n")
    print(markdown_table(rows))
    if notes:
        print(f"\n{notes}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps for a fast sanity pass")
    parser.add_argument("--jobs", type=int,
                        default=max(1, (os.cpu_count() or 1) - 1),
                        help="engine worker processes")
    parser.add_argument("--store", default=None,
                        help="run-store path or scheme://path URL (default "
                             "$REPRO_STORE or .repro/runs.sqlite)")
    parser.add_argument("--no-store", action="store_true",
                        help="recompute everything, touch no store")
    args = parser.parse_args()

    from repro.analysis.complexity import fit_loglog_slope
    from repro.analysis.experiments import rows_or_raise
    from repro.engine.pool import run_requests
    from repro.engine.store import RunStore, default_store_path
    from repro.engine.sweeps import RunRequest, table1_requests
    from repro.lowerbound.anonymous import (
        SilentRenamingExperiment,
        minimum_messages_for_success,
    )

    quick = args.quick

    # Declare every section's protocol runs up front so the engine can
    # dedup across sections and keep all workers busy throughout.
    groups: dict[str, list[RunRequest]] = {}

    def crash(n, f, seed=1, **params):
        return RunRequest.make("crash", n, f, seed, **params)

    def byz(n, f, seed, **params):
        return RunRequest.make("byzantine", n, f, seed, **params)

    n_t1, f_t1 = (32, 4) if quick else (64, 8)
    groups["t1"] = table1_requests(n_t1, f_t1, seed=1)

    ns = [32, 64, 128] if quick else [32, 64, 128, 256]
    groups["f1"] = [
        request
        for n in ns
        for request in (crash(n, 0, adversary=None),
                        RunRequest.make("obg", n, 0, 1))
    ]

    n_f2 = 64 if quick else 128
    f2_budgets = (0, n_f2 // 8, n_f2 // 4, n_f2 // 2, int(0.8 * n_f2))
    groups["f2"] = [crash(n_f2, f) for f in f2_budgets]

    groups["f3"] = [
        request
        for n in ns
        for request in (crash(n, 0, adversary=None), crash(n, n // 2))
    ]

    byz_ns = [16, 32, 64] if quick else [32, 64, 128, 256]
    groups["f4"] = [
        byz(n, 0, 1, f_assumed=max(2, n // 32), consensus_iterations=8)
        for n in byz_ns
    ]

    f5_faults = (0, 1, 2, 3, 4)
    groups["f5"] = [
        byz(16, f, 3, strategy="withholder", f_assumed=4,
            consensus_iterations=8)
        for f in f5_faults
    ]

    f7a_namespaces = (1 << 12, 1 << 18, 1 << 24)
    groups["f7a"] = [crash(32, 4, namespace=namespace)
                     for namespace in f7a_namespaces]

    f7b_ns = (32, 64) if quick else (32, 64, 128)
    groups["f7b"] = [
        request
        for n in f7b_ns
        for request in (crash(n, n // 16),
                        RunRequest.make("gossip", n, n // 16, 1))
    ]

    f8_budgets = (0, 16, 48, 96, 120)
    groups["f8"] = [RunRequest.make("reelection", 128, budget, 5)
                    for budget in f8_budgets]

    f9_faults = (0, 1, 2, 3)
    groups["f9"] = [
        byz(16, f, 7, strategy="withholder", f_assumed=4,
            consensus_iterations=8)
        for f in f9_faults
    ]

    store = None
    if not args.no_store:
        store = RunStore(args.store if args.store else default_store_path())

    all_requests = [request for group in groups.values()
                    for request in group]
    try:
        results = run_requests(all_requests, jobs=args.jobs, store=store)
    finally:
        if store is not None:
            store.close()

    rows_by_group: dict[str, list[dict]] = {}
    cursor = 0
    for name, group in groups.items():
        rows_by_group[name] = rows_or_raise(
            results[cursor:cursor + len(group)]
        )
        cursor += len(group)

    # T1 ---------------------------------------------------------------
    keep = ("algorithm", "rounds", "messages", "bits", "max_message_bits",
            "unique", "strong")
    section(
        f"T1 -- Table 1 measured (n={n_t1}, f={f_t1})",
        [{k: row.get(k) for k in keep} for row in rows_by_group["t1"]],
    )

    # F1 ---------------------------------------------------------------
    f1 = []
    for index, n in enumerate(ns):
        ours, obg = rows_by_group["f1"][2 * index:2 * index + 2]
        f1.append({"n": n, "ours_messages": ours["messages"],
                   "obg_messages": obg["messages"],
                   "ratio_obg_over_ours": obg["messages"] / ours["messages"]})
    slope_ours = fit_loglog_slope(ns, [r["ours_messages"] for r in f1])
    slope_obg = fit_loglog_slope(ns, [r["obg_messages"] for r in f1])
    section("F1 -- crash messages vs n (f=0)", f1,
            f"log-log slopes: ours {slope_ours:.2f}, all-to-all {slope_obg:.2f}.")

    # F2 ---------------------------------------------------------------
    f2 = [
        {"f_budget": f, "f_actual": row["f_actual"],
         "messages": row["messages"], "rounds": row["rounds"]}
        for f, row in zip(f2_budgets, rows_by_group["f2"])
    ]
    section(f"F2 -- crash messages vs f (n={n_f2}, committee hunter)", f2)

    # F3 ---------------------------------------------------------------
    f3 = []
    for index, n in enumerate(ns):
        quiet, hunted = rows_by_group["f3"][2 * index:2 * index + 2]
        f3.append({"n": n, "bound_9ceil_log2": 9 * math.ceil(math.log2(n)),
                   "rounds_f0": quiet["rounds"],
                   "rounds_hunted": hunted["rounds"]})
    section("F3 -- crash rounds vs n", f3)

    # F4 ---------------------------------------------------------------
    f4 = [
        {"n": n, "messages": row["messages"], "bits": row["bits"],
         "rounds": row["rounds"]}
        for n, row in zip(byz_ns, rows_by_group["f4"])
    ]
    slope_byz = fit_loglog_slope(byz_ns, [r["messages"] for r in f4])
    section(
        "F4 -- Byzantine messages vs n (f=0)", f4,
        f"log-log slope: {slope_byz:.2f} -- far below the quadratic wall; "
        "at these n the committee's polylog consensus traffic dominates "
        "the n log n announcement term, so counts are nearly flat in n.",
    )

    # F5 ---------------------------------------------------------------
    f5 = [
        {"f": f, "rounds": row["rounds"], "messages": row["messages"],
         "splits": row["segments_split"]}
        for f, row in zip(f5_faults, rows_by_group["f5"])
    ]
    section("F5 -- Byzantine rounds vs actual f (n=16, withholders)", f5)

    # F6 ---------------------------------------------------------------
    # Monte-Carlo over an analytic model, not a protocol execution, so
    # it stays outside the engine.
    n_lb = 64
    experiment = SilentRenamingExperiment(n=n_lb, rng=Random(11))
    budgets = [0, n_lb // 2, n_lb - 4, n_lb - 2, n_lb - 1, n_lb]
    f6 = experiment.sweep(budgets, trials=1000 if quick else 4000)
    section(
        f"F6 -- lower bound: success vs message budget (n={n_lb})", f6,
        f"messages needed for success >= 3/4: "
        f"{minimum_messages_for_success(n_lb, 0.75)} (= n - 1).",
    )

    # F7 ---------------------------------------------------------------
    f7a = [
        {"log2_N": int(math.log2(namespace)),
         "max_message_bits": row["max_message_bits"]}
        for namespace, row in zip(f7a_namespaces, rows_by_group["f7a"])
    ]
    section("F7a -- max message bits vs log2 N (n=32)", f7a)

    f7b = []
    for index, n in enumerate(f7b_ns):
        ours, gossip = rows_by_group["f7b"][2 * index:2 * index + 2]
        f7b.append({"n": n, "ours_bits": ours["bits"],
                    "gossip_bits": gossip["bits"],
                    "ratio": gossip["bits"] / ours["bits"]})
    section("F7b -- total bits, ours vs gossip family", f7b)

    # F8 ---------------------------------------------------------------
    f8 = [
        {"budget": budget, "crashed": row["crashed"], "max_p": row["max_p"],
         "p_spread": row["p_spread"], "ever_elected": row["ever_elected"],
         "messages": row["messages"]}
        for budget, row in zip(f8_budgets, rows_by_group["f8"])
    ]
    section("F8 -- committee re-election ablation (n=128)", f8)

    # F9 ---------------------------------------------------------------
    f9 = [
        {"f": f, "splits": row["segments_split"],
         "f_log2N_budget": round(f * math.log2(5 * 16 * 16), 1)}
        for f, row in zip(f9_faults, rows_by_group["f9"])
    ]
    section("F9 -- segment splits vs f (n=16, N=1280)", f9)


if __name__ == "__main__":
    sys.exit(main())
