"""Regenerate every measured table of EXPERIMENTS.md.

Usage::

    python benchmarks/report.py            # full report (several minutes)
    python benchmarks/report.py --quick    # smaller sweeps

The printed output is markdown; paste it into EXPERIMENTS.md after a
substantive change to the algorithms or the cost model.
"""

from __future__ import annotations

import argparse
import math
import sys
from random import Random


def section(title: str, rows: list[dict], notes: str = "") -> None:
    from repro.analysis.tables import markdown_table

    print(f"\n### {title}\n")
    print(markdown_table(rows))
    if notes:
        print(f"\n{notes}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps for a fast sanity pass")
    args = parser.parse_args()

    from repro.analysis.complexity import fit_loglog_slope
    from repro.analysis.experiments import (
        byzantine_run_summary,
        crash_run_summary,
        gossip_run_summary,
        obg_run_summary,
        table1_rows,
    )
    from repro.lowerbound.anonymous import (
        SilentRenamingExperiment,
        minimum_messages_for_success,
    )

    quick = args.quick

    # T1 ---------------------------------------------------------------
    n_t1, f_t1 = (32, 4) if quick else (64, 8)
    rows = table1_rows(n_t1, f_t1, seed=1)
    keep = ("algorithm", "rounds", "messages", "bits", "max_message_bits",
            "unique", "strong")
    section(
        f"T1 -- Table 1 measured (n={n_t1}, f={f_t1})",
        [{k: row.get(k) for k in keep} for row in rows],
    )

    # F1 ---------------------------------------------------------------
    ns = [32, 64, 128] if quick else [32, 64, 128, 256]
    f1 = []
    for n in ns:
        ours = crash_run_summary(n, 0, seed=1, adversary=None)
        obg = obg_run_summary(n, 0, seed=1)
        f1.append({"n": n, "ours_messages": ours["messages"],
                   "obg_messages": obg["messages"],
                   "ratio_obg_over_ours": obg["messages"] / ours["messages"]})
    slope_ours = fit_loglog_slope(ns, [r["ours_messages"] for r in f1])
    slope_obg = fit_loglog_slope(ns, [r["obg_messages"] for r in f1])
    section("F1 -- crash messages vs n (f=0)", f1,
            f"log-log slopes: ours {slope_ours:.2f}, all-to-all {slope_obg:.2f}.")

    # F2 ---------------------------------------------------------------
    n_f2 = 64 if quick else 128
    f2 = []
    for f in (0, n_f2 // 8, n_f2 // 4, n_f2 // 2, int(0.8 * n_f2)):
        row = crash_run_summary(n_f2, f, seed=1)
        f2.append({"f_budget": f, "f_actual": row["f_actual"],
                   "messages": row["messages"], "rounds": row["rounds"]})
    section(f"F2 -- crash messages vs f (n={n_f2}, committee hunter)", f2)

    # F3 ---------------------------------------------------------------
    f3 = []
    for n in ns:
        quiet = crash_run_summary(n, 0, seed=1, adversary=None)
        hunted = crash_run_summary(n, n // 2, seed=1)
        f3.append({"n": n, "bound_9ceil_log2": 9 * math.ceil(math.log2(n)),
                   "rounds_f0": quiet["rounds"],
                   "rounds_hunted": hunted["rounds"]})
    section("F3 -- crash rounds vs n", f3)

    # F4 ---------------------------------------------------------------
    byz_ns = [16, 32, 64] if quick else [32, 64, 128, 256]
    f4 = []
    for n in byz_ns:
        row = byzantine_run_summary(n, 0, seed=1, f_assumed=max(2, n // 32),
                                    consensus_iterations=8)
        f4.append({"n": n, "messages": row["messages"], "bits": row["bits"],
                   "rounds": row["rounds"]})
    slope_byz = fit_loglog_slope(byz_ns, [r["messages"] for r in f4])
    section(
        "F4 -- Byzantine messages vs n (f=0)", f4,
        f"log-log slope: {slope_byz:.2f} -- far below the quadratic wall; "
        "at these n the committee's polylog consensus traffic dominates "
        "the n log n announcement term, so counts are nearly flat in n.",
    )

    # F5 ---------------------------------------------------------------
    f5 = []
    for f in (0, 1, 2, 3, 4):
        row = byzantine_run_summary(16, f, seed=3, strategy="withholder",
                                    f_assumed=4, consensus_iterations=8)
        f5.append({"f": f, "rounds": row["rounds"],
                   "messages": row["messages"],
                   "splits": row["segments_split"]})
    section("F5 -- Byzantine rounds vs actual f (n=16, withholders)", f5)

    # F6 ---------------------------------------------------------------
    n_lb = 64
    experiment = SilentRenamingExperiment(n=n_lb, rng=Random(11))
    budgets = [0, n_lb // 2, n_lb - 4, n_lb - 2, n_lb - 1, n_lb]
    f6 = experiment.sweep(budgets, trials=1000 if quick else 4000)
    section(
        f"F6 -- lower bound: success vs message budget (n={n_lb})", f6,
        f"messages needed for success >= 3/4: "
        f"{minimum_messages_for_success(n_lb, 0.75)} (= n - 1).",
    )

    # F7 ---------------------------------------------------------------
    f7a = []
    for namespace in (1 << 12, 1 << 18, 1 << 24):
        row = crash_run_summary(32, 4, seed=1, namespace=namespace)
        f7a.append({"log2_N": int(math.log2(namespace)),
                    "max_message_bits": row["max_message_bits"]})
    section("F7a -- max message bits vs log2 N (n=32)", f7a)

    f7b = []
    for n in (32, 64) if quick else (32, 64, 128):
        ours = crash_run_summary(n, n // 16, seed=1)
        gossip = gossip_run_summary(n, n // 16, seed=1)
        f7b.append({"n": n, "ours_bits": ours["bits"],
                    "gossip_bits": gossip["bits"],
                    "ratio": gossip["bits"] / ours["bits"]})
    section("F7b -- total bits, ours vs gossip family", f7b)

    # F8 ---------------------------------------------------------------
    from repro.adversary.crash import CommitteeHunter
    from repro.analysis.experiments import (
        EXPERIMENT_ELECTION_CONSTANT,
        default_namespace,
        sample_uids,
    )
    from repro.core.crash_renaming import (
        CrashRenamingConfig,
        run_crash_renaming,
    )

    def f8_run(budget, n=128, seed=5):
        namespace = default_namespace(n)
        uids = sample_uids(n, namespace, Random(seed))
        result = run_crash_renaming(
            uids, namespace=namespace,
            adversary=(CommitteeHunter(budget, Random(seed + 1))
                       if budget else None),
            config=CrashRenamingConfig(
                election_constant=EXPERIMENT_ELECTION_CONSTANT),
            seed=seed + 2,
        )
        survivors = [p for i, p in enumerate(result.processes)
                     if i not in result.crashed]
        p_values = [p.final_p for p in survivors]
        return {
            "budget": budget,
            "crashed": len(result.crashed),
            "max_p": max(p_values),
            "p_spread": max(p_values) - min(p_values),
            "ever_elected": sum(p.ever_elected for p in result.processes),
            "messages": result.metrics.correct_messages,
        }

    f8 = [f8_run(budget) for budget in (0, 16, 48, 96, 120)]
    section("F8 -- committee re-election ablation (n=128)", f8)

    # F9 ---------------------------------------------------------------
    f9 = []
    for f in (0, 1, 2, 3):
        row = byzantine_run_summary(16, f, seed=7, strategy="withholder",
                                    f_assumed=4, consensus_iterations=8)
        f9.append({"f": f, "splits": row["segments_split"],
                   "f_log2N_budget": round(f * math.log2(5 * 16 * 16), 1)})
    section("F9 -- segment splits vs f (n=16, N=1280)", f9)


if __name__ == "__main__":
    sys.exit(main())
