"""T1 -- regenerate Table 1: measured rounds/messages/bits per family.

Paper claim (Table 1): all prior algorithms are all-to-all
(``Omega(n^2)`` messages; the big-message families ``Omega(n^3)``
bits), while this work's crash algorithm sends ``O~((f+1)n)`` messages
and its Byzantine algorithm ``O~(f+n)``.  At a fixed measurable ``n``
the shape to reproduce is the ordering between families and the bit
wall of the gossip family.
"""

import pytest

from benchmarks.conftest import attach_rows
from repro.analysis.experiments import table1_rows

N = 64
F = 8


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark):
    rows = benchmark.pedantic(
        lambda: table1_rows(N, F, seed=1), rounds=1, iterations=1
    )
    attach_rows(benchmark, rows, f"Table 1 (n={N}, f={F})")

    by_name = {row["algorithm"]: row for row in rows}
    ours_crash = by_name["crash-renaming (this work)"]
    obg = by_name["all-to-all halving [34]-style"]
    gossip = by_name["full-information gossip [20]-style"]
    ours_byz = by_name["byzantine-renaming (this work)"]
    full_committee = by_name["byzantine-renaming, full committee"]

    # Every family must actually solve strong renaming.
    for row in rows:
        assert row["unique"] and row["strong"], row

    # The gossip family pays the bit wall: an order of magnitude more
    # bits than our crash algorithm, and Theta(n) rounds.
    assert gossip["bits"] > 10 * ours_crash["bits"]
    assert gossip["rounds"] >= N - 1

    # All-to-all message counts do not adapt to failures; ours stays
    # within the (f + log n) n log n envelope.
    from repro.analysis.complexity import crash_message_envelope

    assert ours_crash["messages"] <= 24 * crash_message_envelope(
        N, ours_crash["f_actual"]
    )

    # The committee keeps the Byzantine algorithm under the full-committee
    # ablation's traffic.
    assert ours_byz["messages"] <= full_committee["messages"]

    # Order preservation: the Byzantine algorithm and the gossip family
    # are order-preserving, matching their Table 1 columns.
    assert ours_byz["order_preserving"]
    assert gossip["order_preserving"]
