"""F4 -- Byzantine-algorithm message scaling in n (Theorem 1.3).

Paper claim: ``O(f log N log^3 n + n log n)`` messages -- almost linear
in ``n`` when the actual corruption is small.  Shape: log-log slope of
messages against ``n`` near 1 for honest executions, far below the
all-to-all families' slope 2; the full-committee ablation pays a
higher-order term.
"""

import pytest

from benchmarks.conftest import attach_rows
from repro.analysis.complexity import fit_loglog_slope
from repro.analysis.experiments import byzantine_run_summary

N_VALUES = [32, 64, 128, 256]


def sweep():
    rows = []
    for n in N_VALUES:
        honest = byzantine_run_summary(
            n, 0, seed=1, f_assumed=max(2, n // 32),
            consensus_iterations=8,
        )
        rows.append({
            "n": n,
            "messages": honest["messages"],
            "bits": honest["bits"],
            "rounds": honest["rounds"],
            "ok": honest["unique"] and honest["strong"]
            and honest["order_preserving"],
        })
    return rows


@pytest.mark.benchmark(group="byz-scaling")
def test_byzantine_message_scaling(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    attach_rows(benchmark, rows, "F4 Byzantine messages vs n (f=0)")
    assert all(row["ok"] for row in rows)

    ns = [row["n"] for row in rows]
    slope = fit_loglog_slope(ns, [row["messages"] for row in rows])
    benchmark.extra_info["slope"] = slope
    print(f"byzantine message slope = {slope:.2f}")
    # Almost-linear: clearly separated from the quadratic wall.  The
    # committee is Theta(log n) members whose pairwise consensus traffic
    # adds polylog factors, so the fitted slope sits a little above 1.
    assert slope < 1.75
