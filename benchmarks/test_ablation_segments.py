"""F9 -- ablation: divide-and-conquer segment count (Lemma 3.10).

Design claim: the fingerprinted recursion splits a segment only when a
discrepancy forces it, and each withheld identity can force at most one
root-to-singleton path of ``~log2 N`` splits, so the while loop runs
``O(f log N)`` iterations.  Shapes: splits per withholder ~ ``log2 N``;
splits grow with ``N`` at fixed ``f``; honest runs never split.
"""

import math

import pytest

from benchmarks.conftest import attach_rows
from repro.analysis.experiments import byzantine_run_summary

N = 16


def sweep_f():
    rows = []
    for f in (0, 1, 2, 3):
        row = byzantine_run_summary(
            N, f, seed=7, strategy="withholder", f_assumed=4,
            consensus_iterations=8,
        )
        namespace = 5 * N * N
        rows.append({
            "n": N,
            "f": f,
            "namespace": namespace,
            "splits": row["segments_split"],
            "per_withholder": (
                round(row["segments_split"] / f, 2) if f else 0.0
            ),
            "budget_f_logN": round(f * math.log2(namespace), 1),
            "ok": row["unique"] and row["strong"],
        })
    return rows


def sweep_namespace():
    rows = []
    for namespace in (1 << 10, 1 << 14, 1 << 18):
        row = byzantine_run_summary(
            N, 1, seed=7, strategy="withholder", f_assumed=4,
            namespace=namespace, consensus_iterations=8,
        )
        rows.append({
            "n": N,
            "namespace_log2": int(math.log2(namespace)),
            "splits": row["segments_split"],
            "ok": row["unique"] and row["strong"],
        })
    return rows


@pytest.mark.benchmark(group="ablation-segments")
def test_splits_scale_with_f(benchmark):
    rows = benchmark.pedantic(sweep_f, rounds=1, iterations=1)
    attach_rows(benchmark, rows, f"F9a splits vs f (n={N})")
    assert all(row["ok"] for row in rows)
    assert rows[0]["splits"] == 0
    for row in rows[1:]:
        # Lemma 3.10 budget: at most 4 f log N iterations; and at least
        # a root-to-singleton path when a withholder split the views.
        assert row["splits"] <= 4 * row["budget_f_logN"]
    assert rows[1]["splits"] >= math.log2(5 * N * N) - 2


@pytest.mark.benchmark(group="ablation-segments")
def test_splits_scale_with_namespace(benchmark):
    rows = benchmark.pedantic(sweep_namespace, rounds=1, iterations=1)
    attach_rows(benchmark, rows, f"F9b splits vs log N (n={N}, f=1)")
    assert all(row["ok"] for row in rows)
    splits = [row["splits"] for row in rows]
    assert splits == sorted(splits)
    assert splits[-1] > splits[0]
