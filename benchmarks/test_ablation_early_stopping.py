"""F12 -- ablation: the early-stopping extension.

An optional feature beyond the paper (see CrashRenamingConfig): the
committee broadcasts DONE once every reporter holds a singleton, so
nodes skip the remaining idle phases.  Shapes: ~2-3x fewer rounds and
messages in failure-free runs, identical names, and unchanged
correctness under the committee hunter.
"""

import pytest

from benchmarks.conftest import attach_rows
from repro.adversary.crash import CommitteeHunter
from repro.analysis.experiments import (
    EXPERIMENT_ELECTION_CONSTANT,
    default_namespace,
    sample_uids,
)
from repro.core.crash_renaming import CrashRenamingConfig, run_crash_renaming
from random import Random

N_VALUES = [32, 64, 128]


def run_once(n, early_stopping, hunted=False, seed=4):
    namespace = default_namespace(n)
    uids = sample_uids(n, namespace, Random(seed))
    config = CrashRenamingConfig(
        election_constant=EXPERIMENT_ELECTION_CONSTANT,
        early_stopping=early_stopping,
    )
    adversary = CommitteeHunter(n // 3, Random(seed + 1)) if hunted else None
    result = run_crash_renaming(
        uids, namespace=namespace, adversary=adversary,
        config=config, seed=seed + 2,
    )
    outputs = result.outputs_by_uid()
    return {
        "rounds": result.rounds,
        "messages": result.metrics.correct_messages,
        "names": outputs,
        "ok": len(set(outputs.values())) == len(outputs)
        and all(1 <= v <= n for v in outputs.values()),
    }


def sweep():
    rows = []
    for n in N_VALUES:
        base = run_once(n, early_stopping=False)
        fast = run_once(n, early_stopping=True)
        rows.append({
            "n": n,
            "rounds_base": base["rounds"],
            "rounds_early": fast["rounds"],
            "messages_base": base["messages"],
            "messages_early": fast["messages"],
            "same_names": base["names"] == fast["names"],
            "ok": base["ok"] and fast["ok"],
        })
    return rows


@pytest.mark.benchmark(group="ablation-early-stopping")
def test_early_stopping_saves_idle_phases(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    attach_rows(benchmark, rows, "F12 early-stopping ablation (f=0)")
    for row in rows:
        assert row["ok"] and row["same_names"]
        assert row["rounds_early"] < row["rounds_base"]
        assert row["messages_early"] < row["messages_base"]
    # The saving compounds: roughly the 3x phase multiplier's worth.
    assert rows[-1]["rounds_base"] >= 2 * rows[-1]["rounds_early"]


@pytest.mark.benchmark(group="ablation-early-stopping")
def test_early_stopping_is_safe_under_the_hunter(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            {"n": n, **{k: v for k, v in run_once(n, True, hunted=True).items()
                        if k != "names"}}
            for n in N_VALUES
        ],
        rounds=1, iterations=1,
    )
    attach_rows(benchmark, rows, "F12b early stopping under committee hunter")
    assert all(row["ok"] for row in rows)
