"""F7 -- per-message and total bit complexity.

Paper claims: every message of both algorithms is ``O(log N)`` bits;
total bits are subquadratic for the crash algorithm whenever
``f = o(n / (log n log N))`` and almost linear for the Byzantine
algorithm -- against the gossip family's ``Theta(n^3 log N)`` wall.
Shapes: max message size grows linearly in ``log N`` at fixed ``n``;
total-bit ratios versus the baselines widen with ``n``.
"""

import math

import pytest

from benchmarks.conftest import attach_rows
from repro.analysis.complexity import fit_loglog_slope
from repro.analysis.experiments import (
    crash_run_summary,
    gossip_run_summary,
)

N_FIXED = 32
NAMESPACE_VALUES = [1 << 12, 1 << 15, 1 << 18, 1 << 21, 1 << 24]


def message_size_sweep():
    rows = []
    for namespace in NAMESPACE_VALUES:
        row = crash_run_summary(N_FIXED, 4, seed=1, namespace=namespace)
        rows.append({
            "namespace_log2": int(math.log2(namespace)),
            "max_message_bits": row["max_message_bits"],
        })
    return rows


def total_bits_sweep():
    rows = []
    for n in (32, 64, 128):
        ours = crash_run_summary(n, n // 16, seed=1)
        gossip = gossip_run_summary(n, n // 16, seed=1)
        rows.append({
            "n": n,
            "ours_bits": ours["bits"],
            "gossip_bits": gossip["bits"],
            "ratio": round(gossip["bits"] / ours["bits"], 1),
        })
    return rows


@pytest.mark.benchmark(group="bit-complexity")
def test_messages_are_logarithmic_in_namespace(benchmark):
    rows = benchmark.pedantic(message_size_sweep, rounds=1, iterations=1)
    attach_rows(benchmark, rows, f"F7a max message bits vs log2 N (n={N_FIXED})")
    # Linear in log N: the size/log2(N) ratio is flat within a factor 2.
    ratios = [row["max_message_bits"] / row["namespace_log2"] for row in rows]
    assert max(ratios) <= 2 * min(ratios)
    # And nowhere near Omega(n) bits (the big-message families).
    assert all(row["max_message_bits"] < N_FIXED * 4 for row in rows)


@pytest.mark.benchmark(group="bit-complexity")
def test_total_bits_beat_the_cubic_wall(benchmark):
    rows = benchmark.pedantic(total_bits_sweep, rounds=1, iterations=1)
    attach_rows(benchmark, rows, "F7b total bits, ours vs gossip")
    slope_ours = fit_loglog_slope(
        [row["n"] for row in rows], [row["ours_bits"] for row in rows]
    )
    slope_gossip = fit_loglog_slope(
        [row["n"] for row in rows], [row["gossip_bits"] for row in rows]
    )
    print(f"bits slope: ours={slope_ours:.2f}, gossip={slope_gossip:.2f}")
    assert slope_gossip - slope_ours > 1.0
    assert rows[-1]["ratio"] > rows[0]["ratio"]
