"""F2 -- crash-algorithm cost scales with the actual failure count.

Paper claim (Theorem 1.2): ``O((f + log n) * n log n)`` messages where
``f`` is the number of crashes that actually happen, driven by the
committee-hunter adversary re-triggering elections.  Shape: message
count grows roughly linearly in ``f`` above an ``n polylog`` floor and
stays inside the envelope.
"""

import pytest

from benchmarks.conftest import attach_rows
from repro.analysis.complexity import crash_message_envelope
from repro.analysis.experiments import crash_run_summary
from repro.analysis.stats import replicate

N = 128
F_VALUES = [0, 8, 16, 32, 64, 100]
SEEDS = [1, 2, 3]


def sweep():
    rows = []
    for f in F_VALUES:
        def one_run(seed, f=f):
            row = crash_run_summary(N, f, seed)
            return {"messages": row["messages"], "f_actual": row["f_actual"]}

        summary = replicate(one_run, SEEDS)
        rows.append({
            "n": N,
            "f_budget": f,
            "f_actual_mean": summary["f_actual"].mean,
            "messages_mean": summary["messages"].mean,
            "messages_max": summary["messages"].maximum,
            "envelope": crash_message_envelope(N, summary["f_actual"].mean),
        })
    return rows


@pytest.mark.benchmark(group="crash-adaptivity")
def test_crash_adaptivity_in_f(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    attach_rows(benchmark, rows, f"F2 messages vs f (n={N}, committee hunter)")

    # Theorem 1.2's content is the *envelope*: messages stay within a
    # constant factor of (f + log n) n log n for every f.  Raw totals
    # are deliberately NOT asserted monotone: each crash also deletes a
    # sender, so a dying network can emit fewer messages in absolute
    # terms even as the per-survivor and committee-election costs rise
    # (F8 measures that escalation directly).
    for row in rows:
        assert row["messages_mean"] <= 24 * row["envelope"]
    # The f = 0 floor is the n polylog term (~18 n log^2 n at these
    # constants), already below the all-to-all baseline's n^2 log n at
    # this n -- and diverging from it as n grows (F1).
    import math

    assert rows[0]["messages_mean"] < N * N * math.log2(N)
    # The theorem's envelope grows ~linearly in f; measured costs never
    # outpace it even at the largest f (slope check against envelope).
    assert rows[-1]["messages_max"] <= 24 * rows[-1]["envelope"]
