"""F1 -- crash-algorithm message scaling in n (Theorem 1.2).

Paper claim: with no failures the crash algorithm sends
``O(n log^2 n)`` messages, versus the baselines' ``Theta(n^2 log n)``.
Shape to reproduce: on a log-log plot of messages against ``n``, our
slope stays near 1 (plus log factors) while the all-to-all baseline's
slope is near 2, so the gap widens with ``n``.
"""

import pytest

from benchmarks.conftest import attach_rows
from repro.analysis.complexity import fit_loglog_slope
from repro.analysis.experiments import crash_run_summary, obg_run_summary

N_VALUES = [32, 64, 128, 256]


def sweep():
    rows = []
    for n in N_VALUES:
        ours = crash_run_summary(n, 0, seed=1, adversary=None)
        baseline = obg_run_summary(n, 0, seed=1)
        rows.append({
            "n": n,
            "ours_messages": ours["messages"],
            "obg_messages": baseline["messages"],
            "ratio": round(baseline["messages"] / ours["messages"], 3),
        })
    return rows


@pytest.mark.benchmark(group="crash-scaling")
def test_crash_message_scaling(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    attach_rows(benchmark, rows, "F1 messages vs n (f=0)")

    ns = [row["n"] for row in rows]
    ours_slope = fit_loglog_slope(ns, [row["ours_messages"] for row in rows])
    obg_slope = fit_loglog_slope(ns, [row["obg_messages"] for row in rows])
    benchmark.extra_info["ours_slope"] = ours_slope
    benchmark.extra_info["obg_slope"] = obg_slope
    print(f"ours slope={ours_slope:.2f}, all-to-all slope={obg_slope:.2f}")

    # Shape: ours ~ n polylog -- the fitted exponent carries the log^2
    # factor, so it sits above 1 but clearly below the baseline's ~2 --
    # and the ours/baseline gap widens with n: the measured crossover
    # (ratio passing 1) lands near n = 128 at these constants.
    assert ours_slope < 1.8
    assert obg_slope > 1.9
    assert obg_slope - ours_slope > 0.4
    assert rows[-1]["ratio"] > rows[0]["ratio"]
    assert rows[0]["ratio"] < 1.0 < rows[-1]["ratio"]
