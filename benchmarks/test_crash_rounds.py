"""F3 -- the crash algorithm's deterministic round bound.

Paper claim (Theorem 1.2): always terminates within ``O(log n)``
rounds -- concretely ``3 ceil(log2 n)`` phases of 3 rounds, under any
adversary.  Shape: measured rounds equal the closed form exactly, for
every ``n`` and adversary tried.
"""

import pytest

from benchmarks.conftest import attach_rows
from repro.analysis.complexity import crash_round_bound
from repro.analysis.experiments import crash_run_summary

N_VALUES = [16, 32, 64, 128, 256]


def sweep():
    rows = []
    for n in N_VALUES:
        quiet = crash_run_summary(n, 0, seed=1, adversary=None)
        hunted = crash_run_summary(n, n // 2, seed=1, adversary="hunter")
        rows.append({
            "n": n,
            "bound": crash_round_bound(n),
            "rounds_f0": quiet["rounds"],
            "rounds_hunted": hunted["rounds"],
        })
    return rows


@pytest.mark.benchmark(group="crash-rounds")
def test_round_bound_is_deterministic(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    attach_rows(benchmark, rows, "F3 rounds vs n")
    for row in rows:
        assert row["rounds_f0"] == row["bound"]
        assert row["rounds_hunted"] == row["bound"]
