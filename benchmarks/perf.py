"""Microbenchmarks for the simulator hot path.

Usage::

    python -m repro perf                # full matrix, best-of-3 timing
    python -m repro perf --quick        # small n, single repeat (CI smoke)
    python -m repro perf --out BENCH_perf.json

Every counted experiment in this repo funnels through
:meth:`repro.sim.network.SyncNetwork.step`, so this harness times the
engine itself — not any renaming algorithm — under the two regimes that
dominate real workloads:

``broadcast``
    Every node broadcasts one small message per round (the all-to-all
    pattern of gossip baselines and committee announcements): ``n**2``
    envelopes per round with maximal bit-cache reuse.

``crash``
    The same all-to-all traffic under a :class:`RandomCrash` adversary
    that kills about half the nodes over the execution, exercising
    crash-plan application and the incrementally maintained alive sets.

Results are written to ``BENCH_perf.json`` mapping each benchmark name
(``<workload>_n<N>``) to ``{wall_s, rounds, messages, msgs_per_s,
phases}`` — the repo's perf trajectory.  ``msgs_per_s`` is rounded
half-even (banker's rounding), not floor-truncated.  ``phases`` is a
self-describing :mod:`repro.obs` phase-profile report (plan / charge /
deliver / advance wall times) measured on one *extra* instrumented
execution; the timed repetitions always run with observability
detached, so the headline numbers measure the uninstrumented fast
path.  Because the instrumented execution runs the per-envelope object
path, it is skipped above ``PHASES_MAX_N`` nodes (large-n rows omit
``phases``, exactly like older revisions of this harness).  The
harness touches only the long-stable public simulator API, so it runs
unmodified against older revisions for before/after comparisons.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Callable, Sequence

from repro.adversary.crash import RandomCrash
from repro.sim.messages import CostModel, Message, broadcast
from repro.sim.node import Context, Process, Program
from repro.sim.runner import ExecutionResult, run_network

#: n values of the full matrix and of the --quick CI smoke run.
FULL_SIZES = (128, 256, 512, 10_000)
QUICK_SIZES = (32, 64)

#: Largest n for which the extra instrumented (object-path) execution
#: that produces the ``phases`` breakdown is affordable.
PHASES_MAX_N = 2048

#: From this n on a single timing repetition is used regardless of
#: ``--repeat``: one crash-workload execution at n = 10k already runs
#: for minutes (crash-plan application is O(n) per victim), and the
#: best-of-k spread the repeats exist to suppress is negligible at
#: these wall times.
SINGLE_REPEAT_MIN_N = 4096

#: All workloads, in matrix order.
WORKLOADS = ("broadcast", "crash")


@dataclass(frozen=True)
class PerfBeat(Message):
    """A minimal O(log n)-bit message: one epoch counter."""

    epoch: int

    def payload_bits(self, cost: CostModel) -> int:
        return cost.counter_bits


class BroadcastStorm(Process):
    """Broadcasts one fresh message per round for a fixed round count."""

    def __init__(self, uid: int, rounds: int):
        super().__init__(uid)
        self.rounds = rounds

    def program(self, ctx: Context) -> Program:
        for epoch in range(self.rounds):
            yield broadcast(ctx.n, PerfBeat(epoch))
        return ctx.index + 1


def run_broadcast_heavy(n: int, rounds: int = 6, seed: int = 7,
                        observer=None) -> ExecutionResult:
    """All-to-all traffic, no failures: n**2 envelopes per round."""
    cost = CostModel(n=n, namespace=4 * n)
    processes = [BroadcastStorm(index + 1, rounds) for index in range(n)]
    return run_network(processes, cost, seed=seed, observer=observer)


def run_crash_heavy(n: int, rounds: int = 8, seed: int = 7,
                    observer=None) -> ExecutionResult:
    """All-to-all traffic while a random adversary kills ~half the nodes."""
    cost = CostModel(n=n, namespace=4 * n)
    processes = [BroadcastStorm(index + 1, rounds) for index in range(n)]
    adversary = RandomCrash(budget=n // 2, rate=0.08, rng=Random(seed + 1))
    return run_network(processes, cost, crash_adversary=adversary, seed=seed,
                       observer=observer)


def time_execution(
    fn: Callable[[], ExecutionResult], repeat: int
) -> dict[str, object]:
    """Best-of-``repeat`` wall time and the derived throughput row."""
    best_wall = None
    result = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
    messages = result.metrics.total_messages
    return {
        "wall_s": round(best_wall, 4),
        "rounds": result.rounds,
        "messages": messages,
        # Half-even (banker's) rounding: int() floor-truncated here for
        # a long time, biasing every recorded throughput slightly low.
        "msgs_per_s": round(messages / best_wall) if best_wall else 0,
    }


def run_perf(
    sizes: Sequence[int],
    repeat: int = 3,
    workloads: Sequence[str] = WORKLOADS,
    progress: Callable[[str, dict], None] | None = None,
) -> dict[str, dict]:
    """Run the benchmark matrix; returns ``{name: stats}`` in run order."""
    from repro.obs import EventRecorder

    runners = {
        "broadcast": run_broadcast_heavy,
        "crash": run_crash_heavy,
    }
    unknown = [w for w in workloads if w not in runners]
    if unknown:
        raise ValueError(f"unknown workloads {unknown}; pick from {WORKLOADS}")

    results: dict[str, dict] = {}
    for n in sizes:
        for workload in workloads:
            fn = lambda n=n, workload=workload, **kw: runners[workload](n, **kw)
            name = f"{workload}_n{n}"
            stats = time_execution(fn, 1 if n >= SINGLE_REPEAT_MIN_N else repeat)
            if n <= PHASES_MAX_N:
                # One extra instrumented execution for the phase
                # breakdown; the timed repetitions above ran with
                # observability detached so wall_s/msgs_per_s measure
                # the fast path.  Instrumentation forces the
                # per-envelope object path, so large-n rows skip it.
                recorder = EventRecorder(capacity=4, profile=True)
                fn(observer=recorder)
                stats["phases"] = recorder.profiler.report()
            results[name] = stats
            if progress is not None:
                progress(name, stats)
    return results


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"small sizes {list(QUICK_SIZES)}, one repeat "
                             "(CI smoke; timings informational)")
    parser.add_argument("--n", default=None,
                        help="comma list of n values overriding the matrix")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repeats per benchmark, best-of "
                             "(default 3, or 1 with --quick; always 1 "
                             f"for n >= {SINGLE_REPEAT_MIN_N})")
    parser.add_argument("--workloads", default=None,
                        help="comma list of workloads to run "
                             f"(default all: {','.join(WORKLOADS)}); e.g. "
                             "--workloads broadcast for very large n, "
                             "where crash-plan application dominates")
    parser.add_argument("--out", default="BENCH_perf.json",
                        help="output JSON path (default BENCH_perf.json)")
    args = parser.parse_args(argv)

    if args.n:
        sizes = [int(part) for part in args.n.split(",") if part.strip()]
    else:
        sizes = list(QUICK_SIZES if args.quick else FULL_SIZES)
    repeat = args.repeat if args.repeat is not None else (1 if args.quick else 3)
    if args.workloads:
        workloads = [part.strip() for part in args.workloads.split(",")
                     if part.strip()]
    else:
        workloads = list(WORKLOADS)

    def progress(name: str, stats: dict) -> None:
        print(f"{name:>16}: {stats['messages']:>9} msgs in "
              f"{stats['wall_s']:7.3f}s  ({stats['msgs_per_s']:>8} msgs/s)")

    results = run_perf(sizes, repeat=repeat, workloads=workloads,
                       progress=progress)
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
