"""Chaos frontier benchmark for the renaming service.

Usage::

    python -m repro chaos                 # full ladder, 16k requests
    python -m repro chaos --quick         # CI smoke: 4 rungs, 2k requests
    python -m repro chaos --events chaos_events.jsonl

Runs the serve-level degradation ladder (:mod:`repro.serve.chaos`):
each rung injects a seeded link-fault model into shard 0 of a live
:class:`~repro.serve.service.RenamingService` — usually bounded to a
transient window of protocol attempts — plays the same deterministic
load trace twice (*resilient*: retries + circuit breaker; *baseline*:
PR 6 fail-the-batch), and classifies both runs with the
:mod:`repro.faults.degradation` vocabulary.  The output is the
service's graceful-degradation story as one table: where retries keep
goodput at 1.0, where the breaker quarantines a dead shard, and where
the baseline loses whole batches on the same trace.

Results are written to ``BENCH_chaos.json`` (``repro.serve/chaos@1``).
The exit code asserts the frontier's load-bearing claims, so CI fails
on regressions, never on timings:

* the fault-free control rung is ``SAFE_TERMINATED`` in both arms;
* no resilient rung violates unique-names or strands a future;
* the windowed-omission rungs recover: goodput >= 0.95 and the
  breaker is closed again by the end of the run;
* all recorded events validate against ``repro.obs/serve@2``.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Sequence

from repro.serve.chaos import (
    CHAOS_FORMAT,
    SCENARIO_RESILIENT,
    default_chaos_ladder,
    format_frontier,
    run_chaos,
)
from repro.serve.loadgen import LoadProfile
from repro.serve.resilience import ResiliencePolicy

#: The chaos workload: smaller than the serve benchmark's (every rung
#: runs twice), rename/release-heavy so every shard sees many epochs.
CHAOS_PROFILE = LoadProfile(
    clients=96, requests=16_000, shards=4, max_batch=32, max_wait=0.002,
    arrival_rate=20_000.0, rename_weight=10.0, lookup_weight=80.0,
    release_weight=10.0, namespace=1 << 16, seed=7,
)

#: CI smoke: same shape, four rungs, seconds not minutes.
QUICK_PROFILE = CHAOS_PROFILE.scaled(clients=40, requests=2_000, shards=2,
                                     max_batch=16)

#: Windowed rungs whose resilient arm must fully recover (the
#: acceptance bar: goodput >= 0.95, breaker closed at end of run).
RECOVERY_RUNGS = ("omission-10%-window", "omission-100%-window")

GOODPUT_FLOOR = 0.95


def check_frontier(rows: Sequence[dict]) -> list[str]:
    """The frontier's acceptance assertions; returns failure strings."""
    failures: list[str] = []
    by_cell = {(row["rung"], row["scenario"]): row for row in rows}
    for (rung, scenario), row in by_cell.items():
        if rung == "none" and row["outcome"] != "SAFE_TERMINATED":
            failures.append(
                f"control rung must be SAFE_TERMINATED, got "
                f"{row['outcome']} ({scenario})"
            )
        if scenario == SCENARIO_RESILIENT:
            if not row.get("unique", False):
                failures.append(f"unique-names violated at {rung}")
            if row.get("unresolved", 0):
                failures.append(
                    f"{row['unresolved']} unresolved futures at {rung}"
                )
    for rung in RECOVERY_RUNGS:
        row = by_cell.get((rung, SCENARIO_RESILIENT))
        if row is None:
            continue
        if row["goodput"] < GOODPUT_FLOOR:
            failures.append(
                f"{rung}: resilient goodput {row['goodput']:.3f} < "
                f"{GOODPUT_FLOOR}"
            )
        if row.get("breaker_state") not in (None, "closed"):
            failures.append(
                f"{rung}: breaker still {row['breaker_state']} after the "
                f"fault window"
            )
    return failures


def run_chaos_bench(
    profile: LoadProfile,
    *,
    quick: bool = False,
    resilience: Optional[ResiliencePolicy] = None,
    events_path: Optional[str] = None,
) -> dict:
    """Run the ladder; returns the ``BENCH_chaos.json`` dict."""
    from repro.obs import EventRecorder, validate_events
    from repro.serve.obs import SERVE_EVENT_FORMAT, validate_serve_events

    recorder = EventRecorder(capacity=200_000)
    ladder = default_chaos_ladder(quick=quick)
    frontier = run_chaos(profile, ladder=ladder, resilience=resilience,
                         observer=recorder)
    events = recorder.events()
    problems = validate_events(events) + validate_serve_events(events)
    results = {
        "schema": CHAOS_FORMAT,
        "event_format": SERVE_EVENT_FORMAT,
        "profile": asdict(frontier["profile"]),
        "resilience": json.loads(frontier["resilience"].to_json()),
        "rows": frontier["rows"],
        "summary": frontier["summary"],
        "checks": check_frontier(frontier["rows"]),
        "events": {
            "recorded": len(events),
            "dropped": recorder.dropped,
            "schema_problems": len(problems),
            "problems": problems[:20],
        },
    }
    if events_path:
        results["events"]["path"] = str(recorder.write_jsonl(events_path))
    return results


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 4 rungs over a 2k-request trace")
    parser.add_argument("--requests", type=int, default=None,
                        help=f"requests per run (default "
                             f"{CHAOS_PROFILE.requests}, or "
                             f"{QUICK_PROFILE.requests} with --quick)")
    parser.add_argument("--shards", type=int, default=None,
                        help=f"shard count (default {CHAOS_PROFILE.shards})")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload + protocol seed (default "
                             f"{CHAOS_PROFILE.seed})")
    parser.add_argument("--resilience", default=None, metavar="JSON",
                        help="override the resilient arm's policy "
                             '(e.g. \'{"max_retries": 2}\')')
    parser.add_argument("--events", default=None, metavar="PATH",
                        help="also write the serve event stream as JSONL")
    parser.add_argument("--out", default="BENCH_chaos.json",
                        help="output JSON path (default BENCH_chaos.json)")
    args = parser.parse_args(argv)

    profile = QUICK_PROFILE if args.quick else CHAOS_PROFILE
    overrides = {}
    if args.requests is not None:
        overrides["requests"] = args.requests
    if args.shards is not None:
        overrides["shards"] = args.shards
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        profile = profile.scaled(**overrides)
    resilience = (ResiliencePolicy.from_spec(args.resilience)
                  if args.resilience else None)

    results = run_chaos_bench(
        profile, quick=args.quick, resilience=resilience,
        events_path=args.events,
    )
    print(format_frontier(results["rows"]))
    for check in results["checks"]:
        print(f"FAIL: {check}")
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    failed = bool(results["checks"]) or results["events"]["schema_problems"]
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
