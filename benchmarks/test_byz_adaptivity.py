"""F5 -- Byzantine-algorithm rounds scale with the actual corruption.

Paper claim (Theorem 1.3): ``O(max(f log N, 1) * log n)`` rounds where
``f`` is the number of *actual* Byzantine nodes -- honest executions
finish in polylog rounds even though the protocol tolerates up to
``(1/3 - eps) n`` corruptions.  Shape: rounds grow roughly linearly in
the number of identity-withholding corruptions.
"""

import pytest

from benchmarks.conftest import attach_rows
from repro.analysis.complexity import byzantine_round_envelope
from repro.analysis.experiments import byzantine_run_summary, default_namespace

N = 16
F_VALUES = [0, 1, 2, 3, 4]


def sweep():
    rows = []
    for f in F_VALUES:
        row = byzantine_run_summary(
            N, f, seed=3, strategy="withholder",
            f_assumed=4, consensus_iterations=8,
        )
        rows.append({
            "n": N,
            "f": f,
            "rounds": row["rounds"],
            "splits": row["segments_split"],
            "messages": row["messages"],
            "envelope": round(
                byzantine_round_envelope(N, f, default_namespace(N)), 1
            ),
            "ok": row["unique"] and row["strong"] and row["order_preserving"],
        })
    return rows


@pytest.mark.benchmark(group="byz-adaptivity")
def test_byzantine_rounds_grow_with_actual_f(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    attach_rows(benchmark, rows, f"F5 rounds vs actual f (n={N})")
    assert all(row["ok"] for row in rows)

    rounds = [row["rounds"] for row in rows]
    # Honest executions are two orders of magnitude cheaper than the
    # worst case; each withholder adds work.
    assert rounds[0] < rounds[-1] / 3
    assert all(b >= a for a, b in zip(rounds, rounds[1:]))
    # Within a constant factor of the theorem envelope.
    for row in rows:
        assert row["rounds"] <= 60 * max(row["envelope"], 1)
