"""Load benchmark for the renaming service.

Usage::

    python -m repro serve                 # full matrix: 120k requests
                                          # at 2, 4, and 8 shards
    python -m repro serve --quick         # CI smoke: 5k requests, 2 and
                                          # 4 shards
    python -m repro serve --events serve_events.jsonl

Each run stands up a :class:`repro.serve.service.RenamingService`,
plays the seeded default load profile against it open-loop (dispatch
as fast as the event loop accepts; epochs execute concurrently in the
shard thread pool), and measures sustained requests/sec plus
p50/p95/p99 latency per request kind.  The latency split tells the
service's story: lookups are answered in microseconds straight off the
installed tables, while rename/release latency is dominated by queue
wait at saturation — an open-loop run measures the service at its
throughput limit, not at a comfortable operating point.

Results are written to ``BENCH_serve.json`` (``repro.serve/bench@1``):
one entry per shard count carrying the load report, the service's
counted totals (epochs, protocol rounds/messages/bits), per-shard
rows, and a ``repro.obs/profile@1`` phase breakdown that splits each
shard's epochs into the protocol's plan/charge/deliver/advance phases.
Serve-level ``repro.obs/serve@1`` events from every run are recorded,
schema-validated (problem counts land in the output), and optionally
written as JSONL for ``python -m repro obs tail``.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.serve.loadgen import (
    DEFAULT_PROFILE,
    QUICK_PROFILE,
    LoadProfile,
    execute_profile,
)

#: Benchmark output format tag.
BENCH_FORMAT = "repro.serve/bench@1"

#: Shard counts of the full matrix and of the --quick CI smoke run.
FULL_SHARDS = (2, 4, 8)
QUICK_SHARDS = (2, 4)

#: Keys of the per-run report too bulky for the benchmark file (the
#: boundary list alone has one entry per batch).
_BULKY_KEYS = ("boundaries", "epoch_messages", "epoch_bits")


def run_serve_bench(
    shard_counts: Sequence[int],
    profile: LoadProfile,
    *,
    events_path: Optional[str] = None,
    progress: Optional[Callable[[str, dict], None]] = None,
) -> dict:
    """Run the benchmark matrix; returns the ``BENCH_serve.json`` dict.

    One service per shard count, same seeded workload otherwise.  All
    runs share one event recorder so the optional JSONL file carries
    the whole session; its serve events are schema-validated here and
    the problem count is part of the output (CI fails on problems, not
    on timings).
    """
    from repro.obs import EventRecorder, validate_events
    from repro.serve.obs import SERVE_EVENT_FORMAT, validate_serve_events

    recorder = EventRecorder(profile=True)
    results: dict = {
        "schema": BENCH_FORMAT,
        "event_format": SERVE_EVENT_FORMAT,
        "profile": asdict(profile),
        "runs": {},
    }
    for shards in shard_counts:
        run_profile = profile.scaled(shards=shards)
        report = execute_profile(
            run_profile, observer=recorder, profile_shards=True,
        )
        entry = {key: value for key, value in report.items()
                 if key not in _BULKY_KEYS}
        entry["shards"] = shards
        name = f"serve_s{shards}"
        results["runs"][name] = entry
        if progress is not None:
            progress(name, entry)
    events = recorder.events()
    problems = validate_events(events) + validate_serve_events(events)
    results["events"] = {
        "recorded": len(events),
        "dropped": recorder.dropped,
        "schema_problems": len(problems),
        "problems": problems[:20],
    }
    if events_path:
        results["events"]["path"] = str(recorder.write_jsonl(events_path))
    return results


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"~5k requests at shard counts "
                             f"{list(QUICK_SHARDS)} (CI smoke; timings "
                             "informational)")
    parser.add_argument("--shards", default=None,
                        help="comma list of shard counts overriding the "
                             "matrix")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per run (default "
                             f"{DEFAULT_PROFILE.requests}, or 5000 with "
                             "--quick)")
    parser.add_argument("--clients", type=int, default=None,
                        help="client identities (default "
                             f"{DEFAULT_PROFILE.clients})")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload + protocol seed (default "
                             f"{DEFAULT_PROFILE.seed}; same seed, same "
                             "trace, same batch boundaries)")
    parser.add_argument("--events", default=None, metavar="PATH",
                        help="also write the serve event stream as JSONL")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="output JSON path (default BENCH_serve.json)")
    args = parser.parse_args(argv)

    profile = QUICK_PROFILE.scaled(requests=5_000) if args.quick \
        else DEFAULT_PROFILE
    overrides = {}
    if args.requests is not None:
        overrides["requests"] = args.requests
    if args.clients is not None:
        overrides["clients"] = args.clients
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        profile = profile.scaled(**overrides)
    if args.shards:
        shard_counts = [int(part) for part in args.shards.split(",")
                        if part.strip()]
    else:
        shard_counts = list(QUICK_SHARDS if args.quick else FULL_SHARDS)

    def progress(name: str, entry: dict) -> None:
        rename = entry["latency"]["rename"]
        print(f"{name:>10}: {entry['requests']:>7} reqs in "
              f"{entry['wall_s']:7.2f}s  ({entry['throughput_rps']:>8.1f} "
              f"req/s)  rename p50/p99 {rename['p50_ms']:.0f}/"
              f"{rename['p99_ms']:.0f} ms  epochs {entry['service']['epochs']}")

    results = run_serve_bench(
        shard_counts, profile, events_path=args.events, progress=progress,
    )
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    return 1 if results["events"]["schema_problems"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
