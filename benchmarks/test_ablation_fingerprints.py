"""F10 -- ablation: what fingerprinting buys (Section 3.1's core trick).

Design claim: committee members "cannot directly exchange these bit
vectors, as that would again cost too much communication", so they
exchange ``O(log N)``-bit fingerprints instead.  The ablation runs the
*identical* divide-and-conquer with raw segment contents in place of
digests.  Shape: identical control flow (same splits, same rounds,
same names), but the biggest message grows from ``O(log N)`` bits to
``Theta(n log N)`` bits -- the per-message blow-up the paper's Table 1
charges the big-message families for.
"""

import pytest

from benchmarks.conftest import attach_rows
from repro.adversary import byzantine as byz
from repro.analysis.experiments import default_namespace, sample_uids
from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    run_byzantine_renaming,
)
from random import Random

N = 64


def run_variant(use_fingerprints: bool) -> dict:
    namespace = default_namespace(N)
    uids = sample_uids(N, namespace, Random(21))
    corrupt = byz.corrupt_set(uids, 1, Random(22))
    config = ByzantineRenamingConfig(
        max_byzantine=2,
        candidate_probability=min(1.0, 24 / N),
        consensus_iterations=8,
        use_fingerprints=use_fingerprints,
    )
    result = run_byzantine_renaming(
        uids,
        namespace=namespace,
        byzantine={uid: byz.make_withholder(0.5) for uid in corrupt},
        config=config,
        shared_seed=23,
        seed=24,
    )
    outputs = result.outputs_by_uid()
    splits = max(
        (p.segments_split for p in result.processes
         if getattr(p, "was_committee", False) and not p.byzantine),
        default=0,
    )
    return {
        "fingerprints": use_fingerprints,
        "rounds": result.rounds,
        "splits": splits,
        "bits": result.metrics.correct_bits,
        "max_message_bits": result.metrics.max_message_bits,
        "unique": len(set(outputs.values())) == len(outputs),
    }


@pytest.mark.benchmark(group="ablation-fingerprints")
def test_fingerprints_bound_message_size(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_variant(True), run_variant(False)],
        rounds=1, iterations=1,
    )
    attach_rows(benchmark, rows, f"F10 fingerprint ablation (n={N}, f=1)")
    with_fp, without_fp = rows
    assert with_fp["unique"] and without_fp["unique"]
    # Identical control flow: the recursion is driven by value
    # (in)equality, which both representations decide identically.
    assert with_fp["rounds"] == without_fp["rounds"]
    assert with_fp["splits"] == without_fp["splits"]
    # The trick's payoff: without fingerprints the worst message grows
    # ~n/6 times larger (raw n-identity segment vs a 6 log N digest).
    assert without_fp["max_message_bits"] > 3 * with_fp["max_message_bits"]
