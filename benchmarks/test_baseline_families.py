"""F11 -- the three prior-work baseline families, side by side.

Table 1 groups prior work into families by their cost signature.  This
benchmark measures all three implemented families at one scale and
asserts the signatures that distinguish them:

* all-to-all halving [34]/[15]-style: few rounds, quadratic messages,
  small messages;
* balls-into-slots [3]-style: few (randomized) rounds, quadratic
  messages, small messages;
* full-information gossip [20]/[33]-style: Theta(n) rounds, big
  messages, cubic bits.

None of them adapts its message count to the actual failure count --
the gap the paper's algorithms close.
"""

import math

import pytest

from benchmarks.conftest import attach_rows
from repro.analysis.experiments import (
    balls_run_summary,
    crash_run_summary,
    gossip_run_summary,
    obg_run_summary,
)

N = 96
F = 8


def sweep():
    keep = ("algorithm", "rounds", "messages", "bits", "max_message_bits")
    rows = [
        {k: row[k] for k in keep} | {"ok": row["unique"] and row["strong"]}
        for row in (
            obg_run_summary(N, F, seed=2),
            balls_run_summary(N, F, seed=2),
            gossip_run_summary(N, F, seed=2),
            crash_run_summary(N, F, seed=2),
        )
    ]
    return rows


@pytest.mark.benchmark(group="baseline-families")
def test_family_cost_signatures(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    attach_rows(benchmark, rows, f"F11 baseline families (n={N}, f={F})")
    obg, balls, gossip, ours = rows
    assert all(row["ok"] for row in rows)

    # Round signatures.
    assert obg["rounds"] == math.ceil(math.log2(N))
    assert balls["rounds"] <= 4 * math.ceil(math.log2(N))
    assert gossip["rounds"] >= N - F - 1

    # Message-size signatures: only the gossip family ships Theta(n)-bit
    # messages.
    assert gossip["max_message_bits"] > 10 * obg["max_message_bits"]
    assert balls["max_message_bits"] < 64

    # Message-count signatures: every baseline is all-to-all (>= ~n^2 /
    # survivor-adjusted), while ours is committee-bound.
    survivors = N - F
    for row in (obg, balls, gossip):
        assert row["messages"] >= survivors * survivors
    assert ours["messages"] < obg["messages"]

    # Bit wall: gossip dwarfs everyone.
    assert gossip["bits"] > 20 * max(obg["bits"], balls["bits"], ours["bits"])
