"""F6 -- the Omega(n) message lower bound (Theorem 1.4).

Paper claim: any strong renaming algorithm succeeding with probability
>= 3/4 sends Omega(n) messages in expectation, even with shared
randomness, authentication, and no failures.  Shape: measured success
of the best silent-node protocol crosses 3/4 only once all but one
node has communicated, i.e. the message floor is ``n - 1``.
"""

import pytest
from random import Random

from benchmarks.conftest import attach_rows
from repro.lowerbound.anonymous import (
    SilentRenamingExperiment,
    exact_success_probability,
    minimum_messages_for_success,
)

N = 64
TRIALS = 3000


def sweep():
    experiment = SilentRenamingExperiment(n=N, rng=Random(11))
    budgets = [0, N // 4, N // 2, 3 * N // 4, N - 4, N - 2, N - 1, N]
    return experiment.sweep(budgets, trials=TRIALS)


@pytest.mark.benchmark(group="lower-bound")
def test_message_floor(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    attach_rows(benchmark, rows, f"F6 success vs message budget (n={N})")

    for row in rows:
        assert row["measured_success"] == pytest.approx(
            row["exact_success"], abs=0.05
        )
    by_budget = {row["messages"]: row["measured_success"] for row in rows}
    # Below the floor, failure probability stays over 1/4 ...
    assert by_budget[N - 2] <= 0.6
    assert by_budget[N // 2] <= 0.01
    # ... and only n-1 coordinated messages reach the 3/4 target.
    assert by_budget[N - 1] == 1.0
    assert minimum_messages_for_success(N, 0.75) == N - 1
