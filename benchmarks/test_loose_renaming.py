"""F13 -- the time-for-namespace trade (Definition 1.1's general M).

Definition 1.1 allows any target namespace ``n <= M < N``; *strong*
renaming (``M = n``) is the hardest case and the paper's focus.  The
balls-into-slots family exposes the classical trade directly: with
``M = (1 + eps) n`` slots the per-probe collision probability stays
below a constant, so the race finishes in a constant-ish number of
rounds instead of ``O(log n)``.  Shape: rounds fall monotonically as
the slack grows, names stay distinct and within ``[1, M]``.
"""

import pytest

from benchmarks.conftest import attach_rows
from repro.analysis.stats import summarize
from repro.baselines.balls_into_slots import run_balls_into_slots

N = 128
SLACKS = [1.0, 1.25, 1.5, 2.0, 4.0]
SEEDS = range(5)


def sweep():
    rows = []
    for slack in SLACKS:
        slots = int(N * slack)
        rounds, messages = [], []
        for seed in SEEDS:
            result = run_balls_into_slots(
                range(1, N + 1), slots=slots, seed=seed
            )
            outputs = result.outputs_by_uid()
            assert len(set(outputs.values())) == N
            assert all(1 <= v <= slots for v in outputs.values())
            rounds.append(result.rounds)
            messages.append(result.metrics.correct_messages)
        rows.append({
            "M_over_n": slack,
            "slots": slots,
            "rounds_mean": summarize(rounds).mean,
            "rounds_max": summarize(rounds).maximum,
            "messages_mean": summarize(messages).mean,
        })
    return rows


@pytest.mark.benchmark(group="loose-renaming")
def test_slack_buys_rounds(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    attach_rows(benchmark, rows, f"F13 rounds vs namespace slack (n={N})")
    means = [row["rounds_mean"] for row in rows]
    # Monotone improvement with slack, and a real gap end to end.
    assert all(b <= a for a, b in zip(means, means[1:]))
    assert means[-1] <= means[0] / 1.5
    # Fewer rounds also means fewer all-to-all broadcasts.
    assert rows[-1]["messages_mean"] < rows[0]["messages_mean"]
