"""F8 -- ablation: committee re-election under sustained attack.

Design claim (Lemmas 2.4-2.7): every time the adversary wipes out the
whole committee, survivors double their election probability (p += 1),
so the adversary must crash geometrically more nodes to keep stalling
-- that is what makes the message bound scale with f.  Shapes: p stays
0 without failures; grows under the committee hunter; the p-spread
stays <= 1 (Lemma 2.5); and the number of ever-elected nodes tracks
``min(2^p log n, n)`` (Lemma 2.6) within constants.
"""

import math
from random import Random

import pytest

from benchmarks.conftest import attach_rows
from repro.adversary.crash import CommitteeHunter
from repro.analysis.experiments import (
    EXPERIMENT_ELECTION_CONSTANT,
    default_namespace,
    sample_uids,
)
from repro.core.crash_renaming import CrashRenamingConfig, run_crash_renaming

N = 128


def run_with_budget(budget, seed=5):
    namespace = default_namespace(N)
    uids = sample_uids(N, namespace, Random(seed))
    result = run_crash_renaming(
        uids,
        namespace=namespace,
        adversary=CommitteeHunter(budget, Random(seed + 1)) if budget else None,
        config=CrashRenamingConfig(
            election_constant=EXPERIMENT_ELECTION_CONSTANT
        ),
        seed=seed + 2,
    )
    survivors = [
        p for i, p in enumerate(result.processes) if i not in result.crashed
    ]
    p_values = [p.final_p for p in survivors]
    return {
        "budget": budget,
        "crashed": len(result.crashed),
        "max_p": max(p_values),
        "p_spread": max(p_values) - min(p_values),
        "ever_elected": sum(p.ever_elected for p in result.processes),
        "messages": result.metrics.correct_messages,
        "unique": len({p.interval.lo for p in survivors}) == len(survivors),
    }


def sweep():
    return [run_with_budget(budget) for budget in (0, 16, 48, 96, 120)]


@pytest.mark.benchmark(group="ablation-committee")
def test_reelection_escalates_with_pressure(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    attach_rows(benchmark, rows, f"F8 committee re-election (n={N})")

    assert all(row["unique"] for row in rows)
    # No failures -> p never moves.
    assert rows[0]["max_p"] == 0
    # Heavy pressure -> re-elections happened.
    assert rows[-1]["max_p"] >= 1
    # Lemma 2.5: the p spread among survivors is at most 1, always.
    assert all(row["p_spread"] <= 1 for row in rows)
    # Lemma 2.6 shape: ever-elected count within constants of
    # min(2^p log n, n).
    for row in rows:
        envelope = min(
            (2 ** row["max_p"])
            * EXPERIMENT_ELECTION_CONSTANT * math.log2(N) * 4,
            N,
        )
        assert row["ever_elected"] <= envelope + 8
    # Lemma 2.7's converse shape: escalation is *caused* by crashes --
    # p and the election count rise monotonically with the adversary's
    # spend.  (Raw message totals are non-monotone because crashed
    # nodes stop sending; the election count is the resource the
    # adversary is forced to burn against.)
    max_ps = [row["max_p"] for row in rows]
    elected = [row["ever_elected"] for row in rows]
    assert max_ps == sorted(max_ps)
    assert elected == sorted(elected)
    assert elected[-1] > 4 * elected[0]
