"""Shared benchmark utilities.

Each benchmark regenerates one of the paper artifacts catalogued in
DESIGN.md (Table 1 or an F-series claim).  The measured rows are
attached to ``benchmark.extra_info`` so ``--benchmark-json`` captures
them, and printed so a ``pytest benchmarks/ --benchmark-only -s`` run
shows the regenerated tables inline.  ``benchmarks/report.py``
re-runs the same sweeps standalone to refresh EXPERIMENTS.md.
"""

from __future__ import annotations


def attach_rows(benchmark, rows, label: str) -> None:
    from repro.analysis.tables import plain_table

    benchmark.extra_info[label] = rows
    print(f"\n== {label} ==")
    print(plain_table(rows))
