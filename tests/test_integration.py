"""Cross-module integration scenarios.

Each test composes several subsystems end to end the way a downstream
user would: directory epochs with timelines, early stopping inside the
directory, mixed baselines over one uid population, and the
analysis-layer plumbing over real executions.
"""

from random import Random

from repro.adversary.crash import CommitteeHunter, MidSendPartitioner
from repro.analysis.experiments import check_renaming, sample_uids
from repro.analysis.tables import plain_table
from repro.analysis.timeline import describe, render_timeline
from repro.apps.overlay_directory import OverlayDirectory
from repro.baselines.balls_into_slots import run_balls_into_slots
from repro.baselines.obg_halving import run_obg_halving
from repro.core.crash_renaming import CrashRenamingConfig, run_crash_renaming


class TestDirectoryLifecycle:
    def test_three_epochs_with_churn_and_attacks(self):
        directory = OverlayDirectory(
            1 << 20,
            config=CrashRenamingConfig(election_constant=4,
                                       early_stopping=True),
            seed=11,
        )
        rng = Random(1)
        for uid in rng.sample(range(1, 1 << 20), 20):
            directory.join(uid)

        first = directory.run_epoch()
        assert sorted(first.assignment.values()) == list(range(1, 21))

        # Epoch 2: an attack plus voluntary churn.
        second = directory.run_epoch(
            adversary=CommitteeHunter(6, Random(2))
        )
        survivors = len(directory.members)
        assert second.renamed == survivors

        # Epoch 3: newcomers fill the freed compact space.
        for uid in rng.sample(range(1 << 19, 1 << 20), 4):
            if uid not in directory.members:
                directory.join(uid)
        third = directory.run_epoch()
        values = sorted(third.assignment.values())
        assert values == list(range(1, len(directory.members) + 1))
        assert [r.epoch for r in directory.history] == [1, 2, 3]


class TestTimelineOverRealRuns:
    def test_crash_renaming_timeline_shows_attack_shape(self):
        n = 24
        result = run_crash_renaming(
            range(1, n + 1),
            adversary=MidSendPartitioner(6, Random(3), per_round=1),
            config=CrashRenamingConfig(election_constant=4),
            seed=4, trace=True,
        )
        text = render_timeline(result)
        assert text.count("\n") + 1 == result.rounds
        assert "crash:" in text
        summary = describe(result)
        assert f"{len(result.crashed)} crashed" in summary

    def test_tables_render_experiment_rows(self):
        from repro.analysis.experiments import crash_run_summary

        rows = [crash_run_summary(8, 0, seed=s, adversary=None)
                for s in (1, 2)]
        text = plain_table(rows, columns=["n", "rounds", "messages",
                                          "unique"])
        assert "rounds" in text and "yes" in text


class TestOnePopulationAcrossAlgorithms:
    def test_same_uids_through_three_protocols(self):
        """The same node population renamed by three different
        algorithms: all strong, and the two rank-based ones agree on
        the mapping exactly."""
        namespace = 5000
        uids = sample_uids(20, namespace, Random(5))

        halving = run_obg_halving(uids, namespace=namespace, seed=6)
        balls = run_balls_into_slots(uids, namespace=namespace, seed=6)
        committee = run_crash_renaming(
            uids, namespace=namespace,
            config=CrashRenamingConfig(election_constant=4), seed=6,
        )
        for result in (halving, balls, committee):
            checks = check_renaming(result, 20)
            assert checks["unique"] and checks["strong"]

        # Failure-free halving and committee renaming both realise the
        # rank mapping (deterministic splits by identity order).
        assert halving.outputs_by_uid() == committee.outputs_by_uid()
