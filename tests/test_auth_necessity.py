"""Why the authentication assumption matters (Section 3.2).

The Byzantine algorithm's Fact 3.6 ("only genuine identities appear in
identity lists") rests entirely on message authentication.  These tests
show both directions: with authentication the protocol shrugs off a
spoofing adversary; without it, a single forged identity announcement
poisons the identity lists and breaks *strong* renaming (names escape
``[1, n]``), exactly the failure mode the assumption rules out.
"""

from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    ByzantineRenamingNode,
    IdAnnounce,
)
from repro.crypto.auth import Authenticator
from repro.crypto.shared_randomness import SharedRandomness
from repro.sim.messages import CostModel, Send, broadcast
from repro.sim.node import Process
from repro.sim.runner import run_network

UIDS = [10, 25, 44, 61, 83, 120, 155, 190]
PHANTOM = 70  # a namespace slot no real node owns, between 61 and 83
NAMESPACE = 256


class SpoofingByzantine(Process):
    """Announces a phantom identity to everyone, forging the sender."""

    byzantine = True

    def __init__(self, uid: int, config: ByzantineRenamingConfig):
        super().__init__(uid)
        self.config = config

    def program(self, ctx):
        # Skip the election round, then inject the forged announcement
        # in the aggregation round, addressed to every link (committee
        # members will filter by view membership -- with a full
        # committee everyone is in view).
        yield []
        forged = []
        for link in range(ctx.n):
            forged.append(Send(to=link, message=IdAnnounce(self.uid)))
            forged.append(
                Send(to=link, message=IdAnnounce(PHANTOM), claim=PHANTOM)
            )
        yield forged
        while True:
            yield []


def run_with(authenticated: bool):
    config = ByzantineRenamingConfig(max_byzantine=2)
    processes = [
        SpoofingByzantine(uid, config) if uid == UIDS[0]
        else ByzantineRenamingNode(uid, config)
        for uid in UIDS
    ]
    cost = CostModel(n=len(UIDS), namespace=NAMESPACE)
    return run_network(
        processes,
        cost,
        shared=SharedRandomness(5),
        authenticator=Authenticator(enabled=authenticated),
        seed=6,
    )


class TestAuthenticationMatters:
    def test_with_authentication_the_spoof_is_inert(self):
        result = run_with(authenticated=True)
        outputs = result.outputs_by_uid()
        correct = [uid for uid in UIDS if uid != UIDS[0]]
        values = [outputs[uid] for uid in sorted(correct)]
        # Strong renaming intact: distinct names within [1, n], ordered.
        assert len(set(values)) == len(values)
        assert all(1 <= value <= len(UIDS) for value in values)
        assert values == sorted(values)

    def test_without_authentication_the_phantom_breaks_strongness(self):
        result = run_with(authenticated=False)
        outputs = result.outputs_by_uid()
        # The phantom identity occupies a rank slot, pushing every
        # genuine identity above it one rank up: the largest correct
        # node is now named n + 1, outside the target namespace.
        assert max(outputs.values()) > len(UIDS)
