"""Tests for the crash-resilient renaming algorithm (Theorem 1.2)."""

import math
from random import Random

import pytest

from repro.adversary.crash import (
    CommitteeHunter,
    MidSendPartitioner,
    RandomCrash,
    ScheduledCrash,
)
from repro.core.crash_renaming import (
    CrashRenamingConfig,
    CrashRenamingNode,
    run_crash_renaming,
)


def assert_strong_renaming(result, n):
    outputs = result.outputs_by_uid()
    values = list(outputs.values())
    assert len(set(values)) == len(values), f"duplicate names: {outputs}"
    assert all(1 <= value <= n for value in values), f"out of range: {outputs}"


SMALL_CONFIG = CrashRenamingConfig(election_constant=4)


class TestFailureFree:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9, 16, 33, 64])
    def test_all_names_assigned_exactly_once(self, n):
        result = run_crash_renaming(range(10, 10 + 3 * n, 3), seed=n)
        outputs = result.outputs_by_uid()
        assert sorted(outputs.values()) == list(range(1, n + 1))

    def test_single_node_needs_no_rounds(self):
        result = run_crash_renaming([42], namespace=100)
        assert result.rounds == 0
        assert result.outputs_by_uid() == {42: 1}

    def test_round_count_is_deterministic(self):
        n = 20
        result = run_crash_renaming(range(1, n + 1), seed=3)
        assert result.rounds == 9 * math.ceil(math.log2(n))

    def test_seeded_runs_replay_exactly(self):
        a = run_crash_renaming(range(1, 33), seed=5, config=SMALL_CONFIG)
        b = run_crash_renaming(range(1, 33), seed=5, config=SMALL_CONFIG)
        assert a.outputs_by_uid() == b.outputs_by_uid()
        assert a.metrics.correct_messages == b.metrics.correct_messages

    def test_huge_namespace_identities(self):
        uids = [10**9, 5, 10**6, 777]
        result = run_crash_renaming(uids, namespace=2 * 10**9, seed=1)
        assert_strong_renaming(result, 4)

    def test_paper_constant_elects_everyone_at_small_n(self):
        # 256 log n / n >= 1 for n << 2^11: with the paper's constant,
        # every node is a committee member.
        result = run_crash_renaming(range(1, 17), seed=2)
        committee = [p for p in result.processes if p.ever_elected]
        assert len(committee) == 16


class TestInputValidation:
    def test_duplicate_identities_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            run_crash_renaming([1, 1, 2])

    def test_identities_outside_namespace_rejected(self):
        with pytest.raises(ValueError, match="identities must lie"):
            run_crash_renaming([1, 200], namespace=100)

    def test_zero_identity_rejected(self):
        with pytest.raises(ValueError):
            CrashRenamingNode(uid=0)


class TestUnderCrashes:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_crashes(self, seed):
        n = 40
        adversary = RandomCrash(budget=n // 3, rate=0.05, rng=Random(seed))
        result = run_crash_renaming(
            range(1, n + 1), adversary=adversary, seed=seed,
            config=SMALL_CONFIG,
        )
        assert_strong_renaming(result, n)

    @pytest.mark.parametrize("seed", range(5))
    def test_committee_hunter(self, seed):
        n = 48
        adversary = CommitteeHunter(budget=n - 5, rng=Random(seed))
        result = run_crash_renaming(
            range(1, n + 1), adversary=adversary, seed=seed,
            config=SMALL_CONFIG,
        )
        assert_strong_renaming(result, n)
        assert result.crashed  # the hunter actually fired

    @pytest.mark.parametrize("seed", range(5))
    def test_mid_send_partitioner(self, seed):
        n = 32
        adversary = MidSendPartitioner(budget=n // 2, rng=Random(seed),
                                       per_round=2)
        result = run_crash_renaming(
            range(1, n + 1), adversary=adversary, seed=seed,
            config=SMALL_CONFIG,
        )
        assert_strong_renaming(result, n)

    def test_all_but_one_crash(self):
        n = 8
        # Crash 7 of 8 nodes across the early rounds.
        adversary = ScheduledCrash({2: [0, 1], 4: [2, 3], 6: [4, 5], 8: [6]})
        result = run_crash_renaming(
            range(1, n + 1), adversary=adversary, seed=1,
        )
        outputs = result.outputs_by_uid()
        assert len(outputs) == 1
        assert 1 <= next(iter(outputs.values())) <= n

    def test_hunter_with_leaky_crashes(self):
        n = 32
        adversary = CommitteeHunter(budget=n // 2, rng=Random(9),
                                    deliver_fraction=0.5)
        result = run_crash_renaming(
            range(1, n + 1), adversary=adversary, seed=9,
            config=SMALL_CONFIG,
        )
        assert_strong_renaming(result, n)


class TestResourceCompetitiveness:
    """Lemmas 2.4-2.7: the p counters and the committee respond to
    failures, and the p gap stays bounded (Lemma 2.5)."""

    def test_p_stays_zero_without_failures(self):
        result = run_crash_renaming(range(1, 33), seed=4, config=SMALL_CONFIG)
        assert all(p.final_p == 0 for p in result.processes)

    def test_killing_committees_raises_p(self):
        n = 64
        adversary = CommitteeHunter(budget=n - 4, rng=Random(2))
        result = run_crash_renaming(
            range(1, n + 1), adversary=adversary, seed=2, config=SMALL_CONFIG,
        )
        survivors = [
            p for i, p in enumerate(result.processes)
            if i not in result.crashed
        ]
        assert max(p.final_p for p in survivors) >= 1

    def test_p_gap_at_most_one_among_survivors(self):
        # Lemma 2.5: by the end of each phase the p spread is <= 1.
        for seed in range(6):
            n = 48
            adversary = CommitteeHunter(budget=n - 4, rng=Random(seed),
                                        deliver_fraction=0.3)
            result = run_crash_renaming(
                range(1, n + 1), adversary=adversary, seed=seed,
                config=SMALL_CONFIG,
            )
            p_values = [
                p.final_p for i, p in enumerate(result.processes)
                if i not in result.crashed
            ]
            assert max(p_values) - min(p_values) <= 1

    def test_more_crashes_cost_more_messages(self):
        n = 64
        quiet = run_crash_renaming(range(1, n + 1), seed=3,
                                   config=SMALL_CONFIG)
        noisy = run_crash_renaming(
            range(1, n + 1),
            adversary=CommitteeHunter(budget=n // 2, rng=Random(3)),
            seed=3, config=SMALL_CONFIG,
        )
        # The hunter forces re-elections with doubled probability, so a
        # harassed run sends more messages per surviving node.
        survivors = n - len(noisy.crashed)
        assert (noisy.metrics.correct_messages / survivors
                > quiet.metrics.correct_messages / n * 0.9)


class TestOutputsAndMetrics:
    def test_every_message_is_logarithmic(self):
        n = 64
        result = run_crash_renaming(range(1, n + 1), seed=1,
                                    config=SMALL_CONFIG)
        # O(log N) bits per message with N = 64 defaults.
        assert result.metrics.max_message_bits <= 64

    def test_deterministic_round_bound_under_any_adversary(self):
        n = 32
        for seed in range(4):
            adversary = RandomCrash(budget=n - 1, rate=0.1, rng=Random(seed))
            result = run_crash_renaming(
                range(1, n + 1), adversary=adversary, seed=seed,
                config=SMALL_CONFIG,
            )
            assert result.rounds == 9 * math.ceil(math.log2(n))

    def test_never_more_than_n_squared_log_n_messages(self):
        # Theorem 1.2's deterministic ceiling.
        n = 32
        result = run_crash_renaming(range(1, n + 1), seed=6)
        ceiling = 3 * n * n * 3 * math.ceil(math.log2(n))
        assert result.metrics.correct_messages <= ceiling
