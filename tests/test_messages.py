"""Tests for the message model and bit-cost accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.core.byzantine_renaming import Elect, IdAnnounce, NewId
from repro.core.crash_renaming import CommitteeNotice, Response, Status
from repro.core.intervals import Interval
from repro.sim.messages import (
    HEADER_BITS,
    CostModel,
    Send,
    bit_length_of_domain,
    broadcast,
    multicast,
)


class TestBitLength:
    def test_domain_of_one(self):
        assert bit_length_of_domain(1) == 1

    def test_power_of_two(self):
        assert bit_length_of_domain(1024) == 10

    def test_non_power_rounds_up(self):
        assert bit_length_of_domain(1025) == 11

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bit_length_of_domain(0)

    @given(size=st.integers(2, 10**9))
    def test_covers_domain(self, size):
        bits = bit_length_of_domain(size)
        assert 2 ** bits >= size
        assert 2 ** (bits - 1) < size

    @pytest.mark.parametrize("k", [10, 53, 60])
    def test_boundaries_are_exact(self, k):
        # float log2 rounds 2**53 + 1 down to exactly 53.0, so the old
        # ceil(log2(size)) implementation undercounted by one bit right
        # above every large power of two.  The integer implementation
        # must be exact at both sides of the boundary.
        assert bit_length_of_domain(2 ** k) == k
        assert bit_length_of_domain(2 ** k + 1) == k + 1

    def test_double_precision_regression(self):
        # The headline case: (2**53 + 1) is the first integer a double
        # cannot represent, where math.ceil(math.log2(size)) == 53.
        assert bit_length_of_domain(2 ** 53 + 1) == 54

    @given(size=st.integers(1, 2 ** 70))
    def test_matches_integer_bit_length(self, size):
        assert bit_length_of_domain(size) == max(1, (size - 1).bit_length())


class TestCostModel:
    def test_id_bits_follow_namespace(self):
        cost = CostModel(n=16, namespace=1 << 20)
        assert cost.id_bits == 20

    def test_index_bits_follow_n(self):
        cost = CostModel(n=100, namespace=10_000)
        assert cost.index_bits == 7

    def test_namespace_must_cover_n(self):
        with pytest.raises(ValueError):
            CostModel(n=10, namespace=9)

    def test_n_must_be_positive(self):
        with pytest.raises(ValueError):
            CostModel(n=0, namespace=10)

    def test_digest_is_logarithmic_in_namespace(self):
        cost = CostModel(n=8, namespace=1 << 16)
        assert cost.digest_bits == 6 * 16

    def test_depth_bits_are_loglog(self):
        cost = CostModel(n=1 << 16, namespace=1 << 20)
        # depths go up to 16, so 5 bits address them
        assert cost.depth_bits == 5


class TestMessageSizes:
    """Every message must fit the paper's O(log N) bit budget."""

    @pytest.fixture
    def cost(self):
        return CostModel(n=64, namespace=5 * 64 * 64)

    def test_committee_notice_is_header_only(self, cost):
        assert CommitteeNotice().bit_size(cost) == HEADER_BITS

    def test_status_message_fields(self, cost):
        message = Status(uid=17, interval=Interval(1, 64), depth=0, p=0)
        expected = (HEADER_BITS + cost.id_bits + 2 * cost.index_bits
                    + cost.depth_bits + cost.counter_bits)
        assert message.bit_size(cost) == expected

    def test_response_same_size_as_status(self, cost):
        status = Status(uid=17, interval=Interval(1, 64), depth=0, p=0)
        response = Response(uid=17, interval=Interval(1, 32), depth=1, p=2)
        assert status.bit_size(cost) == response.bit_size(cost)

    def test_elect_and_announce_carry_one_identity(self, cost):
        assert Elect(uid=3).bit_size(cost) == HEADER_BITS + cost.id_bits
        assert IdAnnounce(uid=3).bit_size(cost) == HEADER_BITS + cost.id_bits

    def test_new_id_carries_one_index(self, cost):
        assert NewId(value=5).bit_size(cost) == HEADER_BITS + cost.index_bits + 1
        assert NewId(value=None).bit_size(cost) == NewId(value=7).bit_size(cost)

    @given(n=st.integers(2, 4096))
    def test_all_protocol_messages_are_order_log_n(self, n):
        """With N = 5n^2, every message is O(log n) bits."""
        import math

        cost = CostModel(n=n, namespace=5 * n * n)
        status = Status(uid=1, interval=Interval(1, n), depth=0, p=0)
        budget = 20 * max(1.0, math.log2(n))
        assert status.bit_size(cost) <= budget
        assert Elect(uid=1).bit_size(cost) <= budget
        assert NewId(value=1).bit_size(cost) <= budget


class TestSends:
    def test_send_validates_link(self):
        with pytest.raises(ValueError):
            Send(to=-1, message=CommitteeNotice())

    def test_broadcast_hits_every_link_including_self(self):
        sends = broadcast(5, CommitteeNotice())
        assert [send.to for send in sends] == [0, 1, 2, 3, 4]

    def test_multicast_targets(self):
        sends = multicast([4, 1], CommitteeNotice())
        assert [send.to for send in sends] == [4, 1]

    def test_claim_defaults_to_none(self):
        assert Send(to=0, message=CommitteeNotice()).claim is None
