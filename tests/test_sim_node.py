"""Unit tests for Process/Context and the metrics ledger."""

from random import Random

import pytest

from repro.sim.messages import CostModel
from repro.sim.metrics import Metrics
from repro.sim.node import Context, IdleProcess, Process
from tests.test_network import Ping


class TestProcess:
    def test_uid_must_be_positive(self):
        with pytest.raises(ValueError):
            IdleProcess(uid=0)

    def test_base_program_is_abstract(self):
        process = Process(uid=1)
        with pytest.raises(NotImplementedError):
            next(process.program(None))

    def test_default_flags(self):
        process = IdleProcess(uid=1)
        assert process.byzantine is False
        assert process.result is None

    def test_repr(self):
        assert "uid=7" in repr(IdleProcess(uid=7))


class TestContext:
    def test_fields(self):
        cost = CostModel(n=4, namespace=100)
        ctx = Context(n=4, namespace=100, index=2, rng=Random(1), cost=cost)
        assert ctx.shared is None
        assert ctx.current_round == 0


class TestMetrics:
    def cost(self):
        return CostModel(n=4, namespace=100)

    def test_round_series_alignment(self):
        metrics = Metrics(cost=self.cost())
        metrics.begin_round()
        metrics.record_send(0, Ping(), byzantine=False)
        metrics.begin_round()
        assert metrics.messages_per_round == [1, 0]
        assert metrics.rounds == 2

    def test_ledger_separation(self):
        metrics = Metrics(cost=self.cost())
        metrics.begin_round()
        metrics.record_send(0, Ping(), byzantine=False)
        metrics.record_send(1, Ping(), byzantine=True)
        assert metrics.correct_messages == 1
        assert metrics.byzantine_messages == 1
        assert metrics.total_messages == 2
        assert metrics.total_bits == metrics.correct_bits + metrics.byzantine_bits

    def test_type_and_node_counters(self):
        metrics = Metrics(cost=self.cost())
        metrics.begin_round()
        metrics.record_send(3, Ping(), byzantine=False)
        metrics.record_send(3, Ping(), byzantine=False)
        assert metrics.sends_by_node[3] == 2
        assert metrics.sends_by_type["Ping"] == 2

    def test_summary_keys(self):
        metrics = Metrics(cost=self.cost())
        summary = metrics.summary()
        assert {"rounds", "correct_messages", "correct_bits",
                "byzantine_messages", "byzantine_bits",
                "max_message_bits"} == set(summary)

    def test_max_message_bits_tracks_largest(self):
        metrics = Metrics(cost=self.cost())
        metrics.begin_round()
        metrics.record_send(0, Ping(), byzantine=False)
        size = Ping().bit_size(self.cost())
        assert metrics.max_message_bits == size
