"""Tests for the synchronous network engine."""

from dataclasses import dataclass

import pytest

from repro.adversary.base import CrashPlanError
from repro.adversary.crash import BudgetedAdaptiveCrash, ScheduledCrash
from repro.crypto.auth import Authenticator
from repro.sim.messages import CostModel, Message, Send, broadcast
from repro.sim.network import NonTerminationError, SyncNetwork
from repro.sim.node import IdleProcess, Process
from repro.sim.runner import run_network


@dataclass(frozen=True)
class Ping(Message):
    payload: int = 0

    def payload_bits(self, cost):
        return 8


class Chatter(Process):
    """Broadcasts `rounds` pings, records every inbox, returns them."""

    def __init__(self, uid, rounds=2):
        super().__init__(uid)
        self.rounds = rounds
        self.inboxes = []

    def program(self, ctx):
        for i in range(self.rounds):
            inbox = yield broadcast(ctx.n, Ping(i))
            self.inboxes.append(list(inbox))
        return self.uid


def cost_for(n):
    return CostModel(n=n, namespace=max(n, 100))


class TestDeliverySemantics:
    def test_same_round_delivery(self):
        processes = [Chatter(uid=i + 1, rounds=1) for i in range(3)]
        result = run_network(processes, cost_for(3))
        for process in processes:
            (inbox,) = process.inboxes
            assert sorted(env.sender for env in inbox) == [0, 1, 2]
            assert all(env.round_no == 1 for env in inbox)

    def test_self_link_delivery(self):
        processes = [Chatter(uid=7, rounds=1)]
        run_network(processes, cost_for(1))
        (inbox,) = processes[0].inboxes
        assert len(inbox) == 1 and inbox[0].sender == 0

    def test_sender_uid_is_stamped(self):
        processes = [Chatter(uid=11, rounds=1), Chatter(uid=22, rounds=1)]
        run_network(processes, cost_for(2))
        uids = {env.sender: env.sender_uid for env in processes[0].inboxes[0]}
        assert uids == {0: 11, 1: 22}

    def test_results_collected(self):
        processes = [Chatter(uid=i + 1) for i in range(4)]
        result = run_network(processes, cost_for(4))
        assert result.results == {0: 1, 1: 2, 2: 3, 3: 4}
        assert result.outputs_by_uid() == {1: 1, 2: 2, 3: 3, 4: 4}

    def test_rounds_counted(self):
        result = run_network([Chatter(uid=1, rounds=5)], cost_for(1))
        assert result.rounds == 5

    def test_out_of_range_link_rejected(self):
        class Bad(Process):
            def program(self, ctx):
                yield [Send(to=99, message=Ping())]

        with pytest.raises(ValueError, match="addressed link 99"):
            run_network([Bad(uid=1)], cost_for(1))

    def test_non_termination_guard(self):
        with pytest.raises(NonTerminationError):
            run_network([IdleProcess(uid=1)], cost_for(1), max_rounds=10)

    def test_needs_at_least_one_process(self):
        with pytest.raises(ValueError):
            SyncNetwork([], cost_for(1))


class TestCrashSemantics:
    def test_scheduled_crash_silences_victim(self):
        processes = [Chatter(uid=i + 1, rounds=2) for i in range(3)]
        adversary = ScheduledCrash({2: [0]})
        result = run_network(processes, cost_for(3), crash_adversary=adversary)
        assert result.crashed == {0}
        # Round 2 inboxes of survivors contain only the two survivors.
        for survivor in (1, 2):
            senders = {env.sender for env in processes[survivor].inboxes[1]}
            assert senders == {1, 2}

    def test_mid_send_partial_delivery(self):
        processes = [Chatter(uid=i + 1, rounds=1) for i in range(3)]
        # Victim 0 crashes in round 1 but its first two proposed messages
        # (to links 0 and 1) still go out; the one to link 2 is lost.
        adversary = ScheduledCrash({1: [0]}, deliver_prefix={0: 2})
        run_network(processes, cost_for(3), crash_adversary=adversary)
        assert any(env.sender == 0 for env in processes[1].inboxes[0])
        assert not any(env.sender == 0 for env in processes[2].inboxes[0])

    def test_crashed_node_produces_no_result(self):
        processes = [Chatter(uid=i + 1, rounds=2) for i in range(2)]
        result = run_network(
            processes, cost_for(2), crash_adversary=ScheduledCrash({1: [1]})
        )
        assert 1 not in result.results
        assert result.correct_results == {0: 1}

    def test_budget_violation_detected(self):
        def greedy(round_no, proposed, alive, trace, remaining):
            return {victim: [] for victim in alive}

        adversary = BudgetedAdaptiveCrash(1, greedy)
        processes = [Chatter(uid=i + 1) for i in range(3)]
        with pytest.raises(CrashPlanError, match="budget"):
            run_network(processes, cost_for(3), crash_adversary=adversary)

    def test_fabricated_kept_message_detected(self):
        def forger(round_no, proposed, alive, trace, remaining):
            if round_no == 1:
                return {0: [Send(to=0, message=Ping(payload=999))]}
            return {}

        adversary = BudgetedAdaptiveCrash(1, forger)
        with pytest.raises(CrashPlanError, match="never proposed"):
            run_network(
                [Chatter(uid=1), Chatter(uid=2)], cost_for(2),
                crash_adversary=adversary,
            )

    def test_double_crash_detected(self):
        def repeat_offender(round_no, proposed, alive, trace, remaining):
            return {0: []} if round_no <= 2 else {}

        adversary = BudgetedAdaptiveCrash(5, repeat_offender)
        # Round 2 names node 0 again, but it is no longer alive, so the
        # plan is rejected as naming a non-alive victim.
        with pytest.raises(CrashPlanError):
            run_network(
                [Chatter(uid=1, rounds=3), Chatter(uid=2, rounds=3)],
                cost_for(2), crash_adversary=adversary,
            )


class TestMetricsAccounting:
    def test_message_and_bit_totals(self):
        processes = [Chatter(uid=i + 1, rounds=2) for i in range(3)]
        result = run_network(processes, cost_for(3))
        # 3 nodes x 3 links x 2 rounds
        assert result.metrics.correct_messages == 18
        per_message = Ping().bit_size(cost_for(3))
        assert result.metrics.correct_bits == 18 * per_message
        assert result.metrics.max_message_bits == per_message

    def test_byzantine_ledger_is_separate(self):
        class Spammer(IdleProcess):
            byzantine = True

            def program(self, ctx):
                while True:
                    yield broadcast(ctx.n, Ping())

        processes = [Chatter(uid=1, rounds=2), Spammer(uid=2)]
        result = run_network(processes, cost_for(2))
        assert result.metrics.correct_messages == 4
        assert result.metrics.byzantine_messages == 4
        assert result.byzantine == {1}

    def test_suppressed_sends_not_counted(self):
        processes = [Chatter(uid=i + 1, rounds=1) for i in range(4)]
        adversary = ScheduledCrash({1: [2]})
        result = run_network(processes, cost_for(4), crash_adversary=adversary)
        assert result.metrics.correct_messages == 12  # 3 survivors x 4 links

    def test_per_round_series(self):
        result = run_network([Chatter(uid=1, rounds=3)], cost_for(1))
        assert result.metrics.messages_per_round == [1, 1, 1]


class TestByzantineFaultContainment:
    def test_byzantine_exception_silences_node(self):
        class Crasher(IdleProcess):
            byzantine = True

            def program(self, ctx):
                yield broadcast(ctx.n, Ping())
                raise RuntimeError("adversary bug")

        processes = [Chatter(uid=1, rounds=3), Crasher(uid=2)]
        result = run_network(processes, cost_for(2), trace=True)
        assert result.results[0] == 1
        assert any(e.kind == "byzantine-fault" for e in result.trace)

    def test_correct_exception_propagates(self):
        class Buggy(Process):
            def program(self, ctx):
                yield []
                raise RuntimeError("real bug")

        with pytest.raises(RuntimeError, match="real bug"):
            run_network([Buggy(uid=1)], cost_for(1))


class TestAuthentication:
    class Forger(IdleProcess):
        byzantine = True

        def program(self, ctx):
            yield [Send(to=0, message=Ping(), claim=777)]
            while True:
                yield []

    def test_spoof_discarded_under_authentication(self):
        victim = Chatter(uid=1, rounds=1)
        run_network([victim, self.Forger(uid=2)], cost_for(2))
        forged = [env for env in victim.inboxes[0] if env.sender == 1]
        assert forged and forged[0].sender_uid == 2
        assert forged[0].claimed_sender is None

    def test_spoof_succeeds_without_authentication(self):
        victim = Chatter(uid=1, rounds=1)
        run_network(
            [victim, self.Forger(uid=2)], cost_for(2),
            authenticator=Authenticator(enabled=False),
        )
        forged = [env for env in victim.inboxes[0] if env.sender == 1]
        assert forged and forged[0].sender_uid == 777
        assert forged[0].claimed_sender == 777


class TestTrace:
    def test_crash_events_recorded(self):
        processes = [Chatter(uid=i + 1, rounds=2) for i in range(2)]
        result = run_network(
            processes, cost_for(2),
            crash_adversary=ScheduledCrash({1: [1]}), trace=True,
        )
        crashes = result.trace.crashes()
        assert len(crashes) == 1 and crashes[0].node == 1

    def test_terminate_events_recorded(self):
        result = run_network([Chatter(uid=1)], cost_for(1), trace=True)
        assert any(e.kind == "terminate" for e in result.trace)

    def test_disabled_trace_records_nothing(self):
        result = run_network([Chatter(uid=1)], cost_for(1), trace=False)
        assert len(result.trace) == 0

    def test_round_query(self):
        result = run_network(
            [Chatter(uid=1), Chatter(uid=2)], cost_for(2),
            crash_adversary=ScheduledCrash({2: [0]}), trace=True,
        )
        round2 = list(result.trace.in_round(2))
        assert any(e.kind == "crash" for e in round2)


class TestNonTerminationState:
    def test_error_carries_partial_execution_state(self):
        with pytest.raises(NonTerminationError) as info:
            run_network([IdleProcess(uid=1), Chatter(uid=2, rounds=2)],
                        cost_for(2), max_rounds=10, trace=True)
        error = info.value
        assert error.round_no == 10
        assert error.pending == (0,)  # the idle node never terminates
        assert error.trace is not None and len(error.trace) > 0
        assert error.metrics is not None and error.metrics.rounds == 10

    def test_defaults_are_empty(self):
        error = NonTerminationError("stuck")
        assert error.round_no == 0
        assert error.pending == ()
        assert error.trace is None and error.metrics is None


class RecordingMonitor:
    """Counts every hook invocation the network makes."""

    name = "recording"

    def __init__(self):
        self.starts = 0
        self.rounds = []
        self.finishes = 0

    def on_start(self, network):
        self.starts += 1

    def on_round(self, network):
        self.rounds.append(network.round_no)

    def on_finish(self, network):
        self.finishes += 1


class TestMonitorHooks:
    def test_hooks_fire_in_order(self):
        monitor = RecordingMonitor()
        run_network([Chatter(uid=1, rounds=3)], cost_for(1),
                    monitors=(monitor,))
        assert monitor.starts == 1
        assert monitor.rounds == [1, 2, 3]
        assert monitor.finishes == 1

    def test_no_monitors_by_default(self):
        network = SyncNetwork([Chatter(uid=1)], cost_for(1))
        assert network.monitors == ()

    def test_monitor_exception_aborts_the_run(self):
        class Tripwire(RecordingMonitor):
            def on_round(self, network):
                raise AssertionError("invariant down")

        with pytest.raises(AssertionError, match="invariant down"):
            run_network([Chatter(uid=1, rounds=3)], cost_for(1),
                        monitors=(Tripwire(),))

    def test_on_finish_not_called_after_violation(self):
        class TripAtTwo(RecordingMonitor):
            def on_round(self, network):
                super().on_round(network)
                if network.round_no == 2:
                    raise AssertionError("round two")

        monitor = TripAtTwo()
        with pytest.raises(AssertionError):
            run_network([Chatter(uid=1, rounds=5)], cost_for(1),
                        monitors=(monitor,))
        assert monitor.rounds == [1, 2]
        assert monitor.finishes == 0


class PlanScript(BudgetedAdaptiveCrash):
    """Adversary whose round-1 plan is handed in verbatim."""

    def __init__(self, budget, plan):
        super().__init__(
            budget,
            lambda round_no, proposed, alive, trace, remaining:
                plan if round_no == 1 else {},
        )


class TestCrashPlanRejectionIsAtomic:
    """Rejected plans must leave both crash ledgers untouched."""

    def run_rejected(self, adversary, match, n=3):
        processes = [Chatter(uid=i + 1, rounds=2) for i in range(n)]
        network = SyncNetwork(processes, cost_for(n),
                              crash_adversary=adversary)
        with pytest.raises(CrashPlanError, match=match):
            network.run()
        assert network.crashed == set()
        assert adversary.crashed == set()

    def test_non_alive_victim(self):
        self.run_rejected(PlanScript(2, {99: []}), "non-alive")

    def test_budget_overrun(self):
        self.run_rejected(PlanScript(1, {0: [], 1: []}), "budget")

    def test_kept_message_never_proposed(self):
        bogus = [Send(to=0, message=Ping(payload=777))]
        self.run_rejected(PlanScript(2, {0: bogus}), "never proposed")

    def test_valid_victim_does_not_leak_through_invalid_plan(self):
        # Victim 0's entry is valid on its own; victim 1 keeps a message
        # it never proposed.  The whole plan must be rejected with no
        # partial mutation -- node 0 stays alive.
        bogus = [Send(to=0, message=Ping(payload=777))]
        self.run_rejected(PlanScript(2, {0: [], 1: bogus}), "never proposed")

    def test_re_crash_rejected_without_mutation(self):
        def twice(round_no, proposed, alive, trace, remaining):
            return {0: []} if round_no <= 2 else {}

        adversary = BudgetedAdaptiveCrash(5, twice)
        processes = [Chatter(uid=i + 1, rounds=3) for i in range(3)]
        network = SyncNetwork(processes, cost_for(3),
                              crash_adversary=adversary)
        with pytest.raises(CrashPlanError, match="non-alive"):
            network.run()
        # The round-1 crash stands; the rejected round-2 re-crash
        # changed nothing.
        assert network.crashed == {0}
        assert adversary.crashed == {0}
