"""Tests for the use_fingerprints ablation switch (F10)."""

import pytest

from repro.adversary import byzantine as byz
from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    run_byzantine_renaming,
)

UIDS = [7, 19, 55, 102, 200, 333, 404, 512, 640, 777]
NAMESPACE = 2048


def run(use_fingerprints: bool, corrupted=None):
    config = ByzantineRenamingConfig(
        max_byzantine=3, use_fingerprints=use_fingerprints
    )
    return run_byzantine_renaming(
        UIDS, namespace=NAMESPACE, byzantine=corrupted or {},
        config=config, shared_seed=2, seed=3,
    )


class TestAblationCorrectness:
    def test_raw_segments_still_rename_correctly(self):
        result = run(False)
        outputs = result.outputs_by_uid()
        assert outputs == {uid: i + 1 for i, uid in enumerate(sorted(UIDS))}

    def test_raw_segments_survive_withholding(self):
        corrupted = {200: byz.make_withholder(0.5)}
        result = run(False, corrupted)
        outputs = result.outputs_by_uid()
        values = [outputs[uid] for uid in sorted(outputs)]
        assert len(set(values)) == len(values)
        assert values == sorted(values)

    def test_identical_control_flow(self):
        """The recursion is value-equality driven, so both
        representations must take exactly the same path."""
        corrupted = {200: byz.make_withholder(0.5)}
        with_fp = run(True, corrupted)
        without_fp = run(False, corrupted)
        assert with_fp.rounds == without_fp.rounds
        assert with_fp.outputs_by_uid() == without_fp.outputs_by_uid()

    def test_raw_segments_cost_larger_messages(self):
        corrupted = {200: byz.make_withholder(0.5)}
        with_fp = run(True, corrupted)
        without_fp = run(False, corrupted)
        assert (without_fp.metrics.max_message_bits
                > with_fp.metrics.max_message_bits)
