"""Unit tests for the resilience primitives (no service, no loop)."""

import pytest

from repro.core.crash_renaming import RenamingFailure
from repro.serve.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    FAIL_ERROR,
    FAIL_FAULTS,
    FAIL_NON_TERMINATION,
    FAIL_RENAME,
    CircuitBreaker,
    ResiliencePolicy,
    RetryBacklog,
    classify_failure,
    retry_delay,
)
from repro.sim.network import NonTerminationError


class TestResiliencePolicy:
    def test_defaults_are_valid(self):
        policy = ResiliencePolicy()
        assert policy.max_retries == 3
        assert policy.deadline is None

    @pytest.mark.parametrize("field,value", [
        ("max_retries", -1),
        ("backoff_base", -0.1),
        ("backoff_factor", 0.5),
        ("backoff_jitter", -1.0),
        ("deadline", 0.0),
        ("deadline", -1.0),
        ("breaker_threshold", 0),
        ("breaker_cooldown", -0.01),
        ("shed_capacity", -1),
    ])
    def test_rejects_bad_fields(self, field, value):
        with pytest.raises(ValueError, match=field):
            ResiliencePolicy(**{field: value})

    def test_from_spec_none_and_empty(self):
        assert ResiliencePolicy.from_spec(None) is None
        assert ResiliencePolicy.from_spec("") is None
        assert ResiliencePolicy.from_spec("  ") is None
        # Empty object = all defaults, resilience *on*.
        assert ResiliencePolicy.from_spec("{}") == ResiliencePolicy()
        assert ResiliencePolicy.from_spec({}) == ResiliencePolicy()

    def test_from_spec_passthrough_and_json(self):
        policy = ResiliencePolicy(max_retries=7)
        assert ResiliencePolicy.from_spec(policy) is policy
        assert ResiliencePolicy.from_spec(
            '{"max_retries": 7}') == policy
        assert ResiliencePolicy.from_spec(
            {"max_retries": 7}) == policy

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ValueError, match="not JSON"):
            ResiliencePolicy.from_spec("{nope")
        with pytest.raises(ValueError, match="object"):
            ResiliencePolicy.from_spec("[1, 2]")
        with pytest.raises(ValueError, match="unknown"):
            ResiliencePolicy.from_spec('{"retriez": 3}')

    def test_to_json_round_trips(self):
        policy = ResiliencePolicy(max_retries=1, breaker_cooldown=0.5)
        assert ResiliencePolicy.from_spec(policy.to_json()) == policy

    def test_scaled(self):
        policy = ResiliencePolicy().scaled(max_retries=9)
        assert policy.max_retries == 9
        assert policy.breaker_threshold == 5


class TestRetryDelay:
    POLICY = ResiliencePolicy(backoff_base=0.01, backoff_factor=2.0,
                              backoff_jitter=0.5)

    def test_deterministic(self):
        first = retry_delay(self.POLICY, 3, 1, 17, 2)
        second = retry_delay(self.POLICY, 3, 1, 17, 2)
        assert first == second

    def test_keyed_on_all_coordinates(self):
        base = retry_delay(self.POLICY, 3, 1, 17, 2)
        assert retry_delay(self.POLICY, 4, 1, 17, 2) != base   # seed
        assert retry_delay(self.POLICY, 3, 2, 17, 2) != base   # shard
        assert retry_delay(self.POLICY, 3, 1, 18, 2) != base   # origin

    def test_exponential_envelope(self):
        for attempt in (1, 2, 3, 4):
            delay = retry_delay(self.POLICY, 0, 0, 0, attempt)
            floor = 0.01 * 2.0 ** (attempt - 1)
            assert floor <= delay < floor * 1.5

    def test_zero_jitter_is_pure_exponential(self):
        policy = self.POLICY.scaled(backoff_jitter=0.0)
        assert retry_delay(policy, 0, 0, 0, 3) == 0.04

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError, match="attempt"):
            retry_delay(self.POLICY, 0, 0, 0, 0)


class TestCircuitBreaker:
    def test_full_cycle(self):
        breaker = CircuitBreaker(threshold=3, cooldown=1.0)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.record_failure(10.0) is False
        assert breaker.record_failure(11.0) is False
        assert breaker.record_failure(12.0) is True    # third opens it
        assert breaker.state == BREAKER_OPEN
        assert breaker.probe_at == 13.0
        assert breaker.poll(12.5) == BREAKER_OPEN      # cooldown pending
        assert breaker.poll(13.0) == BREAKER_HALF_OPEN
        assert breaker.record_success() is True        # probe closed it
        assert breaker.state == BREAKER_CLOSED
        assert breaker.stats() == {
            "state": BREAKER_CLOSED, "consecutive_failures": 0,
            "opens": 1, "closes": 1, "probes": 1,
        }

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1.0)
        breaker.record_failure(0.0)
        breaker.poll(1.0)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.record_failure(5.0) is True
        assert breaker.state == BREAKER_OPEN
        assert breaker.probe_at == 6.0                 # restarted at 5.0
        assert breaker.opens == 2

    def test_success_resets_consecutive_run(self):
        breaker = CircuitBreaker(threshold=3, cooldown=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.record_success() is False       # was closed
        breaker.record_failure(2.0)
        breaker.record_failure(3.0)
        assert breaker.state == BREAKER_CLOSED         # run restarted


class TestRetryBacklog:
    def test_ordered_by_due_then_push_order(self):
        backlog = RetryBacklog()
        backlog.push(("a",), due=2.0, attempt=1, origin=0)
        backlog.push(("b",), due=1.0, attempt=1, origin=1)
        backlog.push(("c",), due=1.0, attempt=1, origin=2)
        drained = []
        while backlog:
            drained.append(backlog.pop().ops[0])
        assert drained == ["b", "c", "a"]

    def test_counts_and_earliest(self):
        backlog = RetryBacklog()
        assert backlog.earliest_due() is None
        assert backlog.ops_count == 0
        backlog.push(("a", "b"), due=3.0, attempt=0, origin=0)
        backlog.push(("c",), due=1.0, attempt=2, origin=0)
        assert len(backlog) == 2
        assert backlog.ops_count == 3
        assert backlog.earliest_due() == 1.0
        assert backlog.peek().attempt == 2


class TestClassifyFailure:
    def test_fault_pressure_dominates(self):
        error = NonTerminationError("stalled")
        assert classify_failure(error, {"dropped": 3}) == FAIL_FAULTS

    def test_exception_taxonomy_without_faults(self):
        assert classify_failure(
            NonTerminationError("stalled"), {}) == FAIL_NON_TERMINATION
        assert classify_failure(
            RenamingFailure("no name"), {}) == FAIL_RENAME
        assert classify_failure(RuntimeError("bug"), {}) == FAIL_ERROR
