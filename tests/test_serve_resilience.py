"""Service-level resilience: retries, breaker, shedding, deadlines.

The acceptance scenario of the resilience layer: a single shard under
a bounded fault window keeps its requests — retries ride across the
outage, the breaker opens on a dead shard and closes again after it,
and the whole schedule stays a pure function of the submitted
``(op, arrival)`` stream (same trace, same retry/breaker event
sequence).  With ``resilience=None`` the service must reproduce PR 6's
fail-the-batch behaviour bit-for-bit on the same trace.
"""

import asyncio

import pytest

from repro.analysis.experiments import EXPERIMENT_ELECTION_CONSTANT
from repro.core.crash_renaming import CrashRenamingConfig
from repro.obs import EventRecorder, validate_events
from repro.serve.batching import BatchPolicy, plan_batches
from repro.serve.driver import serve_run_summary
from repro.serve.loadgen import (
    LoadProfile,
    execute_profile,
    generate_trace,
)
from repro.serve.obs import validate_serve_events
from repro.serve.resilience import ResiliencePolicy
from repro.serve.service import (
    DeadlineExceeded,
    RenamingService,
    RequestShed,
    ShardDegraded,
)
from repro.serve.sharding import LOOKUP, Shard, ShardOp, shard_of

CONFIG = CrashRenamingConfig(election_constant=EXPERIMENT_ELECTION_CONSTANT)

PROFILE = LoadProfile(clients=40, requests=1_500, shards=3, max_batch=16,
                      max_wait=0.002, arrival_rate=20_000.0, namespace=5_000,
                      seed=3)

OMISSION_10 = [{"kind": "omission", "p": 0.10}]
OMISSION_100 = [{"kind": "omission", "p": 1.0}]

#: Protocol attempts 1-8 of the faulted shard run under fault pressure;
#: retries land after the window and succeed.
WINDOW = (1, 9)

#: Tuned to the virtual trace span (~requests / arrival_rate seconds):
#: retries outlast the window, the breaker probes well inside the run.
RESILIENCE = ResiliencePolicy(max_retries=4, backoff_base=0.005,
                              backoff_factor=2.0, backoff_jitter=0.5,
                              breaker_threshold=3, breaker_cooldown=0.05,
                              shed_capacity=1024)


def run_profile(profile=PROFILE, faults=None, windows=None,
                resilience=None, observer=None):
    return execute_profile(
        profile, shard_faults=faults, shard_fault_windows=windows,
        resilience=resilience, observer=observer,
    )


def goodput(report):
    eligible = report["renames"] - report["rename_misses"]
    return report["renamed"] / max(1, eligible)


class TestWindowedRecovery:
    def test_retries_recover_partial_omission(self):
        # The acceptance scenario: 10% omission on one shard for a
        # bounded window; with resilience the service keeps >= 95% of
        # eventual rename goodput, strands nothing, stays unique.
        report = run_profile(faults={0: OMISSION_10}, windows={0: WINDOW},
                             resilience=RESILIENCE)
        assert goodput(report) >= 0.95
        assert report["unresolved"] == 0
        assert report["unique"] is True
        assert report["degraded"] == 0
        assert report["service"]["retries"] > 0

    def test_baseline_same_trace_drops_batches(self):
        # Same trace, resilience disabled: PR 6 behaviour — the faulted
        # epochs reject their batches instead of retrying.
        report = run_profile(faults={0: OMISSION_10}, windows={0: WINDOW},
                             resilience=None)
        assert report["degraded"] > 0
        assert goodput(report) < 0.95
        assert report["unique"] is True
        assert report["service"]["retries"] == 0
        assert report["unresolved"] == 0

    def test_total_outage_trips_and_recovers_breaker(self):
        report = run_profile(faults={0: OMISSION_100}, windows={0: WINDOW},
                             resilience=RESILIENCE)
        service = report["service"]
        assert service["breaker_opens"] >= 1
        assert service["breaker_closes"] >= 1
        breaker = report["per_shard"][0]["breaker"]
        assert breaker["state"] == "closed"       # recovered post-window
        assert goodput(report) >= 0.95
        assert report["unresolved"] == 0
        assert report["unique"] is True

    def test_baseline_matches_serial_reference_under_window(self):
        # resilience=None with a fault window must still be the same
        # pure function of the stream as a single-threaded replay.
        faults, windows = {0: OMISSION_100}, {0: WINDOW}

        async def concurrent():
            service = RenamingService(
                shards=PROFILE.shards, namespace=PROFILE.namespace,
                seed=PROFILE.seed, max_batch=PROFILE.max_batch,
                max_wait=PROFILE.max_wait, config=CONFIG,
                shard_faults=faults, shard_fault_windows=windows,
            )
            async with service:
                from repro.serve.loadgen import run_load

                await run_load(service, generate_trace(PROFILE))
                return service.assignment(), service.boundaries()

        service_assignment, service_boundaries = asyncio.run(concurrent())
        policy = BatchPolicy(max_batch=PROFILE.max_batch,
                             max_wait=PROFILE.max_wait)
        streams = {index: [] for index in range(PROFILE.shards)}
        submitted = 0
        for op in generate_trace(PROFILE):
            if op.kind == LOOKUP:
                continue
            shard = shard_of(op.uid, PROFILE.shards)
            streams[shard].append(
                (ShardOp(submitted, op.kind, op.uid), op.arrival)
            )
            submitted += 1
        assignment, boundaries = {}, []
        for index in range(PROFILE.shards):
            shard = Shard(
                index, PROFILE.shards, namespace=PROFILE.namespace,
                seed=PROFILE.seed, config=CONFIG,
                fault_spec=faults.get(index),
                fault_window=windows.get(index),
            )
            batches = plan_batches(index, streams[index], policy)
            for batch in batches:
                try:
                    shard.execute(batch.ops)
                except Exception:
                    pass
            boundaries.append([batch.boundary() for batch in batches])
            assignment.update(shard.global_assignment())
        assert service_boundaries == boundaries
        assert service_assignment == assignment


class TestResilienceEvents:
    def filtered(self, events):
        """Per-shard serve event sequences, per-run noise stripped.

        The determinism contract is per emitting sequence: epoch /
        retry / breaker events come from the lane worker in execution
        order, ``serve.batch.close`` from the submit side in stream
        order.  Their interleaving (and completion order *across*
        shards) depends on thread timing, so each (shard, side) stream
        is compared separately, with wall clock and recorder seq
        dropped.
        """
        lanes = {}
        for event in events:
            kind = event["kind"]
            if not kind.startswith("serve."):
                continue
            data = dict(event.get("data", {}))
            data.pop("wall_s", None)
            shard = data.get("shard", -1)
            side = "submit" if kind == "serve.batch.close" else "worker"
            lanes.setdefault((shard, side), []).append(
                (kind, tuple(sorted(data.items()))))
        return lanes

    def test_breaker_cycle_is_observable_and_schema_valid(self):
        recorder = EventRecorder()
        run_profile(faults={0: OMISSION_100}, windows={0: WINDOW},
                    resilience=RESILIENCE, observer=recorder)
        events = recorder.events()
        assert validate_events(events) == []
        assert validate_serve_events(events) == []
        kinds = [event["kind"] for event in events]
        assert "serve.retry" in kinds
        open_at = kinds.index("serve.breaker.open")
        half_at = kinds.index("serve.breaker.half_open")
        close_at = kinds.index("serve.breaker.close")
        assert open_at < half_at < close_at

    def test_event_stream_is_reproducible(self):
        streams = []
        for _ in range(2):
            recorder = EventRecorder()
            run_profile(faults={0: OMISSION_100}, windows={0: WINDOW},
                        resilience=RESILIENCE, observer=recorder)
            streams.append(self.filtered(recorder.events()))
        assert streams[0] == streams[1]

    def test_reports_are_reproducible(self):
        # Wall-clock measurements vary; so do lookup hits (lookups are
        # synchronous reads racing in-flight epoch installs — the
        # documented epoch-consistency contract, unchanged from PR 6).
        timing = ("wall_s", "throughput_rps", "latency", "phases",
                  "lookup_hits", "lookup_misses")
        runs = [run_profile(faults={0: OMISSION_10}, windows={0: WINDOW},
                            resilience=RESILIENCE) for _ in range(2)]
        for key, value in runs[0].items():
            if key in timing:
                continue
            assert runs[1][key] == value, key


class TestSheddingAndDeadlines:
    def test_open_breaker_sheds_beyond_capacity(self):
        # Persistent total omission with a never-cooling breaker: once
        # open, deferred ops pile up to shed_capacity and the rest
        # fail fast as RequestShed.
        policy = RESILIENCE.scaled(breaker_threshold=1,
                                   breaker_cooldown=30.0, shed_capacity=8)
        recorder = EventRecorder()
        report = run_profile(faults={0: OMISSION_100},
                             resilience=policy, observer=recorder)
        assert report["shed"] > 0
        assert report["unresolved"] == 0
        assert report["unique"] is True
        assert any(e["kind"] == "serve.shed" for e in recorder.events())
        assert validate_serve_events(recorder.events()) == []

    def test_deadline_expires_retried_requests(self):
        # Backoff pushes the faulted shard's retries past the deadline;
        # healthy shards stay comfortably inside it.
        policy = RESILIENCE.scaled(deadline=0.01)
        recorder = EventRecorder()
        report = run_profile(faults={0: OMISSION_100}, windows={0: WINDOW},
                             resilience=policy, observer=recorder)
        assert report["deadline_expired"] > 0
        assert report["unresolved"] == 0
        assert report["unique"] is True
        assert any(e["kind"] == "serve.deadline"
                   for e in recorder.events())

    def test_failed_requests_leave_the_latency_percentiles(self):
        # Satellite: failures land in the "failed" histogram, not in
        # the per-kind percentiles that measure answered requests.
        report = run_profile(faults={0: OMISSION_100}, resilience=None)
        failed = report["latency"]["failed"]
        assert failed["count"] == report["degraded"]
        answered = (report["latency"]["rename"]["count"]
                    + report["latency"]["release"]["count"])
        assert answered == (report["renamed"] + report["rename_misses"]
                            + report["released"])


class TestStatsSurface:
    def test_service_stats_carry_resilience_counters(self):
        report = run_profile(faults={0: OMISSION_100}, windows={0: WINDOW},
                             resilience=RESILIENCE)
        service = report["service"]
        for key in ("failures", "retries", "shed", "deadline_expired",
                    "breaker_opens", "breaker_closes", "breakers_open"):
            assert key in service, key
        assert service["breakers_open"] == 0      # recovered by drain
        shard0 = report["per_shard"][0]
        assert shard0["retries"] > 0
        assert shard0["backlog"] == 0             # drained empty
        assert shard0["breaker"]["opens"] == service["breaker_opens"]

    def test_plain_service_stats_omit_breaker_keys(self):
        report = run_profile()
        assert "breaker_opens" not in report["service"]
        assert "breaker" not in report["per_shard"][0]

    def test_driver_row_carries_resilience_columns(self):
        row = serve_run_summary(
            24, 1, 0, requests=600, shards=2, max_batch=16,
            fault_window="[1, 5]",
            resilience='{"max_retries": 4, "backoff_base": 0.005, '
                       '"breaker_threshold": 3, "breaker_cooldown": 0.05}',
        )
        assert row["retries"] > 0
        assert row["degraded"] == 0               # retries recovered all
        assert row["unresolved"] == 0
        assert row["unique"] is True
        for key in ("shed", "deadline_expired", "breaker_opens",
                    "breaker_closes"):
            assert key in row, key

    def test_driver_row_replays_bit_exactly_with_resilience(self):
        kwargs = dict(requests=600, shards=2, max_batch=16,
                      fault_window="[1, 5]", resilience="{}")
        first = serve_run_summary(24, 1, 7, **kwargs)
        second = serve_run_summary(24, 1, 7, **kwargs)
        for key, value in first.items():
            if key.endswith("_ms") or key in ("wall_s", "throughput_rps"):
                continue
            assert second[key] == value, key


class TestShardDegradedCause:
    def test_kind_and_cause_are_attached(self):
        report = run_profile(faults={0: OMISSION_100}, resilience=None)
        assert report["degraded"] > 0

        async def scenario():
            service = RenamingService(
                shards=2, namespace=5_000, seed=1, max_batch=4,
                max_wait=None, config=CONFIG,
                shard_faults={0: OMISSION_100},
            )
            async with service:
                uids = [uid for uid in range(1, 200)
                        if shard_of(uid, 2) == 0][:4]
                futures = [service.submit("rename", uid, 0.0)
                           for uid in uids]
                await service.drain()
                return await asyncio.gather(*futures,
                                            return_exceptions=True)

        results = asyncio.run(scenario())
        errors = [r for r in results if isinstance(r, ShardDegraded)]
        assert errors
        for error in errors:
            assert error.kind == "faults"
            assert error.__cause__ is error.cause
            assert error.cause is not None


class TestLiveClock:
    """Satellite: the faulted live-clock path — wall-time arrivals,
    ``max_wait`` alarms, retry timers — resolves everything too."""

    def run_live(self, *, close_early=False, policy=None):
        async def scenario():
            service = RenamingService(
                shards=2, namespace=5_000, seed=1, max_batch=8,
                max_wait=0.005, config=CONFIG,
                shard_faults={0: OMISSION_100},
                shard_fault_windows={0: (1, 3)},
                resilience=policy or ResiliencePolicy(
                    max_retries=4, backoff_base=0.002,
                    backoff_jitter=0.0, breaker_threshold=100,
                ),
            )
            service.start()
            uids = [uid for uid in range(1, 400)
                    if shard_of(uid, 2) == 0][:12]
            futures = [service.submit("rename", uid)  # live arrivals
                       for uid in uids]
            if close_early:
                # Let the first epoch fail and a retry timer arm, then
                # close mid-retry: aclose must cancel the alarm and
                # still resolve every future.
                await asyncio.sleep(0.02)
            else:
                # Give the live retry alarm time to fire on its own.
                await asyncio.sleep(0.1)
            await service.aclose()
            lanes = service._lanes
            results = await asyncio.gather(*futures,
                                           return_exceptions=True)
            return service, lanes, results

        return asyncio.run(scenario())

    def test_live_retries_resolve_every_future(self):
        service, _lanes, results = self.run_live()
        failures = [r for r in results if isinstance(r, Exception)]
        renamed = [r for r in results if not isinstance(r, Exception)]
        assert len(renamed) + len(failures) == 12
        assert renamed                        # the window ended; shard
        assert not failures                   # recovered via retries
        assert service.stats()["retries"] > 0

    def test_aclose_mid_retry_cancels_timers_and_resolves(self):
        service, lanes, results = self.run_live(close_early=True)
        for lane in lanes:
            assert lane.retry_timer is None or lane.retry_timer.cancelled()
            assert lane.timer is None or lane.timer.cancelled()
            assert not lane.backlog           # drained by aclose
        assert all(f is not None for f in results)
        assert not any(isinstance(r, asyncio.InvalidStateError)
                       for r in results)
        assert len(results) == 12
