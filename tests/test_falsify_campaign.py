"""Tests for the falsification campaign runner and its CLI."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine.store import RunStore
from repro.falsify.campaign import (
    CampaignConfig,
    artifact_from_row,
    campaign_requests,
    falsify_run_summary,
    replay_artifact,
    run_campaign,
    save_findings,
)
from repro.falsify.replay import ReproArtifact
from repro.__main__ import main

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The planted-bug configuration every e2e test hunts in.
PLANTED_CONFIG = CampaignConfig(
    scenarios=("planted-duplicate",),
    n_values=(10,),
    seeds=(1,),
    adversaries=("partitioner",),
)


@pytest.fixture
def store(tmp_path):
    with RunStore(tmp_path / "runs.sqlite") as opened:
        yield opened


class TestDriver:
    def test_clean_row_shape(self):
        row = falsify_run_summary(8, 2, 3, scenario="crash",
                                  adversary="random")
        assert row["violation"] is None
        assert row["scenario"] == "crash"
        assert row["f_actual"] <= 2
        assert row["rounds"] > 0 and row["bits"] > 0
        json.loads(row["schedule"])  # always JSON, even when empty

    def test_violating_row_carries_schedule(self):
        row = falsify_run_summary(10, 2, 1, scenario="planted-duplicate",
                                  adversary="partitioner")
        assert row["violation"] == "unique-names"
        assert row["violation_round"] >= 1
        assert len(json.loads(row["violation_nodes"])) >= 2
        assert json.loads(row["schedule"])  # non-empty recorded schedule

    def test_artifact_from_row_strips_harness_params(self):
        params = dict(scenario="planted-duplicate", adversary="partitioner",
                      rate=None, watchdog_rounds=None)
        row = falsify_run_summary(10, 2, 1, **params)
        artifact = artifact_from_row(row, params)
        assert artifact.params == {}
        assert artifact.scenario == "planted-duplicate"
        assert artifact.f >= 1

    def test_artifact_from_clean_row_rejected(self):
        row = falsify_run_summary(6, 0, 0, scenario="gossip",
                                  adversary="none")
        with pytest.raises(ValueError, match="no violation"):
            artifact_from_row(row)


class TestCampaign:
    def test_requests_cover_the_grid(self):
        config = CampaignConfig(scenarios=("crash", "obg"), n_values=(8,),
                                seeds=(0, 1), adversaries=("random",))
        requests = campaign_requests(config)
        assert len(requests) == 4
        assert all(request.driver == "falsify" for request in requests)

    def test_finds_shrinks_and_replays_the_planted_bug(self, tmp_path):
        result = run_campaign(PLANTED_CONFIG)
        assert result.falsified
        assert not result.failures and not result.degraded

        (finding,) = result.findings
        assert finding.replayed
        assert finding.artifact.invariant == "unique-names"
        assert finding.shrink is not None
        assert finding.artifact.n <= finding.raw_artifact.n
        assert "replays" in finding.describe()

        (path,) = save_findings(result, tmp_path / "repros")
        loaded = ReproArtifact.load(path)
        assert replay_artifact(loaded) is not None

    def test_clean_scenarios_produce_no_findings(self, store):
        config = CampaignConfig(scenarios=("gossip", "obg"), n_values=(8,),
                                seeds=(0, 1), adversaries=("random",))
        result = run_campaign(config, store=store)
        assert not result.falsified
        assert not result.failures
        assert result.executed == 4
        # Second run: every probe is a store hit.
        again = run_campaign(config, store=store)
        assert again.cached == 4 and again.executed == 0

    def test_time_budget_skips_remaining_batches(self):
        config = CampaignConfig(scenarios=("gossip",), n_values=(6,),
                                seeds=tuple(range(20)),
                                adversaries=("none",), time_budget=10.0)
        ticks = iter([0.0, 100.0])
        result = run_campaign(config, clock=lambda: next(ticks, 200.0))
        assert result.skipped > 0
        assert len(result.results) + result.skipped == 20

    def test_degrades_to_serial_when_pool_breaks(self, monkeypatch):
        from repro.engine import pool as engine_pool

        real = engine_pool.run_requests

        def breaking(requests, *, jobs=1, **kwargs):
            if jobs > 1:
                raise RuntimeError("pool exploded")
            return real(requests, jobs=jobs, **kwargs)

        monkeypatch.setattr(engine_pool, "run_requests", breaking)
        config = CampaignConfig(scenarios=("gossip",), n_values=(6,),
                                seeds=(0,), adversaries=("none",), jobs=4)
        result = run_campaign(config)
        assert result.degraded
        assert len(result.results) == 1 and not result.failures


class TestCli:
    def test_campaign_flags_and_exit_code(self, tmp_path, capsys):
        out = tmp_path / "repros"
        code = main([
            "falsify", "--scenario", "planted-duplicate", "--n", "10",
            "--seeds", "1", "--adversary", "partitioner", "--no-store",
            "--out", str(out),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "FALSIFIED" in captured.out
        artifacts = list(out.glob("repro-*.json"))
        assert len(artifacts) == 1

    def test_clean_campaign_exits_zero(self, tmp_path, capsys):
        code = main([
            "falsify", "--scenario", "gossip", "--n", "8", "--seeds", "0",
            "--adversary", "random", "--no-store",
            "--out", str(tmp_path / "repros"),
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "no invariant violations" in captured.out

    def test_replay_mode_reproduces(self, tmp_path, capsys):
        result = run_campaign(PLANTED_CONFIG)
        (path,) = save_findings(result, tmp_path)
        code = main(["falsify", "--replay", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "reproduced" in captured.out

    def test_replay_in_fresh_process(self, tmp_path):
        """Acceptance: the saved artifact replays deterministically to
        the same violation in a brand-new interpreter."""
        result = run_campaign(PLANTED_CONFIG)
        (finding,) = result.findings
        (path,) = save_findings(result, tmp_path)

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "falsify", "--replay", str(path)],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "reproduced: [unique-names]" in completed.stdout
        # The violation is exactly what this process observed.
        assert f"round {finding.artifact.violation_round}" in completed.stdout
