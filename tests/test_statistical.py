"""Statistical checks on the randomized components.

These tests verify distributions, not single outcomes: committee sizes
concentrate where the election probability puts them, the shared-coin
stream is unbiased, the candidate lottery is Binomial, and the
balls-into-slots round count is logarithmic with small spread.  Sample
sizes and tolerances are chosen so that false alarms are ~impossible
(beyond 5 sigma) while real distributional bugs (off-by-2x rates,
stuck bits) are caught.
"""

import math
from random import Random

from repro.analysis.stats import summarize
from repro.baselines.balls_into_slots import run_balls_into_slots
from repro.core.crash_renaming import CrashRenamingConfig, run_crash_renaming
from repro.crypto.shared_randomness import SharedRandomness


class TestCommitteeSizeDistribution:
    def test_initial_committee_concentrates_at_c_log_n(self):
        n, c = 64, 4
        config = CrashRenamingConfig(election_constant=c)
        expected = c * math.log2(n)  # n * probability
        sizes = []
        for seed in range(25):
            result = run_crash_renaming(
                range(1, n + 1), seed=seed, config=config,
            )
            sizes.append(sum(p.ever_elected for p in result.processes))
        stats = summarize(sizes)
        sigma = math.sqrt(expected)  # binomial std, p small
        assert abs(stats.mean - expected) < 5 * sigma / math.sqrt(len(sizes))
        # Never wildly off in any single run (beyond ~5 sigma).
        assert stats.maximum < expected + 6 * sigma
        assert stats.minimum > max(0, expected - 6 * sigma)


class TestSharedCoinFairness:
    def test_coin_stream_is_balanced(self):
        shared = SharedRandomness(1234)
        flips = [shared.coin(f"fair:{i}") for i in range(4000)]
        ones = sum(flips)
        # 5-sigma band around 2000 for Binomial(4000, 1/2).
        assert abs(ones - 2000) < 5 * math.sqrt(1000)

    def test_coin_stream_has_no_stuck_runs(self):
        shared = SharedRandomness(99)
        flips = [shared.coin(f"runs:{i}") for i in range(2000)]
        longest, current = 0, 0
        previous = None
        for flip in flips:
            current = current + 1 if flip == previous else 1
            previous = flip
            longest = max(longest, current)
        # P[run >= 30] ~ 2000 * 2^-30 ~ 2e-6.
        assert longest < 30

    def test_lottery_is_binomial(self):
        universe, p = 20_000, 0.01
        sizes = [
            len(SharedRandomness(seed).bernoulli_subset("lot", universe, p))
            for seed in range(50)
        ]
        stats = summarize(sizes)
        mean, sigma = universe * p, math.sqrt(universe * p * (1 - p))
        assert abs(stats.mean - mean) < 5 * sigma / math.sqrt(len(sizes))
        assert sigma / 3 < stats.std < sigma * 3


class TestBallsRoundsDistribution:
    def test_rounds_are_logarithmic_with_small_spread(self):
        n = 64
        rounds = [
            run_balls_into_slots(range(1, n + 1), seed=seed).rounds
            for seed in range(30)
        ]
        stats = summarize(rounds)
        assert stats.mean < 2 * math.log2(n)
        assert stats.maximum - stats.minimum <= 6


class TestFingerprintUniformity:
    def test_digests_spread_over_the_field(self):
        """Digest residues mod small m should be near-uniform."""
        from repro.crypto.hashing import FingerprintFamily

        family = FingerprintFamily(SharedRandomness(7))
        hasher = family.draw("uniformity")
        buckets = [0] * 8
        for value in range(2000):
            digest = hasher.digest_segment([value + 1], 1, 4000)
            buckets[digest % 8] += 1
        expected = 2000 / 8
        # Chi-square with 7 dof: 5-sigma-ish critical value ~ 40.
        chi2 = sum((b - expected) ** 2 / expected for b in buckets)
        assert chi2 < 40
