"""Tests for the balls-into-slots baseline ([3]-style)."""

import math
from random import Random

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary.crash import (
    BudgetedAdaptiveCrash,
    MidSendPartitioner,
    RandomCrash,
    ScheduledCrash,
)
from repro.baselines.balls_into_slots import run_balls_into_slots


def assert_strong(result, n):
    outputs = result.outputs_by_uid()
    values = list(outputs.values())
    assert len(set(values)) == len(values), f"duplicates: {outputs}"
    assert all(1 <= value <= n for value in values)


class TestFailureFree:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 16, 50, 128])
    def test_every_slot_assigned(self, n):
        result = run_balls_into_slots(range(2, 2 + 5 * n, 5), seed=n)
        outputs = result.outputs_by_uid()
        assert sorted(outputs.values()) == list(range(1, n + 1))

    def test_round_count_is_logarithmic(self):
        # Randomized, but strongly concentrated: a constant fraction of
        # the contenders win each round.
        for n in (16, 64, 256):
            result = run_balls_into_slots(range(1, n + 1), seed=1)
            assert result.rounds <= 4 * math.ceil(math.log2(n)) + 4

    def test_messages_are_quadratic_per_active_round(self):
        n = 64
        result = run_balls_into_slots(range(1, n + 1), seed=1)
        # Every node broadcasts every round until quiescence.
        assert result.metrics.correct_messages >= n * n
        assert result.metrics.correct_messages <= n * n * result.rounds

    def test_messages_are_small(self):
        result = run_balls_into_slots(range(1, 65), namespace=1 << 20, seed=2)
        assert result.metrics.max_message_bits < 40

    def test_replayable(self):
        a = run_balls_into_slots(range(1, 33), seed=9)
        b = run_balls_into_slots(range(1, 33), seed=9)
        assert a.outputs_by_uid() == b.outputs_by_uid()
        assert a.rounds == b.rounds

    def test_duplicate_uids_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            run_balls_into_slots([4, 4])


class TestUnderCrashes:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_crashes(self, seed):
        n = 40
        result = run_balls_into_slots(
            range(1, n + 1),
            adversary=RandomCrash(n // 2, 0.1, Random(seed)), seed=seed,
        )
        assert_strong(result, n)

    @pytest.mark.parametrize("seed", range(6))
    def test_mid_send_claim_crashes(self, seed):
        """The nasty case: a claimant crashes mid-broadcast, so views
        disagree on whether its slot is taken."""
        n = 32
        result = run_balls_into_slots(
            range(1, n + 1),
            adversary=MidSendPartitioner(n // 2, Random(seed), per_round=3),
            seed=seed,
        )
        assert_strong(result, n)

    def test_winner_assassination(self):
        """Crash the lowest-index claimant every round (it is most
        likely to be winning some slot)."""
        n = 16

        def policy(round_no, proposed, alive, trace, remaining):
            if remaining == 0 or not proposed:
                return {}
            victim = min(v for v in proposed if proposed[v])
            kept = list(proposed[victim])[: len(proposed[victim]) // 2]
            return {victim: kept}

        result = run_balls_into_slots(
            range(1, n + 1),
            adversary=BudgetedAdaptiveCrash(n - 2, policy), seed=4,
        )
        assert_strong(result, n)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6), data=st.data())
    def test_uniqueness_under_random_schedules(self, seed, data):
        n = 12
        victims = data.draw(st.lists(
            st.integers(0, n - 1), unique=True, max_size=n - 1,
        ))
        rounds = data.draw(st.lists(
            st.integers(1, 12), min_size=len(victims), max_size=len(victims),
        ))
        prefixes = data.draw(st.lists(
            st.integers(0, n), min_size=len(victims), max_size=len(victims),
        ))
        schedule: dict[int, list[int]] = {}
        for victim, round_no in zip(victims, rounds):
            schedule.setdefault(round_no, []).append(victim)
        adversary = ScheduledCrash(
            schedule,
            deliver_prefix=dict(zip(victims, prefixes)),
        )
        result = run_balls_into_slots(
            range(1, n + 1), adversary=adversary, seed=seed,
        )
        assert_strong(result, n)


class TestLooseRenaming:
    """Definition 1.1's general M >= n: slack trades namespace for time."""

    def test_names_lie_in_the_larger_namespace(self):
        n, slots = 32, 64
        result = run_balls_into_slots(range(1, n + 1), slots=slots, seed=1)
        outputs = result.outputs_by_uid()
        assert len(set(outputs.values())) == n
        assert all(1 <= value <= slots for value in outputs.values())

    def test_slack_speeds_up_the_race(self):
        n = 128
        strong = [run_balls_into_slots(range(1, n + 1), seed=s).rounds
                  for s in range(3)]
        loose = [run_balls_into_slots(range(1, n + 1), slots=4 * n,
                                      seed=s).rounds for s in range(3)]
        assert max(loose) <= min(strong)

    def test_slots_below_n_rejected(self):
        with pytest.raises(ValueError, match="smaller than n"):
            run_balls_into_slots(range(1, 9), slots=7)

    def test_loose_under_crashes(self):
        n = 24
        result = run_balls_into_slots(
            range(1, n + 1), slots=2 * n,
            adversary=RandomCrash(8, 0.1, Random(3)), seed=3,
        )
        outputs = result.outputs_by_uid()
        values = list(outputs.values())
        assert len(set(values)) == len(values)
        assert all(1 <= value <= 2 * n for value in values)

    def test_namespace_covers_slots(self):
        # When uids are tiny but slots large, the cost model namespace
        # must still cover the slot values.
        result = run_balls_into_slots([1, 2, 3], slots=30, seed=1)
        assert result.metrics.max_message_bits > 0
