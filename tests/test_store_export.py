"""Columnar export: flattened runs, frontier SQL, writer fallbacks.

The acceptance bar: a ``runs export`` dump of a crash-scenario fault
sweep must reproduce the frontier rows with a *single* SQL query — no
JSON extraction, no re-execution.  The jsonl path is exercised
unconditionally (stdlib only); the Parquet round trip runs when a
writer (pyarrow or duckdb) is importable and the clean error when not.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

import pytest

from repro.engine.backends import duckdb_available
from repro.engine.export import export_store, parquet_writer_available
from repro.engine.pool import run_requests
from repro.engine.store import RunStore
from repro.engine.sweeps import RunRequest
from repro.__main__ import main as cli_main

FRONTIER_SQL = (
    "SELECT row_scenario AS scenario, row_faults AS faults,"
    " row_outcome AS outcome, row_messages AS messages"
    " FROM {runs}"
    " WHERE driver = 'faults' AND status = 'ok'"
    " ORDER BY created, hash"
)


def read_jsonl(path: Path) -> list[dict]:
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


def load_runs_into_sqlite(path: Path) -> sqlite3.Connection:
    """One table per jsonl export file, columns straight from records."""
    records = read_jsonl(path)
    columns = list(records[0])
    connection = sqlite3.connect(":memory:")
    ddl = ", ".join(f'"{column}"' for column in columns)
    connection.execute(f"CREATE TABLE runs ({ddl})")
    connection.executemany(
        f"INSERT INTO runs VALUES ({', '.join('?' for _ in columns)})",
        [tuple(record[column] for column in columns) for record in records],
    )
    return connection


@pytest.fixture()
def faults_store(tmp_path):
    """A store holding a small crash-scenario frontier sweep."""
    store = RunStore(f"sqlite://{tmp_path}/runs.sqlite")
    requests = [
        RunRequest.make("faults", 6, 1, seed, scenario="crash",
                        adversary="hunter", faults=spec)
        for seed in (0, 1)
        for spec in ("[]", '[{"kind": "omission", "p": 0.05, "budget": 4}]')
    ]
    results = run_requests(requests, store=store)
    assert all(result.ok for result in results)
    yield store
    store.close()


class TestJsonlExport:
    def test_frontier_rows_from_single_query(self, faults_store, tmp_path):
        out = tmp_path / "export"
        written = export_store(faults_store, out, formats=("jsonl",))
        assert [p.name for p in written["runs"]] == ["runs.jsonl"]

        expected = [
            (run.row["scenario"], run.row["faults"], run.row["outcome"],
             run.row["messages"])
            for run in faults_store.query(driver="faults", status="ok")
        ]
        assert len(expected) == 4

        connection = load_runs_into_sqlite(out / "runs.jsonl")
        frontier = connection.execute(
            FRONTIER_SQL.format(runs="runs")).fetchall()
        assert frontier == expected
        # The fault-free runs sit on the safe side of the frontier; the
        # injected-omission runs may degrade — the query surfaces both.
        assert all(outcome == "SAFE_TERMINATED"
                   for _, faults, outcome, _ in frontier if faults == "[]")

    def test_run_records_keep_identity_and_full_row(self, faults_store,
                                                    tmp_path):
        export_store(faults_store, tmp_path / "export")
        records = read_jsonl(tmp_path / "export" / "runs.jsonl")
        stored = {run.hash: run for run in faults_store.query()}
        assert {record["hash"] for record in records} == set(stored)
        for record in records:
            run = stored[record["hash"]]
            assert record["driver"] == "faults"
            assert (record["n"], record["f"], record["seed"]) == (
                run.n, run.f, run.seed)
            assert json.loads(record["params"]) == run.params
            # The full summary row survives as JSON next to the
            # flattened row_<key> scalar columns.
            assert json.loads(record["row"]) == run.row

    def test_ledgers_follow_runs(self, faults_store, tmp_path):
        export_store(faults_store, tmp_path / "export")
        ledger_records = read_jsonl(tmp_path / "export" / "ledgers.jsonl")
        by_hash: dict[str, list[dict]] = {}
        for record in ledger_records:
            by_hash.setdefault(record["run_hash"], []).append(record)
        with_ledger = [run for run in faults_store.query() if run.has_ledger]
        assert with_ledger  # the fault-free runs always carry one
        for run in with_ledger:
            messages, bits = faults_store.ledger(run.hash)
            rounds = by_hash.pop(run.hash)
            assert [r["round"] for r in rounds] == list(
                range(1, len(messages) + 1))
            assert [r["messages"] for r in rounds] == messages
            assert [r["bits"] for r in rounds] == bits
        assert not by_hash  # ledgerless runs export no ledger rows

    def test_scalar_row_keys_flatten_nested_values_stay_json(self, tmp_path):
        with RunStore(f"sqlite://{tmp_path}/runs.sqlite") as store:
            store.put("h1", driver="d", n=4, f=0, seed=0, params={},
                      version="v1", status="ok",
                      row={"messages": 5, "nested": {"x": 1}, "name": "a"})
            store.put("h2", driver="d", n=4, f=0, seed=1, params={},
                      version="v1", status="ok",
                      row={"messages": 7, "extra": 1.5})
            export_store(store, tmp_path / "export")
        records = {record["hash"]: record
                   for record in read_jsonl(tmp_path / "export/runs.jsonl")}
        # Unified schema: every record carries the union of scalar keys.
        assert {"row_messages", "row_name", "row_extra"} <= set(
            records["h1"])
        assert "row_nested" not in records["h1"]
        assert records["h1"]["row_messages"] == 5
        assert records["h1"]["row_extra"] is None
        assert records["h2"]["row_name"] is None
        assert json.loads(records["h1"]["row"])["nested"] == {"x": 1}

    def test_driver_and_status_filters(self, tmp_path):
        with RunStore(f"sqlite://{tmp_path}/runs.sqlite") as store:
            store.put("keep", driver="crash", n=4, f=0, seed=0, params={},
                      version="v1", status="ok", row={"m": 1},
                      messages_per_round=[1], bits_per_round=[8])
            store.put("drop", driver="gossip", n=4, f=0, seed=0, params={},
                      version="v1", status="ok", row={"m": 2},
                      messages_per_round=[2], bits_per_round=[16])
            store.put_telemetry("keep", "k", 1)
            store.put_telemetry("drop", "k", 2)
            export_store(store, tmp_path / "export", driver="crash")
        assert [r["hash"] for r in
                read_jsonl(tmp_path / "export/runs.jsonl")] == ["keep"]
        assert [r["run_hash"] for r in
                read_jsonl(tmp_path / "export/ledgers.jsonl")] == ["keep"]
        assert [r["run_hash"] for r in
                read_jsonl(tmp_path / "export/telemetry.jsonl")] == ["keep"]

    def test_unknown_format_rejected(self, tmp_path):
        with RunStore(f"sqlite://{tmp_path}/runs.sqlite") as store:
            with pytest.raises(ValueError, match="unknown export format"):
                export_store(store, tmp_path / "export", formats=("csv",))


class TestCli:
    def test_runs_export_cli(self, faults_store, tmp_path, capsys):
        out = tmp_path / "cli-export"
        code = cli_main([
            "runs", "export", "--store",
            f"sqlite://{tmp_path}/runs.sqlite", "--out", str(out),
            "--driver", "faults",
        ])
        captured = capsys.readouterr()
        assert code == 0
        printed = captured.out.strip().splitlines()
        assert str(out / "runs.jsonl") in printed
        assert "exported 4 runs" in captured.err
        assert len(read_jsonl(out / "runs.jsonl")) == 4


class TestParquet:
    @pytest.mark.skipif(parquet_writer_available(),
                        reason="a parquet writer is installed")
    def test_parquet_without_writer_fails_cleanly(self, faults_store,
                                                  tmp_path):
        with pytest.raises(RuntimeError, match="pyarrow.*duckdb"):
            export_store(faults_store, tmp_path / "export",
                         formats=("parquet",))

    @pytest.mark.skipif(not duckdb_available(),
                        reason="duckdb not installed")
    def test_parquet_frontier_round_trip(self, faults_store, tmp_path):
        import duckdb

        out = tmp_path / "export"
        export_store(faults_store, out, formats=("parquet", "jsonl"))
        expected = [
            (run.row["scenario"], run.row["faults"], run.row["outcome"],
             run.row["messages"])
            for run in faults_store.query(driver="faults", status="ok")
        ]
        connection = duckdb.connect(":memory:")
        try:
            frontier = connection.execute(FRONTIER_SQL.format(
                runs=f"'{out / 'runs.parquet'}'")).fetchall()
        finally:
            connection.close()
        assert frontier == expected
