"""Unit tests for the serving layer: sharding, batching, the service."""

import asyncio

import pytest

from repro.core.crash_renaming import CrashRenamingConfig
from repro.obs import EventRecorder, validate_events
from repro.serve.batching import (
    CLOSE_DEADLINE,
    CLOSE_DRAIN,
    CLOSE_FULL,
    CLOSE_TIMEOUT,
    BatchPolicy,
    EpochBatcher,
    plan_batches,
)
from repro.serve.obs import validate_serve_events
from repro.serve.service import NotRenamed, RenamingService
from repro.serve.sharding import (
    RELEASE,
    RENAME,
    ShardOp,
    global_compact,
    net_delta,
    shard_of,
    split_compact,
)

CONFIG = CrashRenamingConfig(election_constant=2.0)


def run(coroutine):
    return asyncio.run(coroutine)


def service(**overrides):
    options = dict(shards=2, namespace=10_000, seed=1, max_batch=8,
                   max_wait=0.05, config=CONFIG)
    options.update(overrides)
    return RenamingService(**options)


class TestShardMap:
    def test_map_is_pinned(self):
        # The uid -> shard map is baked into stored global ids, so it
        # must never drift across interpreter versions or hash seeds.
        uids = (1, 2, 3, 1000, 54321, 1 << 20)
        assert [shard_of(uid, 4) for uid in uids] == [1, 2, 3, 0, 1, 0]
        assert [shard_of(uid, 7) for uid in uids] == [5, 6, 4, 1, 5, 5]

    def test_every_uid_lands_in_range(self):
        for shards in (1, 2, 3, 8):
            assert all(0 <= shard_of(uid, shards) < shards
                       for uid in range(1, 500))

    def test_global_and_split_are_inverses(self):
        for shards in (1, 2, 5):
            for shard in range(shards):
                for local in range(1, 40):
                    gid = global_compact(local, shard, shards)
                    assert split_compact(gid, shards) == (local, shard)

    def test_global_ids_are_disjoint_across_shards(self):
        seen = set()
        for shard in range(4):
            for local in range(1, 100):
                gid = global_compact(local, shard, 4)
                assert gid >= 1
                assert gid not in seen
                seen.add(gid)


class TestNetDelta:
    def ops(self, *pairs):
        return [ShardOp(i, kind, uid) for i, (kind, uid) in enumerate(pairs)]

    def test_plain_join_and_leave(self):
        joins, leaves = net_delta(
            {5}, self.ops((RENAME, 7), (RELEASE, 5)))
        assert joins == [7]
        assert leaves == [5]

    def test_release_cancels_pending_join(self):
        joins, leaves = net_delta(
            set(), self.ops((RENAME, 7), (RELEASE, 7)))
        assert joins == []
        assert leaves == []

    def test_rename_cancels_pending_leave(self):
        joins, leaves = net_delta(
            {7}, self.ops((RELEASE, 7), (RENAME, 7)))
        assert joins == []
        assert leaves == []

    def test_rename_of_member_is_idempotent(self):
        joins, leaves = net_delta(
            {7}, self.ops((RENAME, 7), (RENAME, 7)))
        assert joins == []
        assert leaves == []

    def test_release_of_non_member_is_noop(self):
        joins, leaves = net_delta(set(), self.ops((RELEASE, 7)))
        assert (joins, leaves) == ([], [])

    def test_duplicate_joins_collapse(self):
        joins, leaves = net_delta(
            set(), self.ops((RENAME, 7), (RENAME, 7), (RENAME, 9)))
        assert joins == [7, 9]

    def test_lookup_cannot_reach_an_epoch(self):
        with pytest.raises(ValueError, match="lookup"):
            net_delta(set(), [ShardOp(0, "lookup", 7)])


class TestBatcher:
    def op(self, index, uid=None):
        return ShardOp(index, RENAME, uid if uid is not None else index + 1)

    def test_closes_when_full(self):
        batcher = EpochBatcher(0, BatchPolicy(max_batch=3, max_wait=None))
        assert batcher.offer(self.op(0), 0.0) == []
        assert batcher.offer(self.op(1), 0.1) == []
        (batch,) = batcher.offer(self.op(2), 0.2)
        assert batch.reason == CLOSE_FULL
        assert [op.index for op in batch.ops] == [0, 1, 2]
        assert len(batcher) == 0

    def test_closes_on_deadline_before_adding_late_op(self):
        batcher = EpochBatcher(0, BatchPolicy(max_batch=10, max_wait=1.0))
        batcher.offer(self.op(0), 0.0)
        batcher.offer(self.op(1), 0.5)
        (batch,) = batcher.offer(self.op(2), 1.5)
        assert batch.reason == CLOSE_DEADLINE
        assert [op.index for op in batch.ops] == [0, 1]
        assert len(batcher) == 1  # the late op opened the next batch

    def test_arrival_at_deadline_still_joins(self):
        batcher = EpochBatcher(0, BatchPolicy(max_batch=10, max_wait=1.0))
        batcher.offer(self.op(0), 0.0)
        assert batcher.offer(self.op(1), 1.0) == []
        assert len(batcher) == 2

    def test_max_batch_one_can_close_two_at_once(self):
        batcher = EpochBatcher(0, BatchPolicy(max_batch=1, max_wait=None))
        (batch,) = batcher.offer(self.op(0), 0.0)
        assert batch.reason == CLOSE_FULL
        (batch2,) = batcher.offer(self.op(1), 0.1)
        assert batch2.index == 1

    def test_flush_and_boundaries(self):
        batcher = EpochBatcher(3, BatchPolicy(max_batch=2, max_wait=None))
        batcher.offer(self.op(0), 0.0)
        batcher.offer(self.op(1), 0.1)
        batcher.offer(self.op(2), 0.2)
        assert batcher.flush() .reason == CLOSE_DRAIN
        assert batcher.flush() is None
        assert [b["reason"] for b in batcher.boundaries] == [
            CLOSE_FULL, CLOSE_DRAIN,
        ]
        assert [b["shard"] for b in batcher.boundaries] == [3, 3]
        assert batcher.boundaries[0]["first"] == 0
        assert batcher.boundaries[0]["last"] == 1

    def test_deadline_property(self):
        batcher = EpochBatcher(0, BatchPolicy(max_batch=4, max_wait=0.5))
        assert batcher.deadline is None
        batcher.offer(self.op(0), 2.0)
        assert batcher.deadline == 2.5

    def test_plan_matches_incremental_offers(self):
        policy = BatchPolicy(max_batch=3, max_wait=0.4)
        stream = [(self.op(i), 0.17 * i) for i in range(17)]
        planned = plan_batches(0, stream, policy)
        batcher = EpochBatcher(0, policy)
        incremental = []
        for op, arrival in stream:
            incremental.extend(batcher.offer(op, arrival))
        tail = batcher.flush(CLOSE_DRAIN)
        if tail is not None:
            incremental.append(tail)
        assert [b.boundary() for b in planned] == [
            b.boundary() for b in incremental
        ]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait=-1.0)


class TestService:
    def test_rename_lookup_release_round_trip(self):
        # Deterministic mode: a submitted request only resolves once
        # its batch flushes, so drain before awaiting.
        async def scenario():
            async with service() as svc:
                assert svc.lookup(101) is None
                rename = svc.submit(RENAME, 101, 0.0)
                await svc.drain()
                gid = await rename
                assert svc.lookup(101) == gid
                assert svc.original_of(gid) == 101
                release = svc.submit(RELEASE, 101, 1.0)
                await svc.drain()
                assert await release is True
                assert svc.lookup(101) is None
                return gid

        assert run(scenario()) >= 1

    def test_batch_renames_get_distinct_global_ids(self):
        async def scenario():
            async with service(shards=3) as svc:
                futures = [svc.submit(RENAME, uid, 0.0)
                           for uid in range(200, 230)]
                await svc.drain()
                return await asyncio.gather(*futures)

        ids = run(scenario())
        assert len(set(ids)) == 30

    def test_rename_then_release_in_one_batch_is_not_renamed(self):
        async def scenario():
            async with service(max_batch=64) as svc:
                rename = svc.submit(RENAME, 300, 0.0)
                release = svc.submit(RELEASE, 300, 0.0)
                await svc.drain()
                assert await release is True
                with pytest.raises(NotRenamed):
                    await rename

        run(scenario())

    def test_release_of_last_member_withdraws_names(self):
        async def scenario():
            async with service(shards=1) as svc:
                rename = svc.submit(RENAME, 42, 0.0)
                await svc.drain()
                gid = await rename
                assert svc.lookup(42) == gid
                release = svc.submit(RELEASE, 42, 1.0)
                await svc.drain()
                await release
                return svc.lookup(42), svc.stats()

        looked_up, stats = run(scenario())
        assert looked_up is None
        assert stats["empty_batches"] == 1
        assert stats["members"] == 0

    def test_live_mode_timer_flushes_a_lonely_request(self):
        async def scenario():
            async with service(max_wait=0.02) as svc:
                gid = await asyncio.wait_for(svc.rename(77), timeout=5.0)
                return gid, svc.lookup(77)

        gid, looked_up = run(scenario())
        assert looked_up == gid

    def test_submit_validates_kind_and_range(self):
        async def scenario():
            async with service() as svc:
                with pytest.raises(ValueError, match="kind"):
                    svc.submit("lookup", 5, 0.0)
                with pytest.raises(ValueError, match="outside"):
                    svc.submit(RENAME, 0, 0.0)
                with pytest.raises(ValueError, match="outside"):
                    svc.lookup(20_000)

        run(scenario())

    def test_requires_running_loop_lifecycle(self):
        svc = service()
        with pytest.raises(RuntimeError, match="not started"):
            svc.submit(RENAME, 5, 0.0)

        async def double_start():
            async with service() as running:
                with pytest.raises(RuntimeError, match="already started"):
                    running.start()

        run(double_start())

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="shards"):
            service(shards=0)
        with pytest.raises(ValueError, match="outside"):
            service(shard_faults={5: [{"kind": "omission", "p": 1.0}]})

    def test_events_are_schema_valid(self):
        recorder = EventRecorder()

        async def scenario():
            async with service(observer=recorder) as svc:
                for uid in range(400, 420):
                    svc.submit(RENAME, uid, 0.0)
                await svc.drain()

        run(scenario())
        events = recorder.events()
        assert validate_events(events) == []
        assert validate_serve_events(events) == []
        kinds = {event["kind"] for event in events}
        assert {"serve.start", "serve.batch.close", "serve.epoch.begin",
                "serve.epoch.end", "serve.drain",
                "serve.stop"} <= kinds

    def test_phase_report_with_shard_profiling(self):
        async def scenario():
            async with service(profile_shards=True) as svc:
                for uid in range(500, 520):
                    svc.submit(RENAME, uid, 0.0)
                await svc.drain()
                return svc.phase_report()

        report = run(scenario())
        phases = report["phases"]
        assert any(name.endswith(":epoch") for name in phases)
        # The per-shard taps split epochs into the protocol's phases.
        assert any(name.endswith(":plan") for name in phases)
        assert any(name.endswith(":advance") for name in phases)

    def test_per_shard_stats_and_assignment_agree(self):
        async def scenario():
            async with service(shards=4) as svc:
                for uid in range(600, 680):
                    svc.submit(RENAME, uid, 0.0)
                await svc.drain()
                return svc.per_shard_stats(), svc.assignment()

        rows, assignment = run(scenario())
        assert sum(row["members"] for row in rows) == 80
        assert len(assignment) == 80
        values = list(assignment.values())
        assert len(set(values)) == len(values)

    def test_timeout_flush_reason_recorded_in_live_mode(self):
        async def scenario():
            async with service(max_wait=0.02) as svc:
                await asyncio.wait_for(svc.rename(88), timeout=5.0)
                return svc.boundaries()

        boundaries = run(scenario())
        reasons = [b["reason"] for shard in boundaries for b in shard]
        assert CLOSE_TIMEOUT in reasons
