"""White-box vectors for the paper's pseudocode (Figures 2 and 3).

Each test drives one committee / node action with a hand-constructed
message set and checks the exact response the pseudocode prescribes --
the rank rule ``|B| + rank(ID) <= |bot(I)|``, the minimum-depth gate,
the response sort order, and the p-propagation rules.
"""

from random import Random

from repro.core.crash_renaming import (
    CrashRenamingConfig,
    CrashRenamingNode,
    Response,
    Status,
)
from repro.core.intervals import Interval
from repro.sim.messages import CostModel
from repro.sim.node import Context


def committee_replies(statuses, p_self=0):
    """Run Figure 2 on (link, status) pairs; return {uid: response}."""
    node = CrashRenamingNode(uid=999)
    sends = node._committee_action(list(enumerate(statuses)), p_self)
    return {send.message.uid: send.message for send in sends}


def make_node(uid=5, interval=Interval(1, 8), depth=0, p=0, elected=False):
    node = CrashRenamingNode(uid, CrashRenamingConfig(election_constant=0.0))
    node.interval = interval
    node.depth = depth
    node.p = p
    node.elected = elected
    return node


def ctx_for(n=8):
    return Context(n=n, namespace=64, index=0, rng=Random(1),
                   cost=CostModel(n=n, namespace=64))


class TestCommitteeActionFigure2:
    def test_four_nodes_split_root_evenly(self):
        """Four nodes on [1,4]: ranks 1,2 fit in bot [1,2]; 3,4 go top."""
        root = Interval(1, 4)
        statuses = [Status(uid, root, 0, 0) for uid in (10, 20, 30, 40)]
        replies = committee_replies(statuses)
        assert replies[10].interval == Interval(1, 2)
        assert replies[20].interval == Interval(1, 2)
        assert replies[30].interval == Interval(3, 4)
        assert replies[40].interval == Interval(3, 4)
        assert all(reply.depth == 1 for reply in replies.values())

    def test_rank_is_by_identity_not_arrival_order(self):
        root = Interval(1, 4)
        statuses = [Status(uid, root, 0, 0) for uid in (40, 10, 30, 20)]
        replies = committee_replies(statuses)
        assert replies[10].interval == Interval(1, 2)
        assert replies[40].interval == Interval(3, 4)

    def test_occupied_bot_pushes_new_arrivals_up(self):
        """|B| nodes already inside bot(I) consume its slots."""
        parent = Interval(1, 4)
        statuses = [
            Status(50, parent, 0, 0),               # the one to place
            Status(7, Interval(1, 2), 1, 0),        # already in bot
            Status(8, Interval(1, 1), 2, 0),        # deeper inside bot
        ]
        replies = committee_replies(statuses)
        # |B| = 2, rank(50) = 1 -> 3 > |bot| = 2 -> top.
        assert replies[50].interval == Interval(3, 4)

    def test_min_depth_gate_echoes_deeper_nodes(self):
        statuses = [
            Status(10, Interval(1, 8), 0, 0),
            Status(20, Interval(1, 4), 1, 2),
        ]
        replies = committee_replies(statuses, p_self=5)
        # uid 20 sits above the minimum depth: echoed unchanged, with
        # the committee member's own p substituted.
        assert replies[20].interval == Interval(1, 4)
        assert replies[20].depth == 1
        assert replies[20].p == 5
        # uid 10 is at the minimum depth: halved.
        assert replies[10].depth == 1

    def test_singleton_at_min_depth_advances_without_halving(self):
        statuses = [
            Status(10, Interval(3, 3), 1, 0),
            Status(20, Interval(1, 2), 1, 0),
        ]
        replies = committee_replies(statuses)
        assert replies[10].interval == Interval(3, 3)
        assert replies[10].depth == 2

    def test_empty_message_set_sends_nothing(self):
        assert committee_replies([]) == {}

    def test_same_interval_not_counted_as_inside_bot(self):
        """I_u == I_w must not land in B (I_w is not inside bot(I_w))."""
        root = Interval(1, 4)
        statuses = [Status(10, root, 0, 0), Status(20, root, 0, 0)]
        replies = committee_replies(statuses)
        # |B| = 0; rank(10)=1, rank(20)=2, both <= |bot|=2 -> both bot.
        assert replies[10].interval == Interval(1, 2)
        assert replies[20].interval == Interval(1, 2)


class TestNodeActionFigure3:
    def test_adopts_deepest_response_first(self):
        node = make_node(interval=Interval(1, 8), depth=0)
        node._node_action([
            Response(5, Interval(1, 8), 0, 0),
            Response(5, Interval(1, 4), 1, 0),
        ], ctx_for())
        assert node.interval == Interval(1, 4)
        assert node.depth == 1

    def test_ties_break_toward_smaller_left_endpoint(self):
        node = make_node(interval=Interval(1, 8), depth=0)
        node._node_action([
            Response(5, Interval(5, 8), 1, 0),
            Response(5, Interval(1, 4), 1, 0),
        ], ctx_for())
        assert node.interval == Interval(1, 4)

    def test_singleton_keeps_interval_but_advances_depth(self):
        node = make_node(interval=Interval(3, 3), depth=2)
        node._node_action([Response(5, Interval(3, 3), 3, 0)], ctx_for())
        assert node.interval == Interval(3, 3)
        assert node.depth == 3

    def test_no_responses_increments_p(self):
        node = make_node(p=1)
        node._node_action([], ctx_for())
        assert node.p == 2

    def test_adopts_maximum_p_from_responses(self):
        node = make_node(p=0)
        node._node_action([
            Response(5, Interval(1, 4), 1, 3),
            Response(5, Interval(1, 4), 1, 1),
        ], ctx_for())
        assert node.p == 3

    def test_smaller_p_does_not_regress(self):
        node = make_node(p=4)
        node._node_action([Response(5, Interval(1, 4), 1, 2)], ctx_for())
        assert node.p == 4

    def test_election_probability_saturates_at_one(self):
        config = CrashRenamingConfig(election_constant=256)
        assert config.election_probability(p=0, n=16) == 1.0

    def test_election_probability_zero_for_single_node(self):
        config = CrashRenamingConfig()
        assert config.election_probability(p=0, n=1) == 0.0

    def test_phase_count(self):
        config = CrashRenamingConfig()
        assert config.phase_count(1) == 0
        assert config.phase_count(16) == 12
        assert config.phase_count(17) == 15
