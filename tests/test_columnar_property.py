"""Property test: the columnar deliver core is observationally silent.

Random per-node send scripts (broadcasts, shared-instance targeted
runs, per-target fresh messages, quiet rounds) are executed under
randomly drawn crash adversaries and link-fault specs
(drop / duplicate / corrupt / hold), once per engine path.  Every
counted observable — ``Metrics.summary()``, the per-round ledgers,
node outputs, crash sets, and ``FaultStats`` — must be identical
between ``columnar=True`` and ``columnar=False``, and the held-mail
ledger identity ``held == released + released_to_dead + in_flight()``
must hold at the end of every run.
"""

from dataclasses import dataclass
from random import Random

from hypothesis import given, settings, strategies as st

from repro.adversary.crash import RandomCrash
from repro.faults import NoFaults, build_fault_model
from repro.sim.messages import CostModel, Message, Send, broadcast
from repro.sim.node import Process
from repro.sim.runner import run_network


@dataclass(frozen=True)
class Probe(Message):
    value: int = 0
    tag: int = 0

    def payload_bits(self, cost):
        return 12


class ScriptedNode(Process):
    """Plays a fixed per-round send script and digests every inbox."""

    def __init__(self, uid, script):
        super().__init__(uid)
        self.script = script

    def program(self, ctx):
        received = []
        for op in self.script:
            if op[0] == "broadcast":
                outgoing = broadcast(ctx.n, Probe(op[1], ctx.index))
            elif op[0] == "sends":
                # One shared message instance: a maximal constant run.
                message = Probe(op[1], ctx.index)
                outgoing = [Send(to, message) for to in op[2]]
            elif op[0] == "varied":
                # Fresh, pairwise-unequal messages: no batching at all.
                outgoing = [Send(to, Probe(op[1] + k, ctx.index))
                            for k, to in enumerate(op[2])]
            else:
                outgoing = []
            inbox = yield outgoing
            received.append(tuple(
                (env.sender, env.round_no, env.message.value, env.message.tag)
                for env in inbox))
        return tuple(received)


def _round_ops(n):
    value = st.integers(0, 7)
    targets = st.lists(st.integers(0, n - 1), max_size=2 * n).map(tuple)
    return st.one_of(
        st.tuples(st.just("broadcast"), value),
        st.tuples(st.just("sends"), value, targets),
        st.tuples(st.just("varied"), value, targets),
        st.tuples(st.just("quiet")),
    )


def _fault_entries(rounds):
    probability = st.sampled_from([0.0, 0.3, 1.0])
    seed = st.integers(0, 99)
    channel = st.fixed_dictionaries(
        {"kind": st.sampled_from(["omission", "duplicate", "corrupt"]),
         "p": probability, "seed": seed})
    # ``end`` may exceed the run length: held mail then expires at the
    # run-end drain instead of being released.
    partition = st.fixed_dictionaries(
        {"kind": st.just("partition"),
         "start": st.integers(1, rounds),
         "end": st.integers(rounds + 1, rounds + 3)})
    return st.lists(st.one_of(channel, partition), max_size=2)


@st.composite
def scenarios(draw):
    n = draw(st.integers(2, 6))
    rounds = draw(st.integers(1, 4))
    scripts = [[draw(_round_ops(n)) for _ in range(rounds)]
               for _ in range(n)]
    crash_seed = draw(st.none() | st.integers(0, 999))
    fault_spec = draw(_fault_entries(rounds))
    seed = draw(st.integers(0, 999))
    return n, scripts, crash_seed, fault_spec, seed


def _execute(n, scripts, crash_seed, fault_spec, seed, columnar,
             fault_model=None):
    processes = [ScriptedNode(index + 1, scripts[index])
                 for index in range(n)]
    adversary = (RandomCrash(budget=n // 2, rate=0.3, rng=Random(crash_seed))
                 if crash_seed is not None else None)
    if fault_model is None:
        fault_model = build_fault_model(fault_spec, n, seed=seed)
    return run_network(
        processes, CostModel(n=n, namespace=4 * n),
        crash_adversary=adversary, seed=seed,
        fault_model=fault_model, columnar=columnar)


def _observables(result):
    metrics = result.metrics
    stats = result.fault_stats
    return {
        "summary": metrics.summary(),
        "messages_per_round": list(metrics.messages_per_round),
        "bits_per_round": list(metrics.bits_per_round),
        "outputs": dict(result.results),
        "crashed": set(result.crashed),
        "fault_stats": stats.as_dict() if stats is not None else None,
    }


def _assert_ledger_identity(result):
    stats = result.fault_stats
    if stats is None:
        return
    assert stats.held == (stats.released + stats.released_to_dead
                          + stats.in_flight())
    # The run-end drain expired exactly what was still in flight.
    assert stats.expired == stats.in_flight()


class TestColumnarProperty:
    @settings(max_examples=40, deadline=None)
    @given(scenarios())
    def test_columnar_and_object_paths_agree(self, scenario):
        results = {}
        for columnar in (False, True):
            result = _execute(*scenario, columnar=columnar)
            _assert_ledger_identity(result)
            results[columnar] = _observables(result)
        assert results[True] == results[False]

    @settings(max_examples=15, deadline=None)
    @given(scenarios())
    def test_faulted_path_with_nofaults_matches_columnar(self, scenario):
        # Cross-path check: the faulted deliver loop with a no-op
        # channel must count exactly like the columnar fast path.
        n, scripts, crash_seed, _spec, seed = scenario
        clean = _observables(_execute(
            n, scripts, crash_seed, [], seed, columnar=True))
        faulted = _observables(_execute(
            n, scripts, crash_seed, [], seed, columnar=True,
            fault_model=NoFaults()))
        assert faulted["fault_stats"] is not None
        faulted["fault_stats"] = None
        assert faulted == clean
