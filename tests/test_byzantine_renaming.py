"""Tests for the Byzantine-resilient renaming algorithm (Theorem 1.3)."""

import math

import pytest

from repro.adversary import byzantine as byz
from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    run_byzantine_renaming,
)

N_NODES = 13
UIDS = [7, 19, 55, 102, 200, 333, 404, 512, 640, 777, 900, 1010, 1500]
NAMESPACE = 2048


def assert_correct_renaming(result, uids, corrupted=()):
    """Survivor outputs are distinct, in [1, n], and order-preserving."""
    outputs = result.outputs_by_uid()
    correct_uids = sorted(uid for uid in uids if uid not in corrupted)
    assert set(outputs) == set(correct_uids)
    values = [outputs[uid] for uid in correct_uids]
    assert len(set(values)) == len(values), f"duplicates: {outputs}"
    assert all(1 <= value <= len(uids) for value in values)
    assert values == sorted(values), f"order broken: {outputs}"


class TestFailureFree:
    def test_exact_rank_renaming(self):
        result = run_byzantine_renaming(UIDS, namespace=NAMESPACE,
                                        shared_seed=1, seed=2)
        outputs = result.outputs_by_uid()
        # With nobody faulty the names are exactly the sorted ranks.
        assert outputs == {uid: i + 1 for i, uid in enumerate(sorted(UIDS))}

    def test_single_segment_when_honest(self):
        result = run_byzantine_renaming(UIDS, namespace=NAMESPACE,
                                        shared_seed=1, seed=2)
        committee = [p for p in result.processes if p.was_committee]
        assert committee
        assert all(p.segments_processed == 1 for p in committee)
        assert all(p.segments_split == 0 for p in committee)
        assert all(p.dirty_intervals == [] for p in committee)

    def test_replayable(self):
        a = run_byzantine_renaming(UIDS, namespace=NAMESPACE, shared_seed=3, seed=4)
        b = run_byzantine_renaming(UIDS, namespace=NAMESPACE, shared_seed=3, seed=4)
        assert a.outputs_by_uid() == b.outputs_by_uid()
        assert a.metrics.correct_messages == b.metrics.correct_messages

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
    def test_small_systems(self, n):
        uids = [3 * i + 2 for i in range(n)]
        result = run_byzantine_renaming(uids, namespace=64, shared_seed=n,
                                        seed=n + 1)
        assert_correct_renaming(result, uids)


class TestWithholderAttack:
    """The identity-withholding attack drives the divide-and-conquer."""

    CONFIG = ByzantineRenamingConfig(max_byzantine=4)

    def test_correct_despite_withholding(self):
        corrupted = {UIDS[4]: byz.make_withholder(0.5)}
        result = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine=corrupted,
            config=self.CONFIG, shared_seed=5, seed=6,
        )
        assert_correct_renaming(result, UIDS, corrupted)

    def test_splits_scale_like_log_namespace(self):
        # Lemma 3.10: one withheld identity forces the recursion to
        # isolate it, ~log2(N) splits.
        corrupted = {UIDS[4]: byz.make_withholder(0.5)}
        result = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine=corrupted,
            config=self.CONFIG, shared_seed=5, seed=6,
        )
        committee = [p for p in result.processes
                     if getattr(p, "was_committee", False) and not p.byzantine]
        splits = max(p.segments_split for p in committee)
        assert math.log2(NAMESPACE) - 2 <= splits <= 2 * math.log2(NAMESPACE)

    def test_two_withholders_cost_more_than_one(self):
        one = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE,
            byzantine={UIDS[4]: byz.make_withholder(0.5)},
            config=self.CONFIG, shared_seed=7, seed=8,
        )
        two = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE,
            byzantine={UIDS[4]: byz.make_withholder(0.5),
                       UIDS[9]: byz.make_withholder(0.5)},
            config=self.CONFIG, shared_seed=7, seed=8,
        )
        # A second withholder can never make the recursion cheaper; it
        # does not always make it strictly deeper either, because a
        # near-half split of the committee may resolve via the
        # dirty-accept path instead of further recursion (that is the
        # mechanism of Lemma 3.11).  Strict growth in f is asserted by
        # TestAdaptivityToActualFaults.
        assert two.rounds >= one.rounds
        assert_correct_renaming(two, UIDS,
                                {UIDS[4], UIDS[9]})

    def test_full_withholding_is_harmless(self):
        # fraction=1.0 means announce everywhere: no discrepancy at all.
        corrupted = {UIDS[4]: byz.make_withholder(1.0)}
        result = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine=corrupted,
            config=self.CONFIG, shared_seed=9, seed=10,
        )
        assert_correct_renaming(result, UIDS, corrupted)


class TestOtherAttacks:
    CONFIG = ByzantineRenamingConfig(max_byzantine=4)

    def test_silent_byzantines(self):
        corrupted = {UIDS[0]: byz.silent, UIDS[12]: byz.silent}
        result = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine=corrupted,
            config=self.CONFIG, shared_seed=11, seed=12,
        )
        assert_correct_renaming(result, UIDS, corrupted)

    def test_crash_simulators(self):
        corrupted = {UIDS[2]: byz.crash_simulator, UIDS[6]: byz.crash_simulator}
        result = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine=corrupted,
            config=self.CONFIG, shared_seed=13, seed=14,
        )
        assert_correct_renaming(result, UIDS, corrupted)

    def test_equivocators(self):
        corrupted = {UIDS[1]: byz.make_equivocator(),
                     UIDS[8]: byz.make_equivocator()}
        result = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine=corrupted,
            config=self.CONFIG, shared_seed=15, seed=16,
        )
        assert_correct_renaming(result, UIDS, corrupted)

    def test_mixed_adversary_at_the_resilience_bound(self):
        # 4 corrupted of 13 = the largest f < 13/3 rounds to 4.
        corrupted = {
            UIDS[1]: byz.make_equivocator(),
            UIDS[4]: byz.make_withholder(0.3),
            UIDS[7]: byz.silent,
            UIDS[10]: byz.crash_simulator,
        }
        result = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine=corrupted,
            config=self.CONFIG, shared_seed=17, seed=18,
        )
        assert_correct_renaming(result, UIDS, corrupted)

    @pytest.mark.parametrize("shared_seed", range(4))
    def test_withholder_across_lotteries(self, shared_seed):
        corrupted = {UIDS[5]: byz.make_withholder(0.5, salt=shared_seed)}
        result = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine=corrupted,
            config=self.CONFIG, shared_seed=shared_seed, seed=shared_seed,
        )
        assert_correct_renaming(result, UIDS, corrupted)


class TestAdaptivityToActualFaults:
    """Theorem 1.3: cost scales with the actual number of Byzantine
    nodes, not the worst-case bound the config provisions for."""

    def test_rounds_grow_with_actual_f(self):
        config = ByzantineRenamingConfig(max_byzantine=4)
        rounds = []
        for f in (0, 1, 2):
            corrupted = {
                UIDS[3 + i]: byz.make_withholder(0.5) for i in range(f)
            }
            result = run_byzantine_renaming(
                UIDS, namespace=NAMESPACE, byzantine=corrupted,
                config=config, shared_seed=19, seed=20,
            )
            rounds.append(result.rounds)
        assert rounds[0] < rounds[1] < rounds[2]

    def test_honest_run_cost_is_independent_of_provisioned_bound(self):
        lean = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE,
            config=ByzantineRenamingConfig(max_byzantine=1),
            shared_seed=21, seed=22,
        )
        stout = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE,
            config=ByzantineRenamingConfig(max_byzantine=4),
            shared_seed=21, seed=22,
        )
        assert lean.rounds == stout.rounds


class TestOrderPreservation:
    def test_names_follow_identity_order_under_attack(self):
        corrupted = {UIDS[6]: byz.make_withholder(0.5)}
        result = run_byzantine_renaming(
            UIDS, namespace=NAMESPACE, byzantine=corrupted,
            config=ByzantineRenamingConfig(max_byzantine=4),
            shared_seed=23, seed=24,
        )
        outputs = result.outputs_by_uid()
        ordered = sorted(outputs)
        assert all(outputs[a] < outputs[b]
                   for a, b in zip(ordered, ordered[1:]))
