"""Tests for the epoch-based overlay directory application."""

from random import Random

import pytest

from repro.adversary.crash import CommitteeHunter, RandomCrash
from repro.apps.overlay_directory import OverlayDirectory
from repro.core.crash_renaming import CrashRenamingConfig

CONFIG = CrashRenamingConfig(election_constant=4)


def fresh_directory(n=12, namespace=10_000, seed=1):
    directory = OverlayDirectory(namespace, config=CONFIG, seed=seed)
    for uid in range(100, 100 + 37 * n, 37):
        directory.join(uid)
    return directory


class TestMembership:
    def test_join_and_leave(self):
        directory = OverlayDirectory(100, seed=1)
        directory.join(5)
        directory.leave(5)
        assert directory.members == set()

    def test_duplicate_join_rejected(self):
        directory = OverlayDirectory(100)
        directory.join(5)
        with pytest.raises(ValueError, match="already"):
            directory.join(5)

    def test_leave_of_non_member_rejected(self):
        with pytest.raises(ValueError, match="not a member"):
            OverlayDirectory(100).leave(5)

    def test_identity_must_fit_namespace(self):
        with pytest.raises(ValueError, match="outside"):
            OverlayDirectory(100).join(101)

    def test_namespace_validated(self):
        with pytest.raises(ValueError):
            OverlayDirectory(0)


class TestEpochs:
    def test_first_epoch_assigns_compact_ids(self):
        directory = fresh_directory(n=10)
        report = directory.run_epoch()
        assert report.epoch == 1
        assert report.renamed == 10
        assert sorted(report.assignment.values()) == list(range(1, 11))

    def test_lookups_are_inverses(self):
        directory = fresh_directory(n=8)
        directory.run_epoch()
        for uid in directory.members:
            assert directory.original_id(directory.compact_id(uid)) == uid

    def test_lookup_before_epoch_fails(self):
        directory = fresh_directory()
        with pytest.raises(KeyError, match="no compact id"):
            directory.compact_id(100)

    def test_unassigned_compact_id_fails(self):
        directory = fresh_directory(n=4)
        directory.run_epoch()
        with pytest.raises(KeyError, match="unassigned"):
            directory.original_id(5)

    def test_empty_epoch_rejected(self):
        with pytest.raises(ValueError, match="no members"):
            OverlayDirectory(100).run_epoch()

    def test_churn_shrinks_and_grows_the_namespace(self):
        directory = fresh_directory(n=10)
        directory.run_epoch()
        departing = sorted(directory.members)[:3]
        for uid in departing:
            directory.leave(uid)
        directory.join(9_999)
        report = directory.run_epoch()
        assert report.members == 8
        assert sorted(report.assignment.values()) == list(range(1, 9))
        assert directory.compact_id(9_999) in range(1, 9)

    def test_epochs_replay_from_seed(self):
        a = fresh_directory(seed=9)
        b = fresh_directory(seed=9)
        assert a.run_epoch().assignment == b.run_epoch().assignment

    def test_history_accumulates(self):
        directory = fresh_directory(n=6)
        directory.run_epoch()
        directory.run_epoch()
        assert [report.epoch for report in directory.history] == [1, 2]


class TestReportImmutability:
    def test_assignment_rejects_mutation(self):
        directory = fresh_directory(n=6)
        report = directory.run_epoch()
        with pytest.raises(TypeError):
            report.assignment[100] = 999
        with pytest.raises((TypeError, AttributeError)):
            report.assignment.clear()

    def test_mutation_attempt_leaves_directory_intact(self):
        directory = fresh_directory(n=6)
        report = directory.run_epoch()
        before = directory.assignment
        try:
            report.assignment[100] = 999
        except TypeError:
            pass
        assert directory.assignment == before
        assert dict(report.assignment) == before

    def test_history_survives_later_churn(self):
        directory = fresh_directory(n=6)
        first = directory.run_epoch()
        frozen = dict(first.assignment)
        directory.join(9_999)
        directory.run_epoch()
        assert dict(directory.history[0].assignment) == frozen

    def test_assignment_property_returns_a_copy(self):
        directory = fresh_directory(n=6)
        directory.run_epoch()
        copy = directory.assignment
        copy[100] = 999
        assert directory.assignment != copy


class TestServingSurface:
    def test_compact_id_or_none_miss_and_hit(self):
        directory = fresh_directory(n=6)
        assert directory.compact_id_or_none(100) is None
        directory.run_epoch()
        assert directory.compact_id_or_none(100) == directory.compact_id(100)
        assert directory.compact_id_or_none(9_999) is None

    def test_withdraw_assignment_clears_both_tables(self):
        directory = fresh_directory(n=4)
        directory.run_epoch()
        compact = directory.compact_id(100)
        directory.withdraw_assignment()
        assert directory.compact_id_or_none(100) is None
        with pytest.raises(KeyError):
            directory.original_id(compact)
        # Membership and history are untouched -- only the names went.
        assert len(directory.members) == 4
        assert len(directory.history) == 1

    def test_failed_epoch_changes_nothing(self):
        from repro.faults.spec import build_fault_model

        directory = fresh_directory(n=8, seed=2)
        directory.run_epoch()
        epoch = directory.epoch
        members = set(directory.members)
        assignment = directory.assignment
        lethal = build_fault_model(
            [{"kind": "omission", "p": 1.0}], len(members), seed=5,
        )
        with pytest.raises(Exception):
            directory.run_epoch(fault_model=lethal)
        assert directory.epoch == epoch
        assert directory.members == members
        assert directory.assignment == assignment
        assert len(directory.history) == 1

    def test_round_trip_release_then_rejoin(self):
        directory = fresh_directory(n=8)
        directory.run_epoch()
        uid = sorted(directory.members)[0]
        directory.leave(uid)
        directory.run_epoch()
        assert directory.compact_id_or_none(uid) is None
        directory.join(uid)
        report = directory.run_epoch()
        assert report.assignment[uid] == directory.compact_id(uid)
        assert sorted(report.assignment.values()) == list(range(1, 9))


class TestChurnUnderFailures:
    def test_crashed_members_are_departed(self):
        directory = fresh_directory(n=16, seed=3)
        report = directory.run_epoch(
            adversary=RandomCrash(5, 0.1, Random(4))
        )
        assert set(report.departed_during_epoch).isdisjoint(directory.members)
        assert report.renamed == report.members - len(
            report.departed_during_epoch
        )
        # Survivors still hold distinct compact ids within [1, members].
        values = list(report.assignment.values())
        assert len(set(values)) == len(values)
        assert all(1 <= value <= report.members for value in values)

    def test_next_epoch_runs_clean_after_an_attack(self):
        directory = fresh_directory(n=16, seed=5)
        directory.run_epoch(adversary=CommitteeHunter(8, Random(6)))
        survivors = len(directory.members)
        report = directory.run_epoch()
        assert report.renamed == survivors
        assert sorted(report.assignment.values()) == list(
            range(1, survivors + 1)
        )

    def test_attacked_epoch_costs_more_per_member(self):
        quiet = fresh_directory(n=24, seed=7)
        quiet_report = quiet.run_epoch()
        noisy = fresh_directory(n=24, seed=7)
        noisy_report = noisy.run_epoch(
            adversary=CommitteeHunter(12, Random(8))
        )
        assert noisy_report.departed_during_epoch
        # The report retains enough to do this accounting at all --
        # which is the operational point of the class.
        assert noisy_report.messages > 0
        assert quiet_report.rounds == noisy_report.rounds
