"""Cross-process determinism: no entry point may depend on the hash seed.

Python randomizes ``str``/``bytes`` hashing per process unless
``PYTHONHASHSEED`` pins it, so any iteration over an unordered container
of strings (or objects with default ``__hash__``) leaks process identity
into results.  Each entry point — including the faulted delivery path —
must print byte-identical summaries, per-round ledgers, outputs, and
fault tallies under different hash seeds.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Runs all five ``run_*`` entry points and prints one canonical-JSON
#: line each.  Every execution supplies a fault model so the faulted
#: network path is the one exercised: the robust gossip baseline takes a
#: genuinely lossy composed channel, the others take ``NoFaults`` (empty
#: plans through the same code path) so they terminate normally.
SCRIPT = """
import json

from repro.adversary.crash import ScheduledCrash
from repro.baselines.balls_into_slots import run_balls_into_slots
from repro.baselines.collect_rank import run_collect_rank
from repro.baselines.obg_halving import run_obg_halving
from repro.core.byzantine_renaming import run_byzantine_renaming
from repro.core.crash_renaming import run_crash_renaming
from repro.faults import NoFaults, build_fault_model

UIDS = [3, 11, 5, 8, 2, 13, 7, 1]
LOSSY = [{"kind": "omission", "p": 0.05, "budget": 16},
         {"kind": "partition", "start": 2, "end": 4}]


def report(name, result):
    stats = result.fault_stats
    print(json.dumps({
        "name": name,
        "summary": result.metrics.summary(),
        "messages_per_round": list(result.metrics.messages_per_round),
        "bits_per_round": list(result.metrics.bits_per_round),
        "results": sorted(result.results.items()),
        "crashed": sorted(result.crashed),
        "rounds": result.rounds,
        "faults": stats.as_dict() if stats is not None else None,
    }, sort_keys=True))


report("crash", run_crash_renaming(
    UIDS, seed=1, fault_model=NoFaults(),
    adversary=ScheduledCrash({2: [1]})))
report("obg", run_obg_halving(UIDS, seed=1, fault_model=NoFaults()))
report("balls", run_balls_into_slots(UIDS, seed=1, fault_model=NoFaults()))
report("gossip", run_collect_rank(
    UIDS, seed=1,
    fault_model=build_fault_model(LOSSY, len(UIDS), seed=1)))
report("byzantine", run_byzantine_renaming(
    UIDS, seed=1, fault_model=NoFaults()))
"""


#: Runs all five entry points on the *columnar* deliver core (no fault
#: model, ``columnar=True``) and prints one sha256 digest over the
#: canonical-JSON observables.  The columnar path groups targeted sends
#: into buckets keyed by recipient index (plain ints), so the digest
#: must not move with the process hash seed.
COLUMNAR_SCRIPT = """
import hashlib
import json

from repro.adversary.crash import ScheduledCrash
from repro.baselines.balls_into_slots import run_balls_into_slots
from repro.baselines.collect_rank import run_collect_rank
from repro.baselines.obg_halving import run_obg_halving
from repro.core.byzantine_renaming import run_byzantine_renaming
from repro.core.crash_renaming import run_crash_renaming

UIDS = [3, 11, 5, 8, 2, 13, 7, 1]

rows = []
for name, result in [
    ("crash", run_crash_renaming(
        UIDS, seed=1, columnar=True, adversary=ScheduledCrash({2: [1]}))),
    ("obg", run_obg_halving(UIDS, seed=1, columnar=True)),
    ("balls", run_balls_into_slots(UIDS, seed=1, columnar=True)),
    ("gossip", run_collect_rank(UIDS, seed=1, columnar=True)),
    ("byzantine", run_byzantine_renaming(UIDS, seed=1, columnar=True)),
]:
    rows.append({
        "name": name,
        "summary": result.metrics.summary(),
        "messages_per_round": list(result.metrics.messages_per_round),
        "bits_per_round": list(result.metrics.bits_per_round),
        "results": sorted(result.results.items()),
        "crashed": sorted(result.crashed),
        "rounds": result.rounds,
    })
canonical = json.dumps(rows, sort_keys=True).encode()
print(hashlib.sha256(canonical).hexdigest())
"""


#: Plays a faulted load trace through the *resilient* service — seeded
#: retries, breaker transitions, shedding — and prints the counted
#: results plus the per-shard retry/breaker event schedule.  Backoff
#: jitter and per-epoch protocol seeds must come from integer-tuple
#: hashing only, so the schedule is byte-identical across hash seeds.
SERVE_SCRIPT = """
import json

from repro.obs import EventRecorder
from repro.serve.loadgen import LoadProfile, execute_profile
from repro.serve.resilience import ResiliencePolicy

PROFILE = LoadProfile(clients=32, requests=900, shards=2, max_batch=16,
                      max_wait=0.002, arrival_rate=20_000.0,
                      namespace=4_000, seed=5)
RESILIENCE = ResiliencePolicy(max_retries=4, backoff_base=0.005,
                              breaker_threshold=3, breaker_cooldown=0.05)

recorder = EventRecorder()
report = execute_profile(
    PROFILE,
    shard_faults={0: [{"kind": "omission", "p": 1.0}]},
    shard_fault_windows={0: (1, 7)},
    resilience=RESILIENCE,
    observer=recorder,
)
lanes = {}
for event in recorder.events():
    kind = event["kind"]
    if not kind.startswith(("serve.retry", "serve.breaker", "serve.shed",
                            "serve.deadline")):
        continue
    data = dict(event.get("data", {}))
    lanes.setdefault(data.pop("shard"), []).append([kind, data])
print(json.dumps({
    "trace": report["trace_sha256"],
    "renamed": report["renamed"],
    "degraded": report["degraded"],
    "shed": report["shed"],
    "unresolved": report["unresolved"],
    "unique": report["unique"],
    "retries": report["service"]["retries"],
    "breaker_opens": report["service"]["breaker_opens"],
    "breaker_closes": report["service"]["breaker_closes"],
    "epoch_messages": report["epoch_messages"],
    "epoch_bits": report["epoch_bits"],
    "lanes": {str(shard): lanes[shard] for shard in sorted(lanes)},
}, sort_keys=True))
"""


#: Drains a small fabric campaign with an in-process worker and prints
#: one sha256 digest over the settled run set (hash, status, row,
#: ledger).  Lease jitter, heartbeat scheduling, and retry backoff all
#: derive from integer-tuple hashes, and every run row is keyed by its
#: content hash, so the campaign's final store must be byte-identical
#: across hash seeds — the fabric's determinism contract.
FABRIC_SCRIPT = """
import hashlib
import json
import tempfile

from repro.engine import (FabricConfig, FabricWorker, RunStore,
                          enqueue_campaign)
from repro.engine.sweeps import SweepSpec

with tempfile.TemporaryDirectory() as tmp:
    url = f"sqlite://{tmp}/runs.sqlite"
    requests = SweepSpec.make("crash", [8, 12], [0, 1],
                              f="n//8").requests()
    enqueue_campaign(url, "digest", requests)
    summary = FabricWorker(
        FabricConfig(store=url, campaign="digest", isolate=False),
        name="digest-w",
    ).run()
    assert summary["settled"] == len(requests), summary
    with RunStore(url) as store:
        rows = [
            {
                "hash": run.hash,
                "status": run.status,
                "row": run.row,
                "ledger": store.ledger(run.hash),
            }
            for run in sorted(store.query(), key=lambda r: r.hash)
        ]
canonical = json.dumps(rows, sort_keys=True).encode()
print(hashlib.sha256(canonical).hexdigest())
"""


def _run(hashseed, script=SCRIPT):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, env=env, cwd=REPO, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


def test_all_entry_points_hashseed_independent():
    first = _run(1)
    second = _run(2)
    assert first == second  # byte-identical across hash seeds

    lines = first.decode().splitlines()
    rows = [json.loads(line) for line in lines]
    assert [row["name"] for row in rows] == [
        "crash", "obg", "balls", "gossip", "byzantine"]
    for row in rows:
        assert row["rounds"] >= 1
        assert len(row["messages_per_round"]) == row["rounds"]
    by_name = {row["name"]: row for row in rows}
    assert by_name["crash"]["crashed"] == [1]
    # The lossy channel genuinely fired on the gossip run.
    gossip_faults = by_name["gossip"]["faults"]
    assert gossip_faults["dropped"] > 0 and gossip_faults["held"] > 0


def test_columnar_path_hashseed_independent():
    first = _run(1, COLUMNAR_SCRIPT)
    second = _run(2, COLUMNAR_SCRIPT)
    assert first == second  # one byte-identical digest line
    digest = first.decode().strip()
    assert len(digest) == 64 and int(digest, 16) >= 0


def test_fabric_campaign_hashseed_independent():
    first = _run(1, FABRIC_SCRIPT)
    second = _run(2, FABRIC_SCRIPT)
    assert first == second  # one byte-identical run-set digest
    digest = first.decode().strip()
    assert len(digest) == 64 and int(digest, 16) >= 0


def test_resilient_serving_hashseed_independent():
    first = _run(1, SERVE_SCRIPT)
    second = _run(2, SERVE_SCRIPT)
    assert first == second  # byte-identical retry/breaker schedule

    row = json.loads(first.decode())
    assert row["unique"] is True
    assert row["unresolved"] == 0
    # The faulted window genuinely exercised the resilient path.
    assert row["retries"] > 0
    assert row["breaker_opens"] >= 1
    assert any(entry[0] == "serve.retry" for entry in row["lanes"]["0"])
