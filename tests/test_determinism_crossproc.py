"""Cross-process determinism: no entry point may depend on the hash seed.

Python randomizes ``str``/``bytes`` hashing per process unless
``PYTHONHASHSEED`` pins it, so any iteration over an unordered container
of strings (or objects with default ``__hash__``) leaks process identity
into results.  Each entry point — including the faulted delivery path —
must print byte-identical summaries, per-round ledgers, outputs, and
fault tallies under different hash seeds.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Runs all five ``run_*`` entry points and prints one canonical-JSON
#: line each.  Every execution supplies a fault model so the faulted
#: network path is the one exercised: the robust gossip baseline takes a
#: genuinely lossy composed channel, the others take ``NoFaults`` (empty
#: plans through the same code path) so they terminate normally.
SCRIPT = """
import json

from repro.adversary.crash import ScheduledCrash
from repro.baselines.balls_into_slots import run_balls_into_slots
from repro.baselines.collect_rank import run_collect_rank
from repro.baselines.obg_halving import run_obg_halving
from repro.core.byzantine_renaming import run_byzantine_renaming
from repro.core.crash_renaming import run_crash_renaming
from repro.faults import NoFaults, build_fault_model

UIDS = [3, 11, 5, 8, 2, 13, 7, 1]
LOSSY = [{"kind": "omission", "p": 0.05, "budget": 16},
         {"kind": "partition", "start": 2, "end": 4}]


def report(name, result):
    stats = result.fault_stats
    print(json.dumps({
        "name": name,
        "summary": result.metrics.summary(),
        "messages_per_round": list(result.metrics.messages_per_round),
        "bits_per_round": list(result.metrics.bits_per_round),
        "results": sorted(result.results.items()),
        "crashed": sorted(result.crashed),
        "rounds": result.rounds,
        "faults": stats.as_dict() if stats is not None else None,
    }, sort_keys=True))


report("crash", run_crash_renaming(
    UIDS, seed=1, fault_model=NoFaults(),
    adversary=ScheduledCrash({2: [1]})))
report("obg", run_obg_halving(UIDS, seed=1, fault_model=NoFaults()))
report("balls", run_balls_into_slots(UIDS, seed=1, fault_model=NoFaults()))
report("gossip", run_collect_rank(
    UIDS, seed=1,
    fault_model=build_fault_model(LOSSY, len(UIDS), seed=1)))
report("byzantine", run_byzantine_renaming(
    UIDS, seed=1, fault_model=NoFaults()))
"""


def _run(hashseed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True, env=env, cwd=REPO, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


def test_all_entry_points_hashseed_independent():
    first = _run(1)
    second = _run(2)
    assert first == second  # byte-identical across hash seeds

    lines = first.decode().splitlines()
    rows = [json.loads(line) for line in lines]
    assert [row["name"] for row in rows] == [
        "crash", "obg", "balls", "gossip", "byzantine"]
    for row in rows:
        assert row["rounds"] >= 1
        assert len(row["messages_per_round"]) == row["rounds"]
    by_name = {row["name"]: row for row in rows}
    assert by_name["crash"]["crashed"] == [1]
    # The lossy channel genuinely fired on the gossip run.
    gossip_faults = by_name["gossip"]["faults"]
    assert gossip_faults["dropped"] > 0 and gossip_faults["held"] > 0
