"""White-box unit tests for the Byzantine node's building blocks.

These drive individual methods / generator stages directly with
hand-built envelopes, pinning down the exact filtering rules:
candidate checks on ELECT, authenticated-uid usage on announcements,
and the accept threshold of the distribution wait loop.
"""

import pytest

from repro.core.byzantine_renaming import (
    ByzantineRenamingConfig,
    ByzantineRenamingNode,
    CommitteeParameters,
    Elect,
    NewId,
)
from repro.sim.messages import Envelope


def env(sender, message, sender_uid):
    return Envelope(sender=sender, to=0, round_no=1, message=message,
                    sender_uid=sender_uid)


def params(b_max=1, cg=5):
    return CommitteeParameters(
        candidate_probability=1.0, max_byzantine=b_max, b_max=b_max,
        cg_lower=cg, diff_threshold=max(b_max + 1, (cg + 1) // 2),
        consensus_iterations=8, full_committee=True,
    )


class TestCollectView:
    NODE = ByzantineRenamingNode(uid=1)

    def test_accepts_authentic_candidates(self):
        inbox = [env(3, Elect(50), sender_uid=50)]
        assert self.NODE._collect_view(inbox, {50}) == {3: 50}

    def test_rejects_non_candidates(self):
        inbox = [env(3, Elect(51), sender_uid=51)]
        assert self.NODE._collect_view(inbox, {50}) == {}

    def test_rejects_claim_mismatching_authenticated_uid(self):
        # A corrupted node announcing a candidate identity it does not
        # own: the stamped uid (its real one) disagrees with the claim.
        inbox = [env(3, Elect(50), sender_uid=77)]
        assert self.NODE._collect_view(inbox, {50, 77}) == {}

    def test_first_announcement_per_link_wins(self):
        inbox = [
            env(3, Elect(50), sender_uid=50),
            env(3, Elect(50), sender_uid=50),
        ]
        assert self.NODE._collect_view(inbox, {50}) == {3: 50}

    def test_ignores_other_message_types(self):
        inbox = [env(3, NewId(1), sender_uid=50)]
        assert self.NODE._collect_view(inbox, {50}) == {}


def drive_await(node, parameters, view, batches):
    """Feed inbox batches to _await_new_id; return decision or None."""
    gen = node._await_new_id(parameters, view, first_inbox=batches[0])
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    for batch in batches[1:]:
        try:
            gen.send(batch)
        except StopIteration as stop:
            return stop.value
    gen.close()
    return None


class TestAwaitNewId:
    def test_accepts_after_b_max_plus_one_votes(self):
        node = ByzantineRenamingNode(uid=1)
        view = {0: 10, 1: 11, 2: 12}
        batches = [[env(0, NewId(4), 10), env(1, NewId(4), 11)]]
        assert drive_await(node, params(b_max=1), view, batches) == 4

    def test_b_max_votes_are_not_enough(self):
        node = ByzantineRenamingNode(uid=1)
        view = {0: 10, 1: 11, 2: 12}
        batches = [[env(0, NewId(4), 10)], []]
        assert drive_await(node, params(b_max=1), view, batches) is None

    def test_null_votes_never_count(self):
        node = ByzantineRenamingNode(uid=1)
        view = {0: 10, 1: 11, 2: 12}
        batches = [[env(0, NewId(None), 10), env(1, NewId(None), 11)], []]
        assert drive_await(node, params(b_max=1), view, batches) is None

    def test_one_vote_per_view_member(self):
        # A single Byzantine member repeating itself cannot reach the
        # threshold alone.
        node = ByzantineRenamingNode(uid=1)
        view = {0: 10, 1: 11, 2: 12}
        batches = [[env(0, NewId(4), 10), env(0, NewId(4), 10)], []]
        assert drive_await(node, params(b_max=1), view, batches) is None

    def test_votes_from_outside_the_view_are_ignored(self):
        node = ByzantineRenamingNode(uid=1)
        view = {0: 10}
        batches = [[env(5, NewId(4), 99), env(6, NewId(4), 98)], []]
        assert drive_await(node, params(b_max=1), view, batches) is None

    def test_votes_accumulate_across_rounds(self):
        node = ByzantineRenamingNode(uid=1)
        view = {0: 10, 1: 11, 2: 12}
        batches = [[env(0, NewId(7), 10)], [env(1, NewId(7), 11)]]
        assert drive_await(node, params(b_max=1), view, batches) == 7


class TestParameterObject:
    def test_validate_rejects_unsound_bounds(self):
        from repro.core.byzantine_renaming import ByzantineRenamingError

        bad = CommitteeParameters(
            candidate_probability=1.0, max_byzantine=3, b_max=3,
            cg_lower=6, diff_threshold=4, consensus_iterations=8,
            full_committee=True,
        )
        with pytest.raises(ByzantineRenamingError, match="infeasible"):
            bad.validate()

    def test_config_is_immutable(self):
        config = ByzantineRenamingConfig()
        with pytest.raises(Exception):
            config.epsilon0 = 0.1
