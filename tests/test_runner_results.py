"""Tests for ExecutionResult bookkeeping and edge semantics."""

import pytest

from repro.sim.messages import CostModel
from repro.sim.node import IdleProcess
from repro.sim.runner import ExecutionResult, run_network
from repro.sim.trace import Trace
from tests.test_network import Chatter


class TestCorrectResults:
    def test_excludes_byzantine_outputs(self):
        class FinishingByz(IdleProcess):
            byzantine = True

            def program(self, ctx):
                yield []
                return "junk"

        processes = [Chatter(uid=1, rounds=1), FinishingByz(uid=2)]
        result = run_network(processes, CostModel(n=2, namespace=10))
        assert result.correct_results == {0: 1}
        assert result.results.get(1) == "junk"
        assert result.outputs_by_uid() == {1: 1}

    def test_excludes_crashed_nodes(self):
        from repro.adversary.crash import ScheduledCrash

        processes = [Chatter(uid=1, rounds=2), Chatter(uid=2, rounds=2)]
        result = run_network(
            processes, CostModel(n=2, namespace=10),
            crash_adversary=ScheduledCrash({1: [1]}),
        )
        # Link 1 (uid 2) crashed: absent from correct results; the
        # survivor uid 1 keeps its output.
        assert 1 not in result.correct_results
        assert result.outputs_by_uid() == {1: 1}

    def test_manual_construction(self):
        result = ExecutionResult(
            results={0: "a", 1: "b"},
            metrics=None,
            crashed={1},
            byzantine=set(),
            rounds=3,
            trace=Trace(enabled=False),
            processes=[IdleProcess(uid=7), IdleProcess(uid=8)],
        )
        assert result.correct_results == {0: "a"}
        assert result.outputs_by_uid() == {7: "a"}


class TestSeededReplays:
    def test_network_seed_controls_private_rngs(self):
        class CoinFlipper(IdleProcess):
            def program(self, ctx):
                yield []
                return ctx.rng.random()

        def run(seed):
            processes = [CoinFlipper(uid=i + 1) for i in range(3)]
            return run_network(processes, CostModel(n=3, namespace=10),
                               seed=seed)

        assert run(5).results == run(5).results
        assert run(5).results != run(6).results

    def test_per_node_streams_are_independent(self):
        class CoinFlipper(IdleProcess):
            def program(self, ctx):
                yield []
                return ctx.rng.random()

        processes = [CoinFlipper(uid=i + 1) for i in range(4)]
        result = run_network(processes, CostModel(n=4, namespace=10), seed=1)
        values = list(result.results.values())
        assert len(set(values)) == len(values)
