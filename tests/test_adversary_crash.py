"""Tests for crash-adversary strategies."""

from random import Random

import pytest

from repro.adversary.base import (
    CrashAdversary,
    NoCrashes,
    kept_send_indices,
)
from repro.adversary.crash import (
    BudgetedAdaptiveCrash,
    CommitteeHunter,
    MidSendPartitioner,
    RandomCrash,
    ScheduledCrash,
)
from repro.sim.messages import Broadcast, Send
from repro.sim.trace import Trace
from tests.test_network import Ping


def proposed_for(fanouts):
    """Fake per-node proposed sends with the given fanouts."""
    return {
        node: [Send(to=t, message=Ping(t)) for t in range(fanout)]
        for node, fanout in fanouts.items()
    }


TRACE = Trace(enabled=False)


class TestNoCrashes:
    def test_never_crashes(self):
        adversary = NoCrashes()
        plan = adversary.plan_round(1, proposed_for({0: 3}), frozenset({0}), TRACE)
        assert plan == {}
        assert adversary.budget == 0


class TestRandomCrash:
    def test_budget_respected(self):
        adversary = RandomCrash(budget=2, rate=1.0, rng=Random(1))
        plan = adversary.plan_round(
            1, proposed_for({i: 2 for i in range(10)}),
            frozenset(range(10)), TRACE,
        )
        assert len(plan) == 2

    def test_rate_zero_never_crashes(self):
        adversary = RandomCrash(budget=5, rate=0.0, rng=Random(1))
        plan = adversary.plan_round(
            1, proposed_for({i: 2 for i in range(10)}),
            frozenset(range(10)), TRACE,
        )
        assert plan == {}

    def test_kept_messages_are_subset(self):
        adversary = RandomCrash(budget=5, rate=1.0, rng=Random(3))
        proposed = proposed_for({0: 10})
        plan = adversary.plan_round(1, proposed, frozenset({0}), TRACE)
        assert all(send in proposed[0] for send in plan[0])

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            RandomCrash(budget=1, rate=1.5, rng=Random(0))

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            RandomCrash(budget=-1, rate=0.5, rng=Random(0))


class TestScheduledCrash:
    def test_budget_inferred_from_schedule(self):
        adversary = ScheduledCrash({1: [0, 2], 3: [5]})
        assert adversary.budget == 3

    def test_fires_only_in_scheduled_round(self):
        adversary = ScheduledCrash({2: [0]})
        assert adversary.plan_round(1, proposed_for({0: 1}), frozenset({0}), TRACE) == {}
        plan = adversary.plan_round(2, proposed_for({0: 1}), frozenset({0}), TRACE)
        assert set(plan) == {0}

    def test_skips_already_dead_victims(self):
        adversary = ScheduledCrash({2: [0]})
        plan = adversary.plan_round(2, proposed_for({1: 1}), frozenset({1}), TRACE)
        assert plan == {}

    def test_duplicate_victims_rejected(self):
        with pytest.raises(ValueError):
            ScheduledCrash({1: [0], 2: [0]})

    def test_deliver_prefix(self):
        adversary = ScheduledCrash({1: [0]}, deliver_prefix={0: 2})
        proposed = proposed_for({0: 5})
        plan = adversary.plan_round(1, proposed, frozenset({0}), TRACE)
        assert plan[0] == proposed[0][:2]

    def test_explicit_budget_pins_f(self):
        adversary = ScheduledCrash({1: [0]}, budget=4)
        assert adversary.budget == 4

    def test_schedule_over_budget_rejected_at_construction(self):
        from repro.adversary.base import CrashPlanError

        # Rounds 1-2 stay within f=2; round 5 brings the cumulative
        # count to 3.  Validation must name that round, not merely
        # under-deliver crashes mid-execution.
        with pytest.raises(CrashPlanError, match="budget f=2 at round 5"):
            ScheduledCrash({1: [0], 2: [3], 5: [7]}, budget=2)

    def test_budget_exactly_met_is_fine(self):
        adversary = ScheduledCrash({1: [0], 2: [3]}, budget=2)
        assert adversary.budget == 2


class TestMidSendPartitioner:
    def test_targets_highest_fanout(self):
        adversary = MidSendPartitioner(budget=1, rng=Random(1), per_round=1)
        plan = adversary.plan_round(
            1, proposed_for({0: 2, 1: 10, 2: 3}), frozenset({0, 1, 2}), TRACE
        )
        assert set(plan) == {1}

    def test_delivers_half(self):
        adversary = MidSendPartitioner(budget=1, rng=Random(1))
        plan = adversary.plan_round(
            1, proposed_for({0: 10}), frozenset({0}), TRACE
        )
        assert len(plan[0]) == 5

    def test_ignores_low_fanout(self):
        adversary = MidSendPartitioner(budget=1, rng=Random(1), min_fanout=5)
        plan = adversary.plan_round(
            1, proposed_for({0: 2}), frozenset({0}), TRACE
        )
        assert plan == {}


class TestCommitteeHunter:
    def test_kills_broadcasters_only(self):
        adversary = CommitteeHunter(budget=5, rng=Random(1))
        plan = adversary.plan_round(
            1, proposed_for({0: 10, 1: 1, 2: 10, 3: 0}),
            frozenset({0, 1, 2, 3}), TRACE,
        )
        assert set(plan) == {0, 2}
        assert plan[0] == [] and plan[2] == []

    def test_budget_limits_kills(self):
        adversary = CommitteeHunter(budget=1, rng=Random(1))
        plan = adversary.plan_round(
            1, proposed_for({0: 10, 1: 10}), frozenset({0, 1}), TRACE
        )
        assert len(plan) == 1

    def test_deliver_fraction_leaks_traffic(self):
        adversary = CommitteeHunter(budget=1, rng=Random(1), deliver_fraction=0.5)
        plan = adversary.plan_round(
            1, proposed_for({0: 10}), frozenset({0}), TRACE
        )
        assert len(plan[0]) == 5

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            CommitteeHunter(budget=1, rng=Random(1), deliver_fraction=2.0)


class TestBudgetedAdaptiveCrash:
    def test_policy_sees_remaining_budget(self):
        seen = []

        def policy(round_no, proposed, alive, trace, remaining):
            seen.append(remaining)
            return {}

        adversary = BudgetedAdaptiveCrash(3, policy)
        adversary.plan_round(1, {}, frozenset(), TRACE)
        adversary.note_crashes({0, 1})
        adversary.plan_round(2, {}, frozenset(), TRACE)
        assert seen == [3, 1]


class _BroadcastSlicer(CrashAdversary):
    """Crashes the first broadcasting node mid-send, keeping every other
    send of its lazy ``Broadcast`` proposal (a strict subset)."""

    def __init__(self):
        super().__init__(budget=1)
        self.captured = None  # (round_no, victim, proposed_seq, kept)

    def plan_round(self, round_no, proposed, alive, trace):
        if self.crashed:
            return {}
        for victim in sorted(alive):
            sends = proposed.get(victim)
            if isinstance(sends, Broadcast) and len(sends) >= 4:
                kept = [sends[i] for i in range(0, len(sends), 2)]
                self.captured = (round_no, victim, sends, kept)
                return {victim: kept}
        return {}


class TestBroadcastMidSendCrash:
    """Regression: ``plan_round`` receives lazy ``Broadcast`` sequences
    (not lists) for broadcasting nodes; a mid-send crash keeping a
    strict subset must resolve identity-stably and replay exactly."""

    def test_broadcast_materialization_is_identity_stable(self):
        bc = Broadcast(6, Ping(0))
        assert bc[2] is bc[2]  # cached; repeated access → same instance
        kept = [bc[1], bc[4]]
        assert kept_send_indices(kept, bc) == (1, 4)

    def test_mid_send_crash_of_broadcaster_records_and_replays(self):
        from repro.core.crash_renaming import run_crash_renaming
        from repro.falsify.replay import RecordingAdversary, ReplayAdversary

        uids, n, seed = [3, 8, 1, 12, 7, 5, 10, 2], 8, 4
        slicer = _BroadcastSlicer()
        recorder = RecordingAdversary(slicer)
        first = run_crash_renaming(
            uids, namespace=16, adversary=recorder, seed=seed, trace=True,
        )

        # The victim really was broadcasting and really kept a strict
        # subset, resolved against the Broadcast by identity.
        assert slicer.captured is not None
        round_no, victim, sends, kept = slicer.captured
        assert isinstance(sends, Broadcast)
        assert 0 < len(kept) < len(sends)
        assert recorder.schedule[round_no][victim] == tuple(
            range(0, len(sends), 2))
        assert victim in first.crashed

        # Survivors still end with unique names despite the partial
        # delivery.
        outputs = first.outputs_by_uid()
        assert len(set(outputs.values())) == len(outputs)

        # Strict replay of the recorded schedule is byte-identical:
        # same outputs, same round count, same per-round ledgers.
        replayer = ReplayAdversary(recorder.schedule, strict=True)
        second = run_crash_renaming(
            uids, namespace=16, adversary=replayer, seed=seed, trace=True,
        )
        assert second.outputs_by_uid() == outputs
        assert second.rounds == first.rounds
        assert second.crashed == first.crashed
        assert (list(second.metrics.messages_per_round)
                == list(first.metrics.messages_per_round))
        assert (list(second.metrics.bits_per_round)
                == list(first.metrics.bits_per_round))
