"""Tests for the observability subsystem: events, profiling, telemetry."""

import json

import pytest

from repro.engine.pool import run_requests
from repro.engine.store import RunStore
from repro.engine.sweeps import RunRequest
from repro.falsify.campaign import CampaignConfig, run_campaign
from repro.obs import (
    EVENT_FORMAT,
    NULL_OBSERVER,
    EventRecorder,
    Observer,
    PhaseProfiler,
    observing,
    profile_scenario,
    read_jsonl,
    validate_event,
    validate_events,
)
from repro.__main__ import main


class TestRecorder:
    def test_sequence_and_timestamps_monotonic(self):
        recorder = EventRecorder()
        for index in range(5):
            recorder.emit("tick", count=index)
        events = recorder.events()
        assert [event["seq"] for event in events] == list(range(5))
        timestamps = [event["ts"] for event in events]
        assert timestamps == sorted(timestamps)

    def test_ring_buffer_drops_oldest(self):
        recorder = EventRecorder(capacity=3)
        for index in range(10):
            recorder.emit("tick", count=index)
        assert len(recorder) == 3
        assert recorder.dropped == 7
        assert [e["data"]["count"] for e in recorder.events()] == [7, 8, 9]

    def test_kind_filter_matches_dotted_prefix(self):
        recorder = EventRecorder()
        recorder.emit("round.begin")
        recorder.emit("round.end")
        recorder.emit("roundabout")
        assert len(recorder.events("round")) == 2
        assert len(recorder.events("round.begin")) == 1

    def test_round_and_node_fields(self):
        recorder = EventRecorder()
        recorder.emit("crash.apply", round_no=3, node=7, delivered=2)
        (event,) = recorder.events()
        assert event["round"] == 3
        assert event["node"] == 7
        assert event["data"] == {"delivered": 2}

    def test_null_observer_is_disabled_and_silent(self):
        assert not NULL_OBSERVER.enabled
        NULL_OBSERVER.emit("anything", round_no=1)  # no-op, no error
        assert not observing(None)
        assert not observing(NULL_OBSERVER)
        assert observing(EventRecorder())


class TestSpans:
    def test_span_emits_paired_events_with_wall_time(self):
        recorder = EventRecorder()
        with recorder.span("shrink", scenario="crash"):
            pass
        begin, end = recorder.events()
        assert begin["kind"] == "shrink.begin"
        assert end["kind"] == "shrink.end"
        assert begin["span"] == end["span"]
        assert end["data"]["wall_s"] >= 0
        assert end["data"]["ok"] is True

    def test_span_records_failure(self):
        recorder = EventRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("work"):
                raise RuntimeError("boom")
        end = recorder.events("work.end")[0]
        assert end["data"]["ok"] is False

    def test_span_on_disabled_observer_is_silent(self):
        with Observer().span("work"):
            pass  # must not raise, must not record anywhere


class TestSchema:
    def test_recorder_events_validate(self):
        recorder = EventRecorder()
        recorder.emit("round.begin", round_no=1)
        recorder.emit("crash.apply", round_no=1, node=2, delivered=1)
        assert validate_events(recorder.events()) == []

    def test_missing_required_field(self):
        assert any("kind" in problem
                   for problem in validate_event({"seq": 0, "ts": 0.0}))

    def test_unexpected_field_rejected(self):
        event = {"seq": 0, "ts": 0.0, "kind": "x", "extra": 1}
        assert any("extra" in problem for problem in validate_event(event))

    def test_non_scalar_data_rejected(self):
        event = {"seq": 0, "ts": 0.0, "kind": "x", "data": {"bad": [1]}}
        assert any("bad" in problem for problem in validate_event(event))

    def test_wrong_types_rejected(self):
        event = {"seq": "zero", "ts": 0.0, "kind": "x"}
        assert validate_event(event)
        assert validate_event("not a dict")


class TestJsonl:
    def test_round_trip(self, tmp_path):
        recorder = EventRecorder()
        recorder.emit("round.begin", round_no=1)
        recorder.emit("round.end", round_no=1, messages=4)
        path = recorder.write_jsonl(tmp_path / "events.jsonl")
        assert read_jsonl(path) == recorder.events()

    def test_header_carries_format_tag(self, tmp_path):
        recorder = EventRecorder(capacity=1)
        recorder.emit("a")
        recorder.emit("b")
        path = recorder.write_jsonl(tmp_path / "events.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "stream.header"
        assert header["data"]["format"] == EVENT_FORMAT
        assert header["data"]["dropped"] == 1

    def test_bad_line_rejected(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"seq": 0, "ts": 0, "kind": "ok"}\nnot json\n')
        with pytest.raises(ValueError, match="not JSON"):
            read_jsonl(path)


class TestProfiler:
    def test_accumulates_calls_and_totals(self):
        profiler = PhaseProfiler()
        profiler.add("plan", 0.25)
        profiler.add("plan", 0.75)
        assert profiler.calls("plan") == 2
        assert profiler.total("plan") == 1.0
        assert bool(profiler)
        assert not bool(PhaseProfiler())

    def test_time_context_manager(self):
        profiler = PhaseProfiler()
        with profiler.time("deliver"):
            pass
        assert profiler.calls("deliver") == 1
        assert profiler.total("deliver") >= 0

    def test_merge(self):
        left, right = PhaseProfiler(), PhaseProfiler()
        left.add("plan", 1.0)
        right.add("plan", 2.0)
        right.add("charge", 3.0)
        left.merge(right)
        assert left.calls("plan") == 2
        assert left.total("plan") == 3.0
        assert left.total("charge") == 3.0

    def test_report_is_self_describing(self):
        profiler = PhaseProfiler()
        profiler.add("plan", 0.5)
        report = profiler.report()
        assert report["schema"] == "repro.obs/profile@1"
        assert report["unit"] == "seconds"
        assert report["phases"]["plan"] == {
            "calls": 1, "wall_s": 0.5, "mean_s": 0.5,
        }


class TestNetworkEvents:
    def test_execution_emits_round_and_run_events(self):
        recorder = EventRecorder(profile=True)
        result, report = profile_scenario(
            "crash", 8, 2, 1, adversary="random", observer=recorder)
        assert validate_events(recorder.events()) == []
        assert len(recorder.events("round.begin")) == result.rounds
        assert len(recorder.events("round.end")) == result.rounds
        assert len(recorder.events("run.begin")) == 1
        (run_end,) = recorder.events("run.end")
        assert run_end["data"]["rounds"] == result.rounds
        assert run_end["data"]["messages"] == result.metrics.correct_messages
        assert set(report["phases"]) == {"plan", "charge", "deliver",
                                         "advance"}
        assert report["phases"]["plan"]["calls"] == result.rounds

    def test_crash_apply_events_name_victims(self):
        from repro.falsify.scenarios import make_adversary, run_scenario

        recorder = EventRecorder()
        result = run_scenario(
            "crash", 8, 2, 1, adversary=make_adversary("random", 2, 1),
            observer=recorder)
        crashes = recorder.events("crash.apply")
        assert {event["node"] for event in crashes} == result.crashed
        for event in crashes:
            assert event["data"]["delivered"] <= event["data"]["proposed"]

    def test_monitor_fire_event_on_violation(self):
        from repro.falsify.monitors import InvariantViolation
        from repro.falsify.scenarios import (
            make_adversary,
            monitors_for,
            resolve_scenario,
            run_scenario,
        )

        recorder = EventRecorder()
        scenario = resolve_scenario("planted-duplicate")
        with pytest.raises(InvariantViolation):
            run_scenario(
                "planted-duplicate", 10, 2, 1,
                adversary=make_adversary("partitioner", 2, 1),
                monitors=monitors_for(scenario, 10, 2),
                observer=recorder,
            )
        fires = recorder.events("monitor.fire")
        assert fires
        assert fires[-1]["data"]["error"] == "InvariantViolation"


class TestTelemetryStore:
    def test_put_get_roundtrip(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            store.put_telemetry("abc", "run", {"elapsed_s": 1.5})
            store.put_telemetry("abc", "profile", {"plan": 0.1})
            assert store.telemetry("abc") == {
                "run": {"elapsed_s": 1.5}, "profile": {"plan": 0.1},
            }
            store.put_telemetry("abc", "run", {"elapsed_s": 2.0})  # replace
            assert store.telemetry("abc")["run"] == {"elapsed_s": 2.0}

    def test_delete_purges_telemetry(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            store.put_telemetry("abc", "run", {"x": 1})
            store.delete("abc")
            assert store.telemetry("abc") == {}

    def test_engine_writes_telemetry_and_events(self, tmp_path):
        recorder = EventRecorder(profile=True)
        with RunStore(tmp_path / "runs.sqlite") as store:
            requests = [RunRequest.make("crash", 6, 1, 0),
                        RunRequest.make("crash", 6, 1, 1)]
            results = run_requests(requests, store=store, observer=recorder)
            assert all(result.ok for result in results)
            assert len(recorder.events("engine.store.miss")) == 2
            assert len(recorder.events("engine.task.settle")) == 2
            rows = store.telemetry_rows(key="run")
            assert len(rows) == 2
            for _hash, key, value in rows:
                assert key == "run"
                assert value["driver"] == "crash"
                assert value["status"] == "ok"
                assert value["rounds"] > 0
            assert recorder.profiler.calls("driver:crash") == 2

            # Second invocation: pure store hits, no new telemetry.
            hits = EventRecorder()
            again = run_requests(requests, store=store, observer=hits)
            assert all(result.cached for result in again)
            assert len(hits.events("engine.store.hit")) == 2
            assert not hits.events("engine.task.settle")
            assert len(store.telemetry_rows(key="run")) == 2

    def test_telemetry_rows_filter_by_driver(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            recorder = EventRecorder()
            run_requests([RunRequest.make("crash", 6, 0, 0)],
                         store=store, observer=recorder)
            assert store.telemetry_rows(key="run", driver="crash")
            assert not store.telemetry_rows(key="run", driver="obg")


class TestCampaignEvents:
    def test_campaign_lifecycle_events(self, tmp_path):
        recorder = EventRecorder()
        config = CampaignConfig(
            scenarios=("planted-duplicate",), n_values=(10,), seeds=(1,),
            adversaries=("partitioner",), shrink=True,
            max_shrink_executions=40,
        )
        result = run_campaign(config, observer=recorder)
        assert result.falsified
        assert len(recorder.events("campaign.begin")) == 1
        assert recorder.events("campaign.batch")
        assert recorder.events("campaign.finding")
        shrink_end = recorder.events("campaign.shrink.end")
        assert shrink_end and shrink_end[0]["data"]["ok"] is True
        (end,) = recorder.events("campaign.end")
        assert end["data"]["findings"] == len(result.findings)
        assert validate_events(recorder.events()) == []


class TestCli:
    def test_obs_profile_and_tail(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        assert main(["obs", "profile", "--scenario", "crash", "--n", "8",
                     "--f", "1", "--seed", "1",
                     "--events", str(events)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro.obs/profile@1"
        assert events.is_file()

        assert main(["obs", "tail", str(events), "--last", "5"]) == 0
        out = capsys.readouterr().out
        lines = [json.loads(line) for line in out.splitlines() if line]
        assert len(lines) == 5
        assert lines[-1]["kind"] == "run.end"

    def test_obs_tail_rejects_invalid_events(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0, "ts": 0, "kind": "ok", "wrong": 1}\n')
        assert main(["obs", "tail", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_obs_tail_missing_file(self, tmp_path, capsys):
        assert main(["obs", "tail", str(tmp_path / "absent.jsonl")]) == 1

    def test_sweep_telemetry_then_report(self, tmp_path, capsys):
        store = str(tmp_path / "runs.sqlite")
        assert main(["sweep", "--driver", "crash", "--n", "6", "--seeds",
                     "0-1", "--telemetry", "--store", store]) == 0
        err = capsys.readouterr().err
        assert "driver:crash" in err

        assert main(["obs", "report", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "crash" in out and "runs" in out

    def test_obs_report_empty_store(self, tmp_path, capsys):
        assert main(["obs", "report", "--store",
                     str(tmp_path / "empty.sqlite")]) == 0
        assert "no telemetry" in capsys.readouterr().out
