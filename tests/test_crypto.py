"""Tests for shared randomness, fingerprints, and authentication."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.auth import Authenticator
from repro.crypto.hashing import DEFAULT_PRIME, FingerprintFamily, Fingerprinter
from repro.crypto.shared_randomness import SharedRandomness


class TestSharedRandomness:
    def test_same_seed_same_stream(self):
        a, b = SharedRandomness(42), SharedRandomness(42)
        assert [a.stream("x").random() for _ in range(3)] == [
            b.stream("x").random() for _ in range(3)
        ]

    def test_different_seeds_differ(self):
        a, b = SharedRandomness(1), SharedRandomness(2)
        assert a.stream("x").random() != b.stream("x").random()

    def test_labels_are_independent(self):
        shared = SharedRandomness(7)
        assert shared.bits("a", 64) != shared.bits("b", 64)

    def test_bits_are_bits(self):
        shared = SharedRandomness(7)
        assert set(shared.bits("a", 256)) <= {0, 1}

    def test_coin_is_deterministic_per_label(self):
        shared = SharedRandomness(9)
        assert shared.coin("flip:1") == shared.coin("flip:1")

    def test_coins_vary_across_labels(self):
        shared = SharedRandomness(9)
        coins = {shared.coin(f"flip:{i}") for i in range(64)}
        assert coins == {0, 1}

    def test_uniform_int_range(self):
        shared = SharedRandomness(5)
        values = [shared.uniform_int(f"u:{i}", 10, 20) for i in range(100)]
        assert all(10 <= value <= 20 for value in values)

    def test_uniform_int_rejects_empty_range(self):
        with pytest.raises(ValueError):
            SharedRandomness(5).uniform_int("u", 3, 2)


class TestBernoulliSubset:
    def test_identical_on_every_node(self):
        a, b = SharedRandomness(3), SharedRandomness(3)
        assert a.bernoulli_subset("lot", 10_000, 0.01) == b.bernoulli_subset(
            "lot", 10_000, 0.01
        )

    def test_zero_probability_is_empty(self):
        assert SharedRandomness(3).bernoulli_subset("lot", 100, 0.0) == set()

    def test_one_probability_is_everything(self):
        assert SharedRandomness(3).bernoulli_subset("lot", 5, 1.0) == {1, 2, 3, 4, 5}

    def test_members_lie_in_universe(self):
        chosen = SharedRandomness(3).bernoulli_subset("lot", 1000, 0.05)
        assert all(1 <= member <= 1000 for member in chosen)

    def test_size_concentrates_near_mean(self):
        sizes = [
            len(SharedRandomness(seed).bernoulli_subset("lot", 10_000, 0.02))
            for seed in range(30)
        ]
        mean = sum(sizes) / len(sizes)
        assert 150 < mean < 250  # expectation 200

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            SharedRandomness(3).bernoulli_subset("lot", 100, 1.5)

    @given(seed=st.integers(0, 1000), p=st.floats(0.001, 0.999))
    @settings(max_examples=25)
    def test_deterministic_under_hypothesis(self, seed, p):
        a = SharedRandomness(seed).bernoulli_subset("x", 500, p)
        b = SharedRandomness(seed).bernoulli_subset("x", 500, p)
        assert a == b


class TestFingerprinter:
    def test_point_bounds_enforced(self):
        with pytest.raises(ValueError):
            Fingerprinter(prime=101, point=1)
        with pytest.raises(ValueError):
            Fingerprinter(prime=101, point=100)

    def test_rejects_positions_outside_segment(self):
        hasher = Fingerprinter(prime=(1 << 61) - 1, point=7)
        with pytest.raises(ValueError):
            hasher.digest_segment([5], lo=6, hi=10)

    def test_rejects_empty_segment(self):
        hasher = Fingerprinter(prime=(1 << 61) - 1, point=7)
        with pytest.raises(ValueError):
            hasher.digest_segment([], lo=6, hi=5)

    def test_order_independent(self):
        hasher = Fingerprinter(prime=(1 << 61) - 1, point=7)
        assert hasher.digest_segment([3, 9, 4], 1, 10) == hasher.digest_segment(
            [9, 3, 4], 1, 10
        )

    def test_length_is_bound_into_digest(self):
        hasher = Fingerprinter(prime=(1 << 61) - 1, point=7)
        assert hasher.digest_segment([3], 1, 10) != hasher.digest_segment([3], 1, 20)

    def test_digest_ints_distinguishes_order(self):
        hasher = Fingerprinter(prime=(1 << 61) - 1, point=7)
        assert hasher.digest_ints([1, 2]) != hasher.digest_ints([2, 1])

    @settings(max_examples=60)
    @given(
        ones_a=st.sets(st.integers(1, 128), max_size=20),
        ones_b=st.sets(st.integers(1, 128), max_size=20),
        point=st.integers(2, (1 << 61) - 3),
    )
    def test_no_collision_between_distinct_segments(self, ones_a, ones_b, point):
        """Fact 3.2's guarantee: distinct segments collide only with
        vanishing probability; across these sampled instances, never."""
        hasher = Fingerprinter(prime=(1 << 61) - 1, point=point)
        digest_a = hasher.digest_segment(sorted(ones_a), 1, 128)
        digest_b = hasher.digest_segment(sorted(ones_b), 1, 128)
        if ones_a != ones_b:
            assert digest_a != digest_b
        else:
            assert digest_a == digest_b


class TestFingerprintFamily:
    def test_all_nodes_draw_same_function(self):
        a = FingerprintFamily(SharedRandomness(11)).draw("seg:1")
        b = FingerprintFamily(SharedRandomness(11)).draw("seg:1")
        assert a == b

    def test_labels_draw_different_functions(self):
        family = FingerprintFamily(SharedRandomness(11))
        assert family.draw("seg:1") != family.draw("seg:2")

    def test_default_prime_exceeds_sixth_power_of_namespace(self):
        assert DEFAULT_PRIME > (2_000_000) ** 6

    def test_small_prime_rejected(self):
        with pytest.raises(ValueError):
            FingerprintFamily(SharedRandomness(1), prime=3)


class TestAuthenticator:
    def test_enabled_discards_claims(self):
        assert Authenticator().resolve(3, 99) == (3, None)

    def test_disabled_honours_claims(self):
        assert Authenticator(enabled=False).resolve(3, 99) == (99, 99)

    def test_disabled_without_claim_is_truthful(self):
        assert Authenticator(enabled=False).resolve(3, None) == (3, None)
