"""Exhaustive small-model checking of the uniqueness invariant.

For a 4-node system the space of one-victim crash schedules (victim x
crash round x mid-send delivery prefix) is small enough to enumerate
*completely*.  These tests run every such schedule against the crash
algorithm and both crash-tolerant baselines and assert the paper's
deterministic correctness claim on each: survivors always hold
distinct names in [1, n].  Unlike the hypothesis tests (random
schedules at larger n), nothing here is sampled -- a regression that
breaks any single-crash interleaving at n = 4 cannot slip through.
"""

import itertools
import math

import pytest

from repro.adversary.crash import ScheduledCrash
from repro.baselines.balls_into_slots import run_balls_into_slots
from repro.baselines.obg_halving import run_obg_halving
from repro.core.crash_renaming import CrashRenamingConfig, run_crash_renaming

N = 4
UIDS = [3, 11, 26, 40]
#: All nodes elect themselves with the paper constant at n = 4, which
#: maximises the number of distinct message interleavings a crash can cut.
CONFIG = CrashRenamingConfig()


def assert_strong(result):
    outputs = result.outputs_by_uid()
    values = list(outputs.values())
    assert len(set(values)) == len(values), (
        f"duplicate names {outputs} (crashed={result.crashed})"
    )
    assert all(1 <= value <= N for value in values)


def single_crash_schedules(max_round: int, prefixes):
    """Every (victim, round, delivered-prefix) combination."""
    for victim, round_no, prefix in itertools.product(
        range(N), range(1, max_round + 1), prefixes
    ):
        yield ScheduledCrash({round_no: [victim]},
                             deliver_prefix={victim: prefix})


class TestCrashRenamingExhaustive:
    MAX_ROUND = 9 * math.ceil(math.log2(N))  # 18

    def test_every_single_crash_schedule(self):
        checked = 0
        for adversary in single_crash_schedules(self.MAX_ROUND, (0, 2, 4)):
            result = run_crash_renaming(
                UIDS, adversary=adversary, seed=7, config=CONFIG,
            )
            assert_strong(result)
            checked += 1
        assert checked == N * self.MAX_ROUND * 3  # 216 executions

    def test_every_two_crash_schedule_coarse(self):
        """All victim pairs x staggered crash rounds x prefix choices."""
        rounds = (1, 5, 9, 13, 17)
        checked = 0
        for (v1, v2), r1, r2, p1, p2 in itertools.product(
            itertools.combinations(range(N), 2), rounds, rounds, (0, 2), (0, 2)
        ):
            if r1 == r2:
                schedule = {r1: [v1, v2]}
            else:
                schedule = {r1: [v1], r2: [v2]}
            adversary = ScheduledCrash(
                schedule, deliver_prefix={v1: p1, v2: p2}
            )
            result = run_crash_renaming(
                UIDS, adversary=adversary, seed=7, config=CONFIG,
            )
            assert_strong(result)
            checked += 1
        assert checked == 6 * 5 * 5 * 2 * 2  # 600 executions


class TestBaselinesExhaustive:
    def test_obg_every_single_crash_schedule(self):
        max_round = math.ceil(math.log2(N))  # 2
        for adversary in single_crash_schedules(max_round, (0, 1, 2, 3, 4)):
            result = run_obg_halving(UIDS, adversary=adversary, seed=7)
            assert_strong(result)

    def test_balls_every_single_crash_schedule(self):
        for adversary in single_crash_schedules(6, (0, 2, 4)):
            result = run_balls_into_slots(UIDS, adversary=adversary, seed=7)
            assert_strong(result)
